"""Full-repo repro-lint timing: the cost of the pre-commit/CI gate.

The interprocedural layer split the run into a serial summary pass
(IR extraction, call-graph link, effect fixpoint) and a per-file rule
pass that can fan out over ``--jobs`` workers and replay unchanged
files from the summary cache.  This bench times the four corners that
matter for the gate:

- ``serial_cold`` / ``parallel_cold``: empty cache, everything parsed
  and linted (the first run after a checkout);
- ``serial_warm`` / ``parallel_warm``: nothing changed since the last
  run, every file replays from the cache (the steady pre-commit state).

The headline number is ``warm_speedup`` -- the cache must keep the gate
interactive as the tree grows (docs promise "a couple of seconds";
CI asserts warm >= 3x cold).  ``cpu_count`` is recorded because the
parallel corners only beat serial when there is more than one core to
fan out over.

``BENCH_SMOKE=1`` lints just ``tools/lint`` for CI; the committed
``BENCH_lint.json`` comes from a full run over the same targets CI
lints (src/repro, tests, benchmarks, tools).
"""

import os
import shutil
import sys
import tempfile
from pathlib import Path

from conftest import print_table
from record import record_bench
from repro.telemetry.clock import MONOTONIC

REPO_ROOT = Path(__file__).resolve().parents[1]
if str(REPO_ROOT) not in sys.path:
    sys.path.insert(0, str(REPO_ROOT))  # `tools` lives at the repo root

SMOKE = os.environ.get("BENCH_SMOKE") == "1"
TARGETS = ["tools/lint"] if SMOKE else ["src/repro", "tests", "benchmarks", "tools"]
WARM_ROUNDS = 1 if SMOKE else 3
PARALLEL_JOBS = 4


def _timed_run(clock, cache_dir, jobs):
    from tools.lint.core import run_lint

    t0 = clock()
    report = run_lint(
        [REPO_ROOT / t for t in TARGETS],
        root=REPO_ROOT,
        jobs=jobs,
        cache_dir=cache_dir,
    )
    return clock() - t0, report


def _mode(clock, jobs):
    """(cold_s, warm_s, cold_report, warm_report) for one jobs setting."""
    cache_dir = Path(tempfile.mkdtemp(prefix="lint-bench-cache-"))
    try:
        cold_s, cold_report = _timed_run(clock, cache_dir, jobs)
        warm_s, warm_report = _timed_run(clock, cache_dir, jobs)
        for _ in range(WARM_ROUNDS - 1):
            next_s, warm_report = _timed_run(clock, cache_dir, jobs)
            warm_s = min(warm_s, next_s)
        return cold_s, warm_s, cold_report, warm_report
    finally:
        shutil.rmtree(cache_dir, ignore_errors=True)


def run_lint_timed():
    """Lint the CI targets in all four corners; returns the values dict."""
    clock = MONOTONIC
    serial_cold, serial_warm, report, warm_report = _mode(clock, jobs=1)
    parallel_cold, parallel_warm, _, _ = _mode(clock, jobs=PARALLEL_JOBS)
    return {
        "targets": TARGETS,
        "n_files": report.n_files,
        "n_findings": len(report.findings),
        "n_from_cache_warm": warm_report.n_from_cache,
        "cpu_count": os.cpu_count(),
        "jobs_parallel": PARALLEL_JOBS,
        "serial_cold_s": serial_cold,
        "serial_warm_s": serial_warm,
        "parallel_cold_s": parallel_cold,
        "parallel_warm_s": parallel_warm,
        "warm_speedup": serial_cold / serial_warm if serial_warm > 0 else 0.0,
        "files_per_s_cold": report.n_files / serial_cold if serial_cold else 0.0,
        "warm_rounds": WARM_ROUNDS,
        "smoke": SMOKE,
    }


def test_lint_full_repo(benchmark):
    values = benchmark.pedantic(run_lint_timed, rounds=1, iterations=1)

    print_table(
        f"repro-lint gate ({', '.join(values['targets'])})",
        ["metric", "value"],
        [
            ["files linted", values["n_files"]],
            ["cpu count", values["cpu_count"]],
            ["serial cold", f"{values['serial_cold_s']:.2f} s"],
            ["serial warm", f"{values['serial_warm_s']:.2f} s"],
            [
                f"parallel cold (-j{values['jobs_parallel']})",
                f"{values['parallel_cold_s']:.2f} s",
            ],
            [
                f"parallel warm (-j{values['jobs_parallel']})",
                f"{values['parallel_warm_s']:.2f} s",
            ],
            ["warm speedup", f"{values['warm_speedup']:.1f}x"],
            ["warm cache replays", values["n_from_cache_warm"]],
            ["findings (pre-baseline)", values["n_findings"]],
        ],
    )
    record_bench("lint", values)

    assert values["n_files"] > 0
    assert values["n_from_cache_warm"] == values["n_files"]
    # The gate must stay interactive even at full-repo scope; smoke mode
    # lints a handful of files and asserts only that the engine ran.
    if not SMOKE:
        assert values["serial_cold_s"] < 60.0
        assert values["warm_speedup"] >= 3.0
