"""Full-repo repro-lint timing: the cost of the pre-commit/CI gate.

The dataflow rules (REP009-REP012) build a CFG per function and run a
fixpoint per rule, so linting is no longer a single AST walk; this bench
keeps the cost visible.  The gate stays useful only while a full-repo
run is comfortably interactive (the docs promise "a couple of seconds"),
and ``--changed-only`` exists precisely because this number grows with
the tree -- the bench records the denominator for that trade-off.

``BENCH_SMOKE=1`` lints just ``tools/lint`` for CI; the committed
``BENCH_lint.json`` comes from a full run over the same targets CI
lints (src/repro, tests, benchmarks, tools).
"""

import os
import sys
from pathlib import Path

from conftest import print_table
from record import record_bench
from repro.telemetry.clock import MONOTONIC

REPO_ROOT = Path(__file__).resolve().parents[1]
if str(REPO_ROOT) not in sys.path:
    sys.path.insert(0, str(REPO_ROOT))  # `tools` lives at the repo root

SMOKE = os.environ.get("BENCH_SMOKE") == "1"
TARGETS = ["tools/lint"] if SMOKE else ["src/repro", "tests", "benchmarks", "tools"]
ROUNDS = 1 if SMOKE else 3


def run_lint_timed():
    """Lint the CI targets; returns the recorded values dict."""
    from tools.lint.core import run_lint

    clock = MONOTONIC
    walls = []
    report = None
    for _ in range(ROUNDS):
        t0 = clock()
        report = run_lint([REPO_ROOT / t for t in TARGETS], root=REPO_ROOT)
        walls.append(clock() - t0)
    wall = min(walls)  # best-of: the steady-state cost, not cold caches
    return {
        "targets": TARGETS,
        "n_files": report.n_files,
        "n_findings": len(report.findings),
        "wall_s": wall,
        "files_per_s": report.n_files / wall if wall > 0 else 0.0,
        "rounds": ROUNDS,
        "smoke": SMOKE,
    }


def test_lint_full_repo(benchmark):
    values = benchmark.pedantic(run_lint_timed, rounds=1, iterations=1)

    print_table(
        f"repro-lint full run ({', '.join(values['targets'])})",
        ["metric", "value"],
        [
            ["files linted", values["n_files"]],
            ["wall (best of %d)" % values["rounds"], f"{values['wall_s']:.2f} s"],
            ["throughput", f"{values['files_per_s']:.0f} files/s"],
            ["findings (pre-baseline)", values["n_findings"]],
        ],
    )
    record_bench("lint", values)

    assert values["n_files"] > 0
    # The gate must stay interactive even at full-repo scope; smoke mode
    # lints a handful of files and asserts only that the engine ran.
    if not SMOKE:
        assert values["wall_s"] < 60.0
