"""Table 2: pert/pemodel on EC2 instance types, fully packed.

Paper values (seconds, worst of the batch with the instance fully packed):

    site       processor       pert   pemodel  cores
    m1.small   Opt DC 2.6GHz   13.53  2850.14  0.5
    m1.large   Opt DC 2.0GHz    9.33  1817.13  2
    m1.xlarge  Opt DC 2.0GHz    9.14  1860.81  4
    c1.medium  Core2 2.33GHz    9.80  1008.11  2
    c1.xlarge  Core2 2.33GHz    6.67  1030.42  8
"""

import pytest

from conftest import print_table
from repro.sched import EnsembleCampaign
from repro.sched.ec2 import EC2_INSTANCE_TYPES, ec2_virtual_cluster
from repro.sched.iomodel import IOConfiguration, IOMode

PAPER_TABLE2 = {
    "m1.small": (13.53, 2850.14, 0.5),
    "m1.large": (9.33, 1817.13, 2),
    "m1.xlarge": (9.14, 1860.81, 4),
    "c1.medium": (9.80, 1008.11, 2),
    "c1.xlarge": (6.67, 1030.42, 8),
}


def packed_batch_times() -> dict[str, dict[str, float]]:
    """Run a fully-packed pert+pemodel batch on each instance type.

    The campaign uses the *reference* task times; the instance speed enters
    only through the virtual cluster's calibrated node speed factors, so
    the simulated pemodel runtimes must emerge equal to Table 2.
    """
    out = {}
    for name, itype in EC2_INSTANCE_TYPES.items():
        cluster = ec2_virtual_cluster(name, 1)
        n = cluster.total_cores  # one task per core: fully packed
        campaign = EnsembleCampaign(
            cluster,
            io_config=IOConfiguration(
                mode=IOMode.PRESTAGED, prestage_cost_s=0.0, output_mb=0.0,
                pert_input_mb=0.0, pemodel_input_mb=0.0,
            ),
        )
        stats = campaign.run(campaign.ensemble_specs(n))
        # worst-of-batch == mean here (homogeneous instance)
        out[name] = {"pemodel": stats.mean_runtime_by_kind["pemodel"]}
    return out


def test_table2_ec2_instances(benchmark):
    results = benchmark.pedantic(packed_batch_times, rounds=3, iterations=1)

    rows = []
    for name, itype in EC2_INSTANCE_TYPES.items():
        want = PAPER_TABLE2[name]
        rows.append(
            [
                name,
                itype.processor,
                f"{itype.pert_seconds:.2f}",
                f"{results[name]['pemodel']:.2f}",
                f"{itype.effective_cores:g}",
                f"{want[0]:.2f}",
                f"{want[1]:.2f}",
            ]
        )
    print_table(
        "Table 2: pert/pemodel performance on EC2 instance types (seconds)",
        ["site", "processor", "pert", "pemodel", "cores", "paper pert", "paper pemodel"],
        rows,
    )

    for name, (pert, pemodel, cores) in PAPER_TABLE2.items():
        # DES reruns the calibrated task on the calibrated node: exact
        assert results[name]["pemodel"] == pytest.approx(pemodel, rel=0.01)
        assert EC2_INSTANCE_TYPES[name].effective_cores == cores
    # shape: the compute-optimized c1 family wins on pemodel, m1.small loses
    assert results["c1.medium"]["pemodel"] < results["m1.large"]["pemodel"]
    assert results["m1.small"]["pemodel"] > 1.5 * results["c1.xlarge"]["pemodel"]
