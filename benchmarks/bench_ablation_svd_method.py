"""Ablation: the ESSE SVD at growing ensemble sizes (Sec 4.1).

"The SVD and the convergence test are large calculations requiring a lot
of memory and time, especially for large N ... though the use of
SCALAPACK for distributed memory clusters may become necessary in the
future if our ensembles get too large."

The ablation compares the dense LAPACK thin SVD against the randomized
range-finder at the paper's projected ensemble sizes (Sec 7 targets
1000-10000 members), on the full AOSN-II state dimension.
"""

import numpy as np
import pytest

from conftest import print_table
from repro.telemetry.clock import MONOTONIC
from repro.util.linalg import randomized_svd, thin_svd

STATE_DIM = 34776  # the 42x36x10 default layout size
RANK = 60  # the default ESSE truncation


def esse_like_anomalies(rng, n_members: int) -> np.ndarray:
    """Low-rank decaying signal + noise floor: what ensembles produce."""
    signal_rank = 120
    u, _ = np.linalg.qr(rng.standard_normal((STATE_DIM, signal_rank)))
    sig = np.geomspace(5.0, 0.3, signal_rank)
    coeffs = rng.standard_normal((signal_rank, n_members))
    a = (u * sig) @ coeffs + 0.1 * rng.standard_normal((STATE_DIM, n_members))
    return a / np.sqrt(n_members - 1)


def run_sweep(clock=MONOTONIC):
    rng = np.random.default_rng(0)
    results = {}
    for n_members in (200, 600, 1200):
        a = esse_like_anomalies(rng, n_members)
        t0 = clock()
        _, s_exact, _ = thin_svd(a)
        t_lapack = clock() - t0
        t0 = clock()
        _, s_rand, _ = randomized_svd(a, rank=RANK, rng=rng)
        t_rand = clock() - t0
        err = float(np.abs(s_rand - s_exact[:RANK]).max() / s_exact[0])
        results[n_members] = (t_lapack, t_rand, err)
    return results


def test_ablation_svd_method(benchmark):
    results = benchmark.pedantic(run_sweep, rounds=1, iterations=1)

    rows = [
        [
            n,
            f"{t_lapack:.2f} s",
            f"{t_rand:.2f} s",
            f"{t_lapack / t_rand:.1f}x",
            f"{100 * err:.2f}%",
        ]
        for n, (t_lapack, t_rand, err) in results.items()
    ]
    print_table(
        f"Ablation: dense vs randomized SVD (n={STATE_DIM}, rank {RANK})",
        ["N members", "LAPACK", "randomized", "speedup", "sigma err"],
        rows,
    )

    for n, (t_lapack, t_rand, err) in results.items():
        # the sketch recovers the retained spectrum to sub-percent accuracy
        assert err < 0.05
    # the advantage grows with ensemble size -- the paper's exact worry
    speedups = {n: tl / tr for n, (tl, tr, _) in results.items()}
    assert speedups[1200] > 1.0
    assert speedups[1200] >= 0.8 * speedups[200]
