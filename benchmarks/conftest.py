"""Shared helpers for the reproduction benchmarks.

Every ``bench_*`` module regenerates one table or figure from the paper's
evaluation and prints it in the paper's row format next to the published
values.  Absolute wall-clock numbers are not expected to match (the
substrate is a simulator, not the authors' testbed); the *shape* -- who
wins, by what factor, where crossovers fall -- is asserted.
"""

import numpy as np
import pytest


def print_table(title: str, headers: list[str], rows: list[list]) -> None:
    """Print one paper-style table."""
    widths = [
        max(len(str(headers[c])), max((len(str(r[c])) for r in rows), default=0))
        for c in range(len(headers))
    ]
    print(f"\n{title}")
    line = "  ".join(str(h).ljust(w) for h, w in zip(headers, widths))
    print(line)
    print("-" * len(line))
    for row in rows:
        print("  ".join(str(v).ljust(w) for v, w in zip(row, widths)))


@pytest.fixture(scope="session")
def small_esse_setup():
    """A small but real ESSE configuration shared by the figure benches."""
    from repro.core import PerturbationGenerator, synthetic_initial_subspace
    from repro.core.ensemble import EnsembleRunner
    from repro.ocean import PEModel
    from repro.ocean.bathymetry import monterey_grid

    grid = monterey_grid(nx=16, ny=14, nz=3)
    model = PEModel(grid=grid)
    background = model.run(model.rest_state(), 86400.0)
    subspace = synthetic_initial_subspace(
        model.layout, grid.shape2d, grid.nz, rank=8, seed=0
    )
    perturber = PerturbationGenerator(model.layout, subspace, root_seed=5)
    runner = EnsembleRunner(model, perturber, duration=8 * 400.0, root_seed=5)
    return {
        "grid": grid,
        "model": model,
        "background": background,
        "subspace": subspace,
        "runner": runner,
    }
