"""Kernel costs of the reproduction's own singletons.

The paper's workload economics rest on per-task cost asymmetries: ``pert``
is seconds, ``pemodel`` is half an hour, the SVD "require[s] a lot of
memory and time, especially for large N", and an acoustic singleton is ~3
minutes.  This bench measures the same inventory for *this* implementation
on the full-size AOSN-II domain, verifying the asymmetry survives the
translation (perturbation << model step x steps; SVD grows with N).
"""

import numpy as np
import pytest

from conftest import print_table
from record import record_bench
from repro.acoustics import extract_section, transmission_loss
from repro.core import (
    ESSEAnalysis,
    PerturbationGenerator,
    synthetic_initial_subspace,
)
from repro.obs.network import aosn2_network
from repro.ocean import PEModel
from repro.util.linalg import thin_svd


@pytest.fixture(scope="module")
def kernel_results():
    """Accumulates per-kernel mean timings; written as BENCH_kernels.json."""
    results = {}
    yield results
    if results:
        record_bench("kernels", results)


@pytest.fixture(scope="module")
def full_domain():
    model = PEModel()  # the 42x36x10 AOSN-II-like default
    background = model.run(model.rest_state(), 20 * model.config.dt)
    subspace = synthetic_initial_subspace(
        model.layout, model.grid.shape2d, model.grid.nz, rank=30, seed=0
    )
    return model, background, subspace


def test_kernel_model_step(benchmark, full_domain, kernel_results):
    """One pemodel time step on the full domain."""
    model, background, _ = full_domain
    state = background

    def step():
        return model.step(state)

    benchmark(step)
    per_step = benchmark.stats.stats.mean
    kernel_results["model_step_s"] = per_step
    steps_per_day = int(86400 / model.config.dt)
    print_table(
        "Kernel: pemodel step (42x36x10 domain)",
        ["per step", "per model-day", "state dim"],
        [[f"{1e3 * per_step:.2f} ms", f"{per_step * steps_per_day:.2f} s",
          model.layout.size]],
    )
    assert per_step < 0.1  # a model day stays O(seconds)


def test_kernel_perturbation(benchmark, full_domain, kernel_results):
    """One pert singleton: cheap next to the forecast (paper Table 1)."""
    model, background, subspace = full_domain
    gen = PerturbationGenerator(model.layout, subspace, root_seed=0)
    mean = model.to_vector(background)
    benchmark(lambda: gen.member_state(mean, 7))
    kernel_results["perturbation_s"] = benchmark.stats.stats.mean
    assert benchmark.stats.stats.mean < 0.05


def test_kernel_esse_svd(benchmark, full_domain, kernel_results):
    """The SVD of a 600-member anomaly matrix on the full state."""
    model, _, _ = full_domain
    rng = np.random.default_rng(0)
    anomalies = rng.standard_normal((model.layout.size, 600)) / np.sqrt(599)

    result = benchmark.pedantic(
        lambda: thin_svd(anomalies), rounds=2, iterations=1
    )
    u, s, _ = result
    kernel_results["esse_svd_600_s"] = benchmark.stats.stats.mean
    print_table(
        "Kernel: ESSE SVD (n x N thin SVD)",
        ["n", "N", "time"],
        [[model.layout.size, 600, f"{benchmark.stats.stats.mean:.2f} s"]],
    )
    assert u.shape == (model.layout.size, 600)
    assert np.all(np.diff(s) <= 1e-12)


def test_kernel_acoustic_singleton(benchmark, full_domain, kernel_results):
    """One acoustic-climate task (section + normal-mode TL)."""
    model, background, _ = full_domain
    grid = model.grid
    lx, ly = grid.nx * grid.dx, grid.ny * grid.dy

    def singleton():
        section = extract_section(
            grid, background, (0.6 * lx, 0.5 * ly), (0.1 * lx, 0.5 * ly),
            n_ranges=16, dz=4.0, max_depth=300.0,
        )
        return transmission_loss(section, 200.0, source_depth=30.0)

    field = benchmark.pedantic(singleton, rounds=3, iterations=1)
    kernel_results["acoustic_singleton_s"] = benchmark.stats.stats.mean
    assert np.all(np.isfinite(field.tl))
    assert benchmark.stats.stats.mean < 5.0


def test_kernel_analysis_update(benchmark, full_domain, kernel_results):
    """The Woodbury analysis with a realistic observation batch."""
    model, background, subspace = full_domain
    network = aosn2_network(
        model.grid, model.layout, rng=np.random.default_rng(1)
    )
    batch = network.observe(background)
    analysis = ESSEAnalysis(model.layout)
    x = model.to_vector(background)

    result = benchmark.pedantic(
        lambda: analysis.update(x, subspace, batch.operator),
        rounds=3,
        iterations=1,
    )
    kernel_results["analysis_update_s"] = benchmark.stats.stats.mean
    print_table(
        "Kernel: ESSE analysis (Woodbury, m obs x p modes)",
        ["m", "p", "time"],
        [[batch.size, subspace.rank, f"{1e3 * benchmark.stats.stats.mean:.1f} ms"]],
    )
    assert result.subspace.rank <= subspace.rank
    assert benchmark.stats.stats.mean < 2.0
