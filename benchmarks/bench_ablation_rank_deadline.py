"""Ablations: subspace rank selection and the forecast deadline Tmax.

- *Rank selection* (Sec 3.1: "the dominant error modes (based on a
  comparison of the singular values)"): a fixed rank cap vs an
  energy-based cutoff changes how much sampling noise enters the analysis.
- *Deadline* (Sec 4: "until the time Tmax available for the forecast
  expires"): a hard wall-clock budget trades ensemble size (and subspace
  quality) for timeliness -- the defining constraint of real-time
  forecasting (Sec 4 point 1).
"""

import pytest

from conftest import print_table
from repro.core import ESSEConfig, ESSEDriver


def run_rank_sweep(setup):
    model, background, subspace = (
        setup["model"],
        setup["background"],
        setup["subspace"],
    )
    out = {}
    for label, rank, energy in [
        ("rank 4", 4, 0.9999),
        ("rank 8", 8, 0.9999),
        ("rank 16", 16, 0.9999),
        ("energy 90%", 64, 0.90),
        ("energy 99%", 64, 0.99),
    ]:
        driver = ESSEDriver(
            model,
            ESSEConfig(
                initial_ensemble_size=16,
                max_ensemble_size=16,  # fixed ensemble: isolate truncation
                convergence_tolerance=1.0,
                max_subspace_rank=rank,
                svd_energy=energy,
            ),
            root_seed=1,
        )
        out[label] = driver.forecast(background, subspace, duration=8 * 400.0)
    return out


def test_ablation_rank_selection(benchmark, small_esse_setup):
    results = benchmark.pedantic(
        lambda: run_rank_sweep(small_esse_setup), rounds=1, iterations=1
    )

    rows = []
    for label, fc in results.items():
        sub = fc.subspace
        rows.append(
            [
                label,
                sub.rank,
                f"{sub.total_variance:.2f}",
                f"{sub.sigmas[0]:.2f}",
                f"{sub.sigmas[-1]:.2f}",
            ]
        )
    print_table(
        "Ablation: subspace truncation (N=16 fixed)",
        ["selection", "retained rank", "total var", "sigma_1", "sigma_p"],
        rows,
    )

    # fixed-rank caps are monotone in retained variance
    assert (
        results["rank 4"].subspace.total_variance
        <= results["rank 8"].subspace.total_variance
        <= results["rank 16"].subspace.total_variance
    )
    # energy cutoffs adapt the rank to the spectrum
    assert (
        results["energy 90%"].subspace.rank
        < results["energy 99%"].subspace.rank
    )
    # every variant keeps the dominant mode identical (same leading sigma)
    leading = {f"{fc.subspace.sigmas[0]:.6f}" for fc in results.values()}
    assert len(leading) == 1


def run_deadline_sweep(setup):
    model, background, subspace = (
        setup["model"],
        setup["background"],
        setup["subspace"],
    )
    out = {}
    for label, deadline in [
        ("tight (0 s)", 0.0),
        ("moderate (5 s)", 5.0),
        ("unlimited", None),
    ]:
        driver = ESSEDriver(
            model,
            ESSEConfig(
                initial_ensemble_size=4,
                max_ensemble_size=32,
                convergence_tolerance=1.0,  # never converges: deadline rules
                max_subspace_rank=8,
                deadline_seconds=deadline,
            ),
            root_seed=1,
        )
        out[label] = driver.forecast(background, subspace, duration=4 * 400.0)
    return out


def test_ablation_deadline(benchmark, small_esse_setup):
    results = benchmark.pedantic(
        lambda: run_deadline_sweep(small_esse_setup), rounds=1, iterations=1
    )

    rows = [
        [
            label,
            fc.ensemble_size,
            f"{fc.wall_seconds:.2f} s",
            "yes" if fc.converged else "no",
        ]
        for label, fc in results.items()
    ]
    print_table(
        "Ablation: forecast deadline Tmax (tolerance unreachable)",
        ["deadline", "members", "wall", "converged"],
        rows,
    )

    tight = results["tight (0 s)"]
    unlimited = results["unlimited"]
    # the deadline caps the ensemble; no deadline runs to Nmax
    assert tight.ensemble_size < unlimited.ensemble_size
    assert unlimited.ensemble_size == 32
    # a truncated ensemble still yields a usable subspace (timeliness wins)
    assert tight.subspace.rank >= 1
