"""Sec 5.2.1 (acoustics): 6000+ ~3-minute acoustic jobs, no job arrays.

"The ESSE calculation was followed by more than 6000 ocean acoustics
realizations -- each of which executed for approximately 3 minutes -- in
this case no job arrays were used and the system handled all 6000+ jobs
without any problem whatsoever."

Two parts: (a) the scheduler-scale campaign through the calibrated DES,
(b) a real (scaled-down) acoustic-climate ensemble through the normal-mode
solver, timing actual singleton cost.
"""

import time

import pytest

from conftest import print_table
from repro.acoustics import AcousticClimate, acoustic_climate_tasks
from repro.ocean import PEModel
from repro.ocean.bathymetry import monterey_grid
from repro.sched import EnsembleCampaign, mseas_cluster
from repro.sched.schedulers import SGEPolicy

N_JOBS = 6000


def run_acoustic_campaign():
    campaign = EnsembleCampaign(
        mseas_cluster(), policy=SGEPolicy(), as_job_array=False
    )
    return campaign.run(campaign.acoustic_specs(N_JOBS))


def test_acoustics_6000_campaign(benchmark):
    stats = benchmark.pedantic(run_acoustic_campaign, rounds=1, iterations=1)
    print_table(
        "Sec 5.2.1: 6000 acoustic singletons on 210 cores (DES)",
        ["jobs", "mean runtime", "makespan", "mean wait", "paper"],
        [
            [
                stats.job_count,
                f"{stats.mean_runtime_by_kind['acoustic']:.0f} s",
                f"{stats.makespan_minutes:.0f} min",
                f"{stats.mean_wait_seconds / 60:.1f} min",
                "~3 min/job, 6000+ jobs, no problem",
            ]
        ],
    )
    assert stats.job_count == N_JOBS
    # each job ~3 minutes
    assert stats.mean_runtime_by_kind["acoustic"] == pytest.approx(180.0, rel=0.1)
    # ideal makespan = 6000 * 180 / 210 cores = 85.7 min; overhead < 20%
    ideal = N_JOBS * 180.0 / 210 / 60
    assert ideal <= stats.makespan_minutes < 1.2 * ideal


def test_real_acoustic_singletons(benchmark, small_esse_setup):
    """Actual normal-mode TL singletons: verify many-task feasibility."""
    grid = small_esse_setup["grid"]
    model = small_esse_setup["model"]
    state = small_esse_setup["background"]
    tasks = acoustic_climate_tasks(
        grid, n_slices=4, frequencies=(100.0, 200.0), source_depths=(15.0, 60.0)
    )

    def run_climate():
        return AcousticClimate(grid, tasks).run(state, n_ranges=10, max_depth=140.0)

    climate = benchmark.pedantic(run_climate, rounds=1, iterations=1)
    per_task_ms = 1000.0 * benchmark.stats.stats.mean / len(tasks)
    print_table(
        "Real acoustic-climate singletons (normal-mode TL)",
        ["tasks", "completed", "failed", "per-task cost"],
        [
            [
                len(tasks),
                climate.completed,
                len(climate.failures),
                f"{per_task_ms:.1f} ms",
            ]
        ],
    )
    assert climate.completed == len(tasks)
    stats = climate.tl_statistics()
    assert 30.0 < stats["mean"] < 160.0
