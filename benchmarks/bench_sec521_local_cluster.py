"""Sec 5.2.1: the 600-member ESSE campaign on the local cluster.

Paper observations reproduced here:

- "600 ensemble members pass through the ESSE workflow in ~77 mins in the
  all local I/O case and in ~86 mins in the mixed locality case";
- prestaging input files raised pert CPU utilization "from ~20% to ~100%";
- "Timings under Condor were between 10-20% slower" than SGE.
"""

import pytest

from conftest import print_table
from repro.sched import EnsembleCampaign, mseas_cluster
from repro.sched.iomodel import IOConfiguration, IOMode
from repro.sched.schedulers import CondorPolicy, SGEPolicy

N_MEMBERS = 600


def run_campaigns() -> dict[str, object]:
    out = {}
    for label, policy, mode in [
        ("sge_local", SGEPolicy(), IOMode.PRESTAGED),
        ("sge_nfs", SGEPolicy(), IOMode.NFS),
        ("condor_local", CondorPolicy(), IOMode.PRESTAGED),
        ("condor_nfs", CondorPolicy(), IOMode.NFS),
    ]:
        campaign = EnsembleCampaign(
            mseas_cluster(), policy=policy, io_config=IOConfiguration(mode=mode)
        )
        out[label] = campaign.run(campaign.ensemble_specs(N_MEMBERS))
    return out


def test_sec521_local_cluster(benchmark):
    stats = benchmark.pedantic(run_campaigns, rounds=1, iterations=1)

    rows = []
    paper = {
        "sge_local": "~77 min",
        "sge_nfs": "~86 min",
        "condor_local": "10-20% over SGE",
        "condor_nfs": "10-20% over SGE",
    }
    for label, s in stats.items():
        rows.append(
            [
                label,
                f"{s.makespan_minutes:.1f} min",
                f"{100 * s.cpu_utilization_by_kind['pert']:.0f}%",
                f"{100 * s.cpu_utilization_by_kind['pemodel']:.0f}%",
                paper[label],
            ]
        )
    print_table(
        f"Sec 5.2.1: {N_MEMBERS}-member ESSE campaign, 210 cores",
        ["scenario", "makespan", "pert util", "pemodel util", "paper"],
        rows,
    )

    local, nfs = stats["sge_local"], stats["sge_nfs"]
    condor = stats["condor_local"]
    # makespans land in the paper's band
    assert 70.0 < local.makespan_minutes < 85.0  # paper ~77
    assert 80.0 < nfs.makespan_minutes < 95.0  # paper ~86
    assert nfs.makespan_minutes > local.makespan_minutes
    # prestaging boosts pert CPU utilization ~20% -> ~100%
    assert nfs.cpu_utilization_by_kind["pert"] < 0.3
    assert local.cpu_utilization_by_kind["pert"] > 0.7
    # pemodel barely changes ("does not [get] as much of a performance boost")
    assert (
        abs(
            local.cpu_utilization_by_kind["pemodel"]
            - nfs.cpu_utilization_by_kind["pemodel"]
        )
        < 0.15
    )
    # Condor 10-20% slower than SGE
    ratio = condor.makespan_minutes / local.makespan_minutes
    assert 1.05 < ratio < 1.35
