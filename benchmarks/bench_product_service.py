"""Load benchmark for the forecast-product service read path.

The paper's web-distribution step (Fig 1 middle row) must survive "heavy
traffic after a forecast lands": many concurrent readers hitting the
newest published snapshot while the next cycle publishes.  This bench
drives the real asyncio server (``repro.products.server``) with
closed-loop client fleets at several concurrency levels, with the
response/snapshot caches on and off, and records

- sustained requests/s per (cache mode, concurrency) pair,
- per-request latency p50/p99 (client-observed, keep-alive connections),
- the response-cache hit rate from the metrics registry.

The request mix models a map front end: the product manifest, coarse
field overviews (LOD 1-2), a handful of tiles, and periodic ETag
revalidations (``If-None-Match`` -> 304).

``BENCH_SMOKE=1`` shrinks the fleet for CI; the committed
``BENCH_product_service.json`` comes from a full-size run.
"""

import asyncio
import os

import numpy as np

from conftest import print_table
from record import record_bench
from repro.products.server import ProductHTTPServer, fetch
from repro.products.service import ProductService
from repro.products.store import ProductStore
from repro.realtime.products import CandidateScore, ForecastProduct
from repro.telemetry.clock import MONOTONIC
from repro.telemetry.metrics import MetricsRegistry

SMOKE = os.environ.get("BENCH_SMOKE") == "1"
FIELD_SHAPE = (24, 32) if SMOKE else (48, 64)
CONCURRENCY_LEVELS = (2, 4) if SMOKE else (4, 16)
REQUESTS_PER_CLIENT = 40 if SMOKE else 250

#: The closed-loop request mix one map client cycles through.
TARGETS = (
    "/v1/products/latest",
    "/v1/products/latest/fields/sst_nowcast?level=2",
    "/v1/products/latest/fields/sst_sigma?level=1",
    "/v1/products/latest/tiles/sst_nowcast/0/0",
    "/v1/products/latest/tiles/sst_nowcast/1/1",
    "/v1/products/latest/tiles/sst_sigma/0/1",
)


def seed_store(workdir) -> ProductStore:
    """Publish one realistic snapshot for the fleet to hammer."""
    rng = np.random.default_rng(7)
    store = ProductStore(workdir, tile_size=8, levels=2)
    sst = 12.0 + rng.standard_normal(FIELD_SHAPE)
    sigma = np.abs(rng.standard_normal(FIELD_SHAPE)) * 0.3
    sst[:4, :4] = np.nan  # a land corner, like the real grids
    sigma[:4, :4] = np.nan
    product = ForecastProduct(
        cycle_index=0,
        nowcast_time=21600.0,
        selected="central",
        scores=(CandidateScore(label="central", weighted_rmse=0.4),),
        sst_mean=12.0,
        sst_min=9.0,
        sst_max=15.0,
        sst_sigma_median=0.3,
        ensemble_size=16,
        converged=True,
    )
    store.publish(product, {"sst_nowcast": sst, "sst_sigma": sigma})
    return store


async def client_loop(server, n_requests, clock, latencies):
    """One closed-loop client on a persistent keep-alive connection."""
    reader, writer = await asyncio.open_connection(server.host, server.port)
    etag = None
    try:
        for k in range(n_requests):
            target = TARGETS[k % len(TARGETS)]
            headers = {}
            if etag is not None and k % 5 == 4:
                # every 5th request revalidates the manifest it saw
                target = TARGETS[0]
                headers = {"If-None-Match": etag}
            t0 = clock()
            status, response_headers, _ = await fetch(
                server.host, server.port, target,
                headers=headers, reader=reader, writer=writer,
            )
            latencies.append(clock() - t0)
            if status not in (200, 304):
                raise AssertionError(f"{target} answered {status}")
            if target == TARGETS[0] and status == 200:
                etag = response_headers.get("etag", etag)
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):
            pass


def run_level(workdir, concurrency, cache_size, clock=MONOTONIC):
    """One (cache mode, concurrency) measurement; returns its metrics."""

    async def main():
        registry = MetricsRegistry()
        service = ProductService(
            workdir, cache_size=cache_size, registry=registry
        )
        server = ProductHTTPServer(service)
        latencies: list[float] = []
        async with server.serving():
            t0 = clock()
            await asyncio.gather(
                *(
                    client_loop(server, REQUESTS_PER_CLIENT, clock, latencies)
                    for _ in range(concurrency)
                )
            )
            elapsed = clock() - t0
        counters = registry.snapshot()["counters"]
        hits = counters.get("product_cache_hits{cache=responses}", 0.0)
        misses = counters.get("product_cache_misses{cache=responses}", 0.0)
        total = concurrency * REQUESTS_PER_CLIENT
        return {
            "requests": total,
            "rps": total / elapsed,
            "p50_ms": float(np.percentile(latencies, 50)) * 1e3,
            "p99_ms": float(np.percentile(latencies, 99)) * 1e3,
            "hit_rate": hits / (hits + misses) if (hits + misses) else 0.0,
        }

    return asyncio.run(main())


def run_load(workdir, clock=MONOTONIC):
    """The full grid: cache on/off x every concurrency level."""
    store = seed_store(workdir)
    values = {
        "field_shape": f"{FIELD_SHAPE[0]}x{FIELD_SHAPE[1]}",
        "requests_per_client": REQUESTS_PER_CLIENT,
        "smoke": SMOKE,
    }
    for cache_size, mode in ((256, "on"), (0, "off")):
        for concurrency in CONCURRENCY_LEVELS:
            level = run_level(store.workdir, concurrency, cache_size, clock)
            prefix = f"cache_{mode}_c{concurrency}"
            values[f"{prefix}_rps"] = level["rps"]
            values[f"{prefix}_p50_ms"] = level["p50_ms"]
            values[f"{prefix}_p99_ms"] = level["p99_ms"]
            values[f"{prefix}_hit_rate"] = level["hit_rate"]
    return values


def test_product_service_load(benchmark, tmp_path):
    values = benchmark.pedantic(run_load, args=(tmp_path,), rounds=1, iterations=1)

    rows = []
    for mode in ("on", "off"):
        for concurrency in CONCURRENCY_LEVELS:
            prefix = f"cache_{mode}_c{concurrency}"
            rows.append(
                [
                    f"cache {mode}, {concurrency} clients",
                    f"{values[f'{prefix}_rps']:.0f}",
                    f"{values[f'{prefix}_p50_ms']:.2f}",
                    f"{values[f'{prefix}_p99_ms']:.2f}",
                    f"{values[f'{prefix}_hit_rate']:.2f}",
                ]
            )
    print_table(
        f"Product service load ({values['field_shape']} fields, "
        f"{values['requests_per_client']} requests/client)",
        ["configuration", "req/s", "p50 ms", "p99 ms", "hit rate"],
        rows,
    )
    record_bench("product_service", values)

    top = max(CONCURRENCY_LEVELS)
    # The caches are the point of the read path: with them on, repeated
    # reads of the immutable version skip render + npz decode entirely.
    floor = 0.8 if SMOKE else 1.0  # smoke runs sit in fixed overheads
    assert values[f"cache_on_c{top}_rps"] > floor * values[f"cache_off_c{top}_rps"]
    assert values[f"cache_on_c{top}_hit_rate"] > 0.9
    assert values[f"cache_off_c{top}_hit_rate"] == 0.0
    for mode in ("on", "off"):
        for concurrency in CONCURRENCY_LEVELS:
            prefix = f"cache_{mode}_c{concurrency}"
            assert values[f"{prefix}_p50_ms"] <= values[f"{prefix}_p99_ms"]
