"""Sec 7 (future work): mixed local/Grid/EC2 runs via MyCluster federation.

"We also plan to test the feasibility of a mixed local/Grid/EC2 run
employing MyCluster."  The bench runs the same oversized campaign on:

- the home cluster alone (a busy day: only 60 cores free),
- home + Purdue TeraGrid slice (MyCluster federation),
- home + a fixed 20-instance EC2 virtual cluster,
- home + *elastic* EC2 (UniCloud-style demand-driven provisioning),

comparing makespan, and dollar cost where EC2 is involved.
"""

import pytest

from conftest import print_table
from repro.sched import (
    ClusterScheduler,
    EC2_INSTANCE_TYPES,
    EC2CostModel,
    EnsembleCampaign,
    JobState,
    SGEPolicy,
    Simulator,
    TERAGRID_SITES,
    ec2_virtual_cluster,
    mseas_cluster,
)
from repro.sched.elastic import ElasticEC2Pool
from repro.sched.federation import federate
from repro.sched.iomodel import IOConfiguration, IOMode

N_MEMBERS = 400
LOCAL_CORES = 60  # "a busy day": most of the home cluster is taken


def fast_io():
    return IOConfiguration(
        mode=IOMode.PRESTAGED, prestage_cost_s=0.0,
        pert_input_mb=0.0, pemodel_input_mb=0.0, output_mb=0.0,
    )


def run_scenarios():
    out = {}
    cost_model = EC2CostModel()

    def campaign_on(cluster):
        campaign = EnsembleCampaign(cluster, io_config=fast_io())
        return campaign.run(campaign.ensemble_specs(N_MEMBERS))

    out["local only"] = (campaign_on(mseas_cluster(LOCAL_CORES)), 0.0)

    fed_grid = federate(
        [mseas_cluster(LOCAL_CORES), TERAGRID_SITES["Purdue"].cluster()]
    )
    out["local + Purdue"] = (campaign_on(fed_grid), 0.0)

    fed_ec2 = federate(
        [mseas_cluster(LOCAL_CORES), ec2_virtual_cluster("c1.xlarge", 20)]
    )
    stats = campaign_on(fed_ec2)
    hours = stats.makespan_seconds / 3600.0
    fixed_cost = cost_model.compute_cost(
        EC2_INSTANCE_TYPES["c1.xlarge"], 20, hours
    )
    out["local + EC2 x20 fixed"] = (stats, fixed_cost)

    # elastic EC2: instances boot on demand and release at hour boundaries
    sim = Simulator()
    scheduler = ClusterScheduler(
        sim, mseas_cluster(LOCAL_CORES), SGEPolicy(), fast_io()
    )
    pool = ElasticEC2Pool(sim, scheduler, "c1.xlarge", max_instances=20)
    campaign = EnsembleCampaign(mseas_cluster(LOCAL_CORES))
    scheduler.submit(campaign.ensemble_specs(N_MEMBERS))
    sim.run()
    done = sum(1 for j in scheduler.jobs.values() if j.state is JobState.DONE)
    assert done == 2 * N_MEMBERS
    makespan = max(
        j.end_time for j in scheduler.jobs.values() if j.state is JobState.DONE
    )

    class _ElasticStats:
        makespan_seconds = makespan
        makespan_minutes = makespan / 60.0

    out["local + EC2 elastic"] = (_ElasticStats(), pool.total_cost())
    out["_pool"] = pool
    return out


def test_federation_cloudburst(benchmark):
    results = benchmark.pedantic(run_scenarios, rounds=1, iterations=1)
    pool = results.pop("_pool")

    rows = [
        [
            label,
            f"{stats.makespan_minutes:.0f} min",
            f"${cost:.2f}" if cost else "-",
        ]
        for label, (stats, cost) in results.items()
    ]
    print_table(
        f"Sec 7: {N_MEMBERS}-member campaign, {LOCAL_CORES} free local cores "
        f"(elastic pool booted {pool.boots} instances)",
        ["resources", "makespan", "EC2 cost"],
        rows,
    )

    local = results["local only"][0]
    grid = results["local + Purdue"][0]
    fixed = results["local + EC2 x20 fixed"][0]
    elastic, elastic_cost = results["local + EC2 elastic"]
    # every augmentation helps
    assert grid.makespan_seconds < local.makespan_seconds
    assert fixed.makespan_seconds < local.makespan_seconds
    assert elastic.makespan_seconds < local.makespan_seconds
    # elastic stays within the cap and costs something sane
    assert pool.boots <= 20
    assert 0.0 < elastic_cost < 200.0
