"""Machine-readable benchmark results: ``BENCH_<name>.json`` writers.

The benches print paper-style tables for humans; this module is the
machine side, so the perf trajectory of the repo stops being empty.
Each call writes one ``BENCH_<name>.json`` file containing the measured
values plus (optionally) a metrics-registry snapshot and a pointer to an
exported telemetry run log:

    {"bench": "fig4_parallel_workflow",
     "values": {"serial_wall_s": ..., "parallel_wall_s": ..., ...},
     "metrics": {"counters": {...}, "gauges": {...}, "histograms": {...}},
     "artifacts": {"trace_jsonl": "..."}}

The output directory defaults to ``benchmarks/results/`` next to this
file and is overridable with the ``BENCH_OUTPUT_DIR`` environment
variable (CI points it at an artifact store).
"""

from __future__ import annotations

import json
import os
import re
import time
from pathlib import Path


def output_dir() -> Path:
    """The directory receiving ``BENCH_*.json`` files (created on use)."""
    root = os.environ.get("BENCH_OUTPUT_DIR")
    path = Path(root) if root else Path(__file__).resolve().parent / "results"
    path.mkdir(parents=True, exist_ok=True)
    return path


def record_bench(
    name: str,
    values: dict,
    metrics=None,
    artifacts: dict | None = None,
) -> Path:
    """Write one bench's results as ``BENCH_<name>.json``; returns the path.

    Parameters
    ----------
    name:
        Bench identifier (sanitised to ``[A-Za-z0-9_.-]``).
    values:
        Flat mapping of measurement name -> number/string.  Non-finite
        floats are stored as strings so the file stays strict JSON.
    metrics:
        Optional :class:`~repro.telemetry.metrics.MetricsRegistry` (or a
        prepared snapshot dict) stored under ``"metrics"``.
    artifacts:
        Optional mapping of artifact label -> path (e.g. an exported
        trace) for tooling to pick up alongside the numbers.
    """
    from repro.telemetry.metrics import MetricsRegistry

    safe = re.sub(r"[^A-Za-z0-9_.-]", "_", name)
    if not safe:
        raise ValueError(f"bench name {name!r} sanitises to nothing")
    snapshot = metrics.snapshot() if isinstance(metrics, MetricsRegistry) else metrics

    def jsonable(value):
        if isinstance(value, float) and (value != value or value in (
            float("inf"), float("-inf")
        )):
            return str(value)
        return value

    payload = {
        "bench": safe,
        "recorded_unix": time.time(),  # repro-lint: disable=REP002 -- wall-clock date of the record itself
        "values": {k: jsonable(v) for k, v in values.items()},
    }
    if snapshot is not None:
        payload["metrics"] = snapshot
    if artifacts:
        payload["artifacts"] = {k: str(v) for k, v in artifacts.items()}
    path = output_dir() / f"BENCH_{safe}.json"
    from repro.util.fsio import durable_replace

    tmp = path.with_suffix(".json.tmp")
    tmp.write_text(json.dumps(payload, indent=2, default=str))
    durable_replace(tmp, path)
    return path
