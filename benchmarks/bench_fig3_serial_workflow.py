"""Fig 3: the serial ESSE implementation and its bottlenecks.

The serial shepherd runs perturb/forecast for all members, then the diff
loop, then the SVD + convergence test, repeating with a larger N on
failure.  The bench reports the per-phase breakdown, demonstrating the
paper's bottleneck analysis: no exposed parallelism -- the forecast loop
dominates and nothing overlaps.
"""

import pytest

from conftest import print_table
from repro.core import ESSEConfig
from repro.workflow import SerialESSEWorkflow


def test_fig3_serial_workflow(benchmark, small_esse_setup, tmp_path):
    runner = small_esse_setup["runner"]
    background = small_esse_setup["background"]
    config = ESSEConfig(
        initial_ensemble_size=6,
        max_ensemble_size=24,
        convergence_tolerance=0.93,
        max_subspace_rank=8,
    )

    def run_serial():
        workflow = SerialESSEWorkflow(runner, config, tmp_path / "serial")
        workflow.status.clear()
        return workflow.run(background)

    result = benchmark.pedantic(run_serial, rounds=1, iterations=1)

    fractions = result.timings.phase_fractions()
    rows = [
        [phase, f"{seconds:.3f} s", f"{100 * fraction:.1f}%"]
        for phase, seconds, fraction in [
            ("pert+forecast loop", sum(result.timings.pert_forecast),
             fractions["pert_forecast"]),
            ("diff loop", sum(result.timings.diff), fractions["diff"]),
            ("SVD + convergence", sum(result.timings.svd_conv),
             fractions["svd_conv"]),
        ]
    ]
    print_table(
        f"Fig 3: serial shepherd phases (N={result.ensemble_size}, "
        f"rounds={len(result.timings.round_sizes)}, "
        f"converged={result.converged})",
        ["phase", "time", "fraction"],
        rows,
    )

    # bottleneck 1: the forecast loop dominates and is fully serial
    assert fractions["pert_forecast"] > 0.5
    # phases are strictly sequential: their fractions account for all time
    assert sum(fractions.values()) == pytest.approx(1.0)
    # the staged enlargement ran at least one round
    assert len(result.timings.round_sizes) >= 1
    assert result.ensemble_size >= 6
