"""Ablation: ensemble-enlargement schedule (Sec 4: "enlarged (in stages)").

How aggressively should the pool grow from N toward Nmax when convergence
fails?  Small growth factors approach the minimal converged ensemble but
pay for many SVD/convergence checks and risk pipeline stalls; large
factors overshoot, wasting members.  Measured on the real ESSE loop
(members used, checks run) and costed on the DES cluster.
"""

import pytest

from conftest import print_table
from repro.core import ESSEConfig, ESSEDriver
from repro.sched import EnsembleCampaign, mseas_cluster


def run_growth_sweep(setup):
    model = setup["model"]
    background = setup["background"]
    subspace = setup["subspace"]
    out = {}
    for growth in (1.25, 1.5, 2.0, 4.0):
        driver = ESSEDriver(
            model,
            ESSEConfig(
                initial_ensemble_size=8,
                growth_factor=growth,
                max_ensemble_size=64,
                convergence_tolerance=0.95,
                max_subspace_rank=8,
            ),
            root_seed=1,
        )
        fc = driver.forecast(background, subspace, duration=8 * 400.0)
        out[growth] = fc
    return out


def test_ablation_growth_schedule(benchmark, small_esse_setup):
    results = benchmark.pedantic(
        lambda: run_growth_sweep(small_esse_setup), rounds=1, iterations=1
    )

    cluster_cost = {}
    for growth, fc in results.items():
        campaign = EnsembleCampaign(mseas_cluster())
        stats = campaign.run(campaign.ensemble_specs(10 * fc.ensemble_size))
        cluster_cost[growth] = stats.makespan_minutes

    rows = []
    for growth, fc in results.items():
        rows.append(
            [
                f"x{growth}",
                fc.ensemble_size,
                len(fc.convergence_history),
                "yes" if fc.converged else "no",
                f"{fc.convergence_history[-1][1]:.4f}",
                f"{cluster_cost[growth]:.1f} min",
            ]
        )
    print_table(
        "Ablation: pool growth factor (tolerance 0.95, Nmax=64; cluster "
        "cost for a 10x-scaled campaign)",
        ["growth", "members used", "SVD checks", "converged", "final rho",
         "cluster makespan"],
        rows,
    )

    sizes = {g: fc.ensemble_size for g, fc in results.items()}
    # finer growth never uses more members than the coarsest
    assert sizes[1.25] <= sizes[4.0]
    # (note: finer growth may also *converge sooner by count* because the
    # sequential test compares largely-overlapping ensembles -- the reason
    # ConvergenceCriterion supports min_checks > 1)
    # every schedule reaches a usable subspace and ran >= 1 check
    for fc in results.values():
        assert fc.subspace.rank >= 1
        assert len(fc.convergence_history) >= 1
