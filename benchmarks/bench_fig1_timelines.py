"""Fig 1: the three forecasting timelines.

Regenerates the figure's structure as data: the observation windows T_k
(top row), the forecaster task layout tau^k (middle row), and the
simulation-time coverage t^i of each prediction (bottom row), then renders
them as text.
"""

import pytest

from conftest import print_table
from repro.realtime import ExperimentTimeline


def build_timeline():
    tl = ExperimentTimeline(
        t0=0.0,
        period_length=2 * 86400.0,
        n_periods=5,
        forecast_horizon_periods=2,
        n_simulations=3,
    )
    periods = tl.periods()
    tasks = tl.forecaster_tasks(budget=6 * 3600.0)
    windows = [tl.simulation_window(k) for k in range(tl.n_periods)]
    return tl, periods, tasks, windows


def test_fig1_timelines(benchmark):
    tl, periods, tasks, windows = benchmark.pedantic(
        build_timeline, rounds=5, iterations=1
    )

    print_table(
        "Fig 1 (top): observation time -- batches T_k (days)",
        ["T_k", "start", "end"],
        [
            [f"T_{p.index}", f"{p.start / 86400:.1f}", f"{p.end / 86400:.1f}"]
            for p in periods
        ],
    )
    print_table(
        "Fig 1 (middle): forecaster time -- tasks of one prediction (hours)",
        ["task", "start", "end"],
        [[t.name, f"{t.start / 3600:.1f}", f"{t.end / 3600:.1f}"] for t in tasks],
    )
    print_table(
        "Fig 1 (bottom): simulation time -- coverage of prediction k (days)",
        ["k", "assimilated batches", "nowcast", "forecast to"],
        [
            [
                w.assimilation_periods[-1].index,
                len(w.assimilation_periods),
                f"{w.nowcast_time / 86400:.1f}",
                f"{w.forecast_end / 86400:.1f}",
            ]
            for w in windows
        ],
    )

    # structural assertions of the figure
    for a, b in zip(periods[:-1], periods[1:]):
        assert a.end == b.start  # contiguous batches
    assert [t.name for t in tasks] == ["processing", "simulation", "dissemination"]
    for k, w in enumerate(windows):
        assert len(w.assimilation_periods) == k + 1  # each sim re-covers T_0..T_k
        assert w.forecast_end > w.nowcast_time  # forecast proper exists
    # later predictions nowcast later
    nowcasts = [w.nowcast_time for w in windows]
    assert nowcasts == sorted(nowcasts)
