"""The differ->SVD hot path: npz full-rewrite vs memmap + incremental SVD.

Paper Sec 4.1's three-file protocol decouples the differ from the SVD,
but the seed implementation paid O(n N) bytes per member arrival (the
full scaled matrix rewritten into a live npz) and O(n N^2) per SVD
checkpoint (a from-scratch factorization).  This bench measures both
replacements on the AOSN-II-scale hot path:

- the append-only :class:`~repro.workflow.covfile.MemmapCovarianceStore`
  writes O(n) bytes per member (new columns + a ~60-byte header);
- the warm-started
  :class:`~repro.core.subspace.IncrementalSubspaceEstimator` folds only
  the columns that arrived since the previous checkpoint;
- the process-backend feed: forecast columns written by workers into a
  :class:`~repro.workflow.parallel.SharedEnsembleBuffer` flow through the
  anomaly accumulator into the memmap store *zero-copy* -- the
  accumulator reads the shared-memory column views directly and the
  store appends from the accumulator's views, with no member-file or
  pickle serialization in between (``docs/ENSEMBLE_ENGINE.md``).

Checkpoints follow the paper's cadence -- an SVD "whenever a multiple of
a set number of realizations has finished" -- so the sequence has
N / stride entries, the regime where from-scratch recomputation hurts.

``BENCH_SMOKE=1`` shrinks the problem for CI; the committed
``BENCH_covfile_pipeline.json`` comes from a full-size run
(n=20000, N=256).
"""

import os

import numpy as np

from conftest import print_table
from record import record_bench
from repro.core.covariance import AnomalyAccumulator
from repro.core.state import FieldLayout, FieldSpec
from repro.core.subspace import IncrementalSubspaceEstimator
from repro.telemetry.clock import MONOTONIC
from repro.util.linalg import truncated_svd
from repro.workflow.covfile import CovarianceFileSet, MemmapCovarianceStore
from repro.workflow.parallel import SharedEnsembleBuffer

SMOKE = os.environ.get("BENCH_SMOKE") == "1"
STATE_DIM = 4_000 if SMOKE else 20_000
N_MEMBERS = 64 if SMOKE else 256
CHECK_STRIDE = 8 if SMOKE else 16  # SVD every stride finished members
RANK = 60  # the default ESSE truncation
RANK_BUFFER = 16


def esse_like_columns(rng, n, count):
    """Raw anomaly columns: low-rank decaying signal + noise floor."""
    signal_rank = min(120, count)
    u, _ = np.linalg.qr(rng.standard_normal((n, signal_rank)))
    sig = np.geomspace(5.0, 0.3, signal_rank)
    coeffs = rng.standard_normal((signal_rank, count))
    return (u * sig) @ coeffs + 0.1 * rng.standard_normal((n, count))


def measure_npz_differ(workdir, columns, clock):
    """The seed differ: full scaled matrix rewritten per member arrival."""
    covset = CovarianceFileSet(workdir)
    total = 0
    t0 = clock()
    for k in range(2, N_MEMBERS + 1):
        scale = 1.0 / np.sqrt(k - 1)
        target = covset.write_live(columns[:, :k] * scale, list(range(k)))
        covset.publish()
        total += target.stat().st_size
    elapsed = clock() - t0
    covset.cleanup()
    return total, elapsed


def measure_memmap_differ(workdir, columns, clock):
    """The column store: only the newly arrived columns hit the disk."""
    store = MemmapCovarianceStore(workdir)
    total = 0
    t0 = clock()
    for k in range(2, N_MEMBERS + 1):
        new = 2 if k == 2 else 1
        total += store.append(columns[:, k - new : k], list(range(k - new, k)))
        store.publish()
        total += store.header_path.stat().st_size
    elapsed = clock() - t0
    store.cleanup()
    return total, elapsed


def measure_shm_feed(workdir, columns, clock):
    """The process-backend handoff: shm column -> accumulator -> memmap store.

    Worker-written forecast columns live in a
    :class:`SharedEnsembleBuffer`; the parent folds each *shared-memory
    view* straight into the anomaly accumulator (which normalizes into
    its own column store) and ships the accumulator's zero-copy view to
    the memmap store -- exactly the engine's delivery path, with no npz
    member files and no forecasts pickled through Futures.
    """
    layout = FieldLayout([FieldSpec("x", (STATE_DIM,))])
    central = np.zeros(STATE_DIM)
    buffer = SharedEnsembleBuffer(STATE_DIM, N_MEMBERS)
    try:
        # Worker side (simulated): each attempt writes its column once.
        for k in range(N_MEMBERS):
            buffer.column(k)[:] = central + columns[:, k]
        store = MemmapCovarianceStore(workdir)
        accumulator = AnomalyAccumulator(layout, central)
        total = 0
        t0 = clock()
        for k in range(N_MEMBERS):
            accumulator.add_member(k, buffer.column(k))
            if accumulator.count >= 2:
                total += store.sync_from(accumulator.view())
                store.publish()
                total += store.header_path.stat().st_size
        elapsed = clock() - t0
        store.cleanup()
    finally:
        buffer.close()
        buffer.unlink()
    return total, elapsed


def measure_svd_sequences(columns, clock):
    """From-scratch vs warm-started SVD over the checkpoint cadence."""
    checkpoints = list(range(CHECK_STRIDE, N_MEMBERS + 1, CHECK_STRIDE))

    t0 = clock()
    for k in checkpoints:
        u_exact, s_exact, _ = truncated_svd(
            columns[:, :k] / np.sqrt(k - 1), rank=RANK
        )
    t_exact = clock() - t0

    estimator = IncrementalSubspaceEstimator(rank=RANK, rank_buffer=RANK_BUFFER)
    t0 = clock()
    for k in checkpoints:
        sub = estimator.update(columns, count=k, scale=1.0 / np.sqrt(k - 1))
    t_incremental = clock() - t0

    keep = min(s_exact.size, sub.sigmas.size)
    sigma_err = float(
        np.max(np.abs(sub.sigmas[:keep] - s_exact[:keep])) / s_exact[0]
    )
    return t_exact, t_incremental, sigma_err, len(checkpoints)


def run_pipeline(workdir, clock=MONOTONIC):
    rng = np.random.default_rng(0)
    columns = esse_like_columns(rng, STATE_DIM, N_MEMBERS)
    npz_bytes, npz_s = measure_npz_differ(workdir / "npz", columns, clock)
    mm_bytes, mm_s = measure_memmap_differ(workdir / "memmap", columns, clock)
    shm_bytes, shm_s = measure_shm_feed(workdir / "shm", columns, clock)
    t_exact, t_incremental, sigma_err, n_checkpoints = measure_svd_sequences(
        columns, clock
    )
    return {
        "state_dim": STATE_DIM,
        "n_members": N_MEMBERS,
        "checkpoint_stride": CHECK_STRIDE,
        "n_checkpoints": n_checkpoints,
        "npz_bytes_per_member": npz_bytes / N_MEMBERS,
        "memmap_bytes_per_member": mm_bytes / N_MEMBERS,
        "bytes_reduction": npz_bytes / mm_bytes,
        "npz_differ_s": npz_s,
        "memmap_differ_s": mm_s,
        "shm_feed_s": shm_s,
        "shm_feed_bytes_per_member": shm_bytes / N_MEMBERS,
        "exact_svd_sequence_s": t_exact,
        "incremental_svd_sequence_s": t_incremental,
        "svd_speedup": t_exact / t_incremental,
        "sigma_rel_err": sigma_err,
        "smoke": SMOKE,
    }


def test_covfile_pipeline(benchmark, tmp_path):
    values = benchmark.pedantic(run_pipeline, args=(tmp_path,), rounds=1, iterations=1)

    print_table(
        f"Differ->SVD hot path (n={values['state_dim']}, "
        f"N={values['n_members']}, SVD every {values['checkpoint_stride']})",
        ["metric", "npz / exact", "memmap / incremental", "gain"],
        [
            [
                "differ bytes/member",
                f"{values['npz_bytes_per_member'] / 1e6:.1f} MB",
                f"{values['memmap_bytes_per_member'] / 1e3:.1f} kB",
                f"{values['bytes_reduction']:.0f}x",
            ],
            [
                "differ wall",
                f"{values['npz_differ_s']:.2f} s",
                f"{values['memmap_differ_s']:.2f} s",
                f"{values['npz_differ_s'] / values['memmap_differ_s']:.1f}x",
            ],
            [
                f"SVD sequence ({values['n_checkpoints']} checkpoints)",
                f"{values['exact_svd_sequence_s']:.2f} s",
                f"{values['incremental_svd_sequence_s']:.2f} s",
                f"{values['svd_speedup']:.1f}x",
            ],
            [
                "sigma rel err",
                "0 (reference)",
                f"{values['sigma_rel_err']:.2e}",
                "",
            ],
            [
                "shm feed (process backend)",
                "n/a (npz member files)",
                f"{values['shm_feed_s']:.2f} s, "
                f"{values['shm_feed_bytes_per_member'] / 1e3:.1f} kB/member",
                "",
            ],
        ],
    )
    record_bench("covfile_pipeline", values)

    # The shared-memory feed writes the same O(n) bytes per member as the
    # plain memmap differ -- the shm hop adds no serialization cost.
    assert values["shm_feed_bytes_per_member"] <= 2 * values[
        "memmap_bytes_per_member"
    ]

    # The PR's acceptance floors (smoke mode only sanity-checks direction:
    # tiny matrices spend their time in fixed overheads, not in the O(n N)
    # work the full-size run measures).
    assert values["bytes_reduction"] >= 5.0
    assert values["svd_speedup"] >= (1.0 if SMOKE else 2.0)
    # The documented noise-floor tolerance (docs/COVFILE_PROTOCOL.md):
    # retained sigmas within 1e-2 of the exact recompute, relative to
    # the leading sigma (typically ~2e-3 at rank_buffer=16; decaying
    # spectra hit 1e-6, enforced in tests/core/test_incremental_svd.py).
    assert values["sigma_rel_err"] < 1e-2
