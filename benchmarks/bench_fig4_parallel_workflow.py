"""Fig 4: the parallel (many-task) ESSE implementation vs the serial one.

Reproduces the paper's transformation claims:

- members execute concurrently and complete out of order;
- the differ runs continuously, overlapping the forecast pool (the serial
  implementation has zero overlap by construction);
- the SVD/convergence worker reads consistent snapshots via the three-file
  protocol while the differ keeps writing;
- on convergence, superfluous members are cancelled;
- the resulting subspace is statistically equivalent to the serial one;
- the backend axis: the same N=24 growth run through each
  :class:`~repro.workflow.ensemble.EnsembleEngine` backend, recording
  per-backend wall time and speedup vs the serial backend (on a
  single-core host the *vectorized batched* backend is the one that must
  win; pools only interleave).
"""

import pytest

from conftest import print_table
from record import output_dir, record_bench
from repro.core import ESSEConfig, similarity_coefficient
from repro.telemetry import MetricsRegistry, TraceRecorder, write_jsonl
from repro.workflow import (
    EnsembleEngine,
    ParallelESSEWorkflow,
    SerialESSEWorkflow,
    make_backend,
)

#: Engine backends measured by the backend axis, in reporting order.
ENGINE_BACKENDS = ("serial", "threads", "batched", "processes")


def test_fig4_parallel_workflow(benchmark, small_esse_setup, tmp_path):
    runner = small_esse_setup["runner"]
    background = small_esse_setup["background"]
    config = ESSEConfig(
        initial_ensemble_size=6,
        max_ensemble_size=24,
        convergence_tolerance=0.93,
        max_subspace_rank=8,
    )

    serial = SerialESSEWorkflow(runner, config, tmp_path / "serial").run(background)

    recorder = TraceRecorder()
    registry = MetricsRegistry()

    def run_parallel():
        return ParallelESSEWorkflow(
            runner,
            config,
            tmp_path / "parallel",
            n_workers=4,
            telemetry=recorder,
            metrics=registry,
        ).run(background)

    parallel = benchmark.pedantic(run_parallel, rounds=1, iterations=1)

    # Backend axis: the same growth run through each engine backend.
    # Wall times come from the engine's own clock (telemetry.clock), the
    # same time source the workflow results above use.
    engine_results = {
        name: EnsembleEngine(
            runner,
            config,
            tmp_path / f"engine_{name}",
            backend=make_backend(name, n_workers=4, batch_size=8),
        ).run(background)
        for name in ENGINE_BACKENDS
    }

    rho = similarity_coefficient(serial.subspace, parallel.subspace)
    rows = [
        ["ensemble size", serial.ensemble_size, parallel.ensemble_size],
        ["converged", serial.converged, parallel.converged],
        ["wall time", f"{serial.timings.total:.2f} s",
         f"{parallel.wall_seconds:.2f} s"],
        ["diff/forecast overlap", "0% (by construction)",
         f"{100 * parallel.overlap_fraction():.0f}%"],
        ["members cancelled", 0, parallel.n_cancelled],
        ["member failures", len(serial.failed_members), parallel.n_failed],
    ]
    print_table(
        f"Fig 4: serial vs many-task ESSE (subspace agreement rho={rho:.4f})",
        ["metric", "serial (Fig 3)", "parallel (Fig 4)"],
        rows,
    )

    engine_serial_wall = engine_results["serial"].wall_seconds
    print_table(
        f"Ensemble-engine backend axis (N={config.max_ensemble_size})",
        ["backend", "wall", "speedup vs serial", "members", "converged"],
        [
            [
                name,
                f"{res.wall_seconds:.2f} s",
                f"{engine_serial_wall / res.wall_seconds:.2f}x",
                res.ensemble_size,
                res.converged,
            ]
            for name, res in engine_results.items()
        ],
    )

    # Machine-readable side: the run log plus a BENCH_*.json summary.
    trace_path = output_dir() / "fig4_parallel_workflow.jsonl"
    write_jsonl(
        trace_path,
        spans=recorder.spans(),
        events=recorder.events(),
        metrics=registry,
    )
    values = {
        "serial_wall_s": serial.timings.total,
        "parallel_wall_s": parallel.wall_seconds,
        "overlap_fraction": parallel.overlap_fraction(),
        "subspace_rho": rho,
        "serial_ensemble_size": serial.ensemble_size,
        "parallel_ensemble_size": parallel.ensemble_size,
        "n_cancelled": parallel.n_cancelled,
        "n_failed": parallel.n_failed,
    }
    for name, res in engine_results.items():
        values[f"engine_{name}_wall_s"] = res.wall_seconds
        values[f"engine_{name}_speedup_vs_serial"] = (
            engine_serial_wall / res.wall_seconds
        )
        values[f"engine_{name}_ensemble_size"] = res.ensemble_size
    record_bench(
        "fig4_parallel_workflow",
        values,
        metrics=registry,
        artifacts={"trace_jsonl": trace_path},
    )

    # the differ overlaps the forecast pool
    assert parallel.overlap_fraction() > 0.5
    # members complete out of order at least once with 4 workers
    ids = list(parallel.member_ids)
    assert ids != sorted(ids) or len(ids) <= 2
    # the three-file protocol fed the SVD: publishes and svd events exist
    assert parallel.events_of("publish")
    assert parallel.events_of("svd_done")
    # statistically equivalent subspaces
    assert rho > 0.9
    # both reach a usable ensemble
    assert parallel.ensemble_size >= config.initial_ensemble_size
    # the vectorized batched backend is bit-identical to the serial one
    # (same seed, same member streams -> the same subspace exactly)
    assert (
        similarity_coefficient(
            engine_results["serial"].subspace, engine_results["batched"].subspace
        )
        > 0.999999
    )
    # a parallel backend beats the serial engine wall at N=24 (on one
    # core that has to be the vectorized batched backend)
    assert any(
        engine_results[name].wall_seconds < engine_serial_wall
        for name in ("batched", "processes")
    )
