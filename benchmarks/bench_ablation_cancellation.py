"""Ablation: cancellation policy on convergence (Sec 4.1).

"If the convergence test succeeds, the remaining ensemble members ... are
canceled, and depending on the time constraints ... either the ensemble
calculation concludes immediately or the remaining ensemble results
already calculated are diffed, another SVD calculation is performed and
all available results are used."

IMMEDIATE minimizes latency; DRAIN_RUNNING uses the nearly-free extra
members for a better final subspace.
"""

import pytest

from conftest import print_table
from repro.core import ESSEConfig
from repro.workflow import CancellationPolicy, ParallelESSEWorkflow


def run_policies(setup, tmp_path):
    runner = setup["runner"]
    background = setup["background"]
    config = ESSEConfig(
        initial_ensemble_size=4,
        max_ensemble_size=48,
        convergence_tolerance=0.85,
        max_subspace_rank=8,
    )
    out = {}
    for policy in (CancellationPolicy.IMMEDIATE, CancellationPolicy.DRAIN_RUNNING):
        out[policy] = ParallelESSEWorkflow(
            runner,
            config,
            tmp_path / policy.value,
            n_workers=4,
            cancellation=policy,
        ).run(background)
    return out


def test_ablation_cancellation_policy(benchmark, small_esse_setup, tmp_path):
    results = benchmark.pedantic(
        lambda: run_policies(small_esse_setup, tmp_path), rounds=1, iterations=1
    )

    rows = []
    for policy, r in results.items():
        rows.append(
            [
                policy.value,
                r.ensemble_size,
                r.n_completed,
                r.n_cancelled,
                f"{r.wall_seconds:.2f} s",
                len(r.events_of("final_svd")),
            ]
        )
    print_table(
        "Ablation: cancellation policy after convergence",
        ["policy", "subspace N", "completed", "cancelled", "wall", "final SVDs"],
        rows,
    )

    immediate = results[CancellationPolicy.IMMEDIATE]
    drain = results[CancellationPolicy.DRAIN_RUNNING]
    assert immediate.converged and drain.converged
    # IMMEDIATE never runs the catch-all final SVD
    assert len(immediate.events_of("final_svd")) == 0
    # DRAIN folds in at least as many members as IMMEDIATE used
    assert drain.ensemble_size >= immediate.ensemble_size
    # both cancel something out of the 48-member pool
    assert immediate.n_completed < 48
