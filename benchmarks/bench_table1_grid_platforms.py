"""Table 1: pert/pemodel time-to-completion on TeraGrid platforms.

Paper values (seconds):

    site    processor           pert    pemodel
    ORNL    Pentium4 3.06MHz    67.83   1823.99
    Purdue  Core2 2.33MHz        6.25   1107.40
    local   Opteron 250 2.4GHz   6.21   1531.33
"""

import pytest

from conftest import print_table
from repro.sched.gridsites import TERAGRID_SITES, run_site_benchmark

PAPER_TABLE1 = {
    "ORNL": (67.83, 1823.99),
    "Purdue": (6.25, 1107.40),
    "local": (6.21, 1531.33),
}


def run_all_sites() -> dict[str, dict[str, float]]:
    return {name: run_site_benchmark(site) for name, site in TERAGRID_SITES.items()}


def test_table1_grid_platforms(benchmark):
    results = benchmark.pedantic(run_all_sites, rounds=3, iterations=1)

    rows = []
    for name, site in TERAGRID_SITES.items():
        got = results[name]
        want = PAPER_TABLE1[name]
        rows.append(
            [
                name,
                site.processor,
                f"{got['pert']:.2f}",
                f"{got['pemodel']:.2f}",
                f"{want[0]:.2f}",
                f"{want[1]:.2f}",
            ]
        )
    print_table(
        "Table 1: pert/pemodel performance on TeraGrid platforms (seconds)",
        ["site", "processor", "pert", "pemodel", "paper pert", "paper pemodel"],
        rows,
    )

    # calibrated: every entry within 1% of the published measurement
    for name, (pert, pemodel) in PAPER_TABLE1.items():
        assert results[name]["pert"] == pytest.approx(pert, rel=0.01)
        assert results[name]["pemodel"] == pytest.approx(pemodel, rel=0.01)
    # shape: Purdue fastest pemodel, ORNL slowest; ORNL pert dominated by I/O
    assert (
        results["Purdue"]["pemodel"]
        < results["local"]["pemodel"]
        < results["ORNL"]["pemodel"]
    )
    assert results["ORNL"]["pert"] > 10 * results["local"]["pert"]
