"""Ablation: job arrays vs singleton submissions (Secs 4.2, 5.2.1).

"For both SGE and Condor we used job arrays to lessen the load on the
scheduler" -- but restartability favours one-job-per-index submission, and
the 6000-task acoustic campaign used no arrays at all.  The ablation
quantifies the scheduler-load cost of each choice.
"""

import pytest

from conftest import print_table
from repro.sched import EnsembleCampaign, mseas_cluster
from repro.sched.schedulers import SGEPolicy


def run_submission_modes():
    out = {}
    for label, as_array in (("job array", True), ("singletons", False)):
        campaign = EnsembleCampaign(
            mseas_cluster(), policy=SGEPolicy(), as_job_array=as_array
        )
        out[label] = campaign.run(campaign.acoustic_specs(6000))
    return out


def test_ablation_job_arrays(benchmark):
    stats = benchmark.pedantic(run_submission_modes, rounds=1, iterations=1)

    rows = [
        [
            label,
            f"{s.makespan_minutes:.1f} min",
            f"{s.mean_wait_seconds / 60:.1f} min",
            s.sim_events,
        ]
        for label, s in stats.items()
    ]
    print_table(
        "Ablation: 6000 acoustic singletons, array vs per-job submission",
        ["submission", "makespan", "mean queue wait", "scheduler events"],
        rows,
    )

    array, single = stats["job array"], stats["singletons"]
    # per-job submission loads the scheduler more (the reason arrays are
    # used, Sec 4.2) ...
    assert single.sim_events > array.sim_events
    # ... but the system copes: makespan essentially unchanged ("the
    # system handled all 6000+ jobs without any problem whatsoever")
    assert single.makespan_minutes < 1.05 * array.makespan_minutes
