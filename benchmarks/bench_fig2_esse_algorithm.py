"""Fig 2: the ESSE algorithm -- convergence of the error subspace.

Runs the real adaptive-ensemble loop (perturb -> stochastic forecasts ->
diff -> SVD -> similarity test) and reports the similarity coefficient rho
as the ensemble grows: the quantity the Fig 2 convergence loop monitors.
Shape: rho increases with N and crosses a practical tolerance.
"""

import pytest

from conftest import print_table
from repro.core import ESSEConfig, ESSEDriver


def test_fig2_esse_convergence(benchmark, small_esse_setup):
    model = small_esse_setup["model"]
    background = small_esse_setup["background"]
    subspace = small_esse_setup["subspace"]

    driver = ESSEDriver(
        model,
        ESSEConfig(
            initial_ensemble_size=4,
            max_ensemble_size=64,
            convergence_tolerance=0.96,
            max_subspace_rank=8,
        ),
        root_seed=1,
    )

    forecast = benchmark.pedantic(
        lambda: driver.forecast(background, subspace, duration=8 * 400.0),
        rounds=1,
        iterations=1,
    )

    rows = [
        [n, f"{rho:.4f}"] for n, rho in forecast.convergence_history
    ]
    print_table(
        "Fig 2: subspace similarity rho vs ensemble size "
        f"(converged={forecast.converged} at N={forecast.ensemble_size})",
        ["N", "rho"],
        rows,
    )

    history = forecast.convergence_history
    assert len(history) >= 2
    rhos = [rho for _, rho in history]
    # similarity improves with ensemble size (monotone up to noise)
    assert rhos[-1] > rhos[0]
    assert all(0.0 <= r <= 1.0 for r in rhos)
    # the adaptive loop terminates: either converged or at Nmax
    assert forecast.converged or forecast.ensemble_size == 64
    # the subspace captures the leading uncertainty: top mode dominates
    sigmas = forecast.subspace.sigmas
    assert sigmas[0] > sigmas[-1]
