"""Sec 5.4.2: the EC2 dollar-cost model.

"Cost-wise for example an ESSE calculation with 1.5GB input data, 960
ensemble members each sending back 11MB (for a total of 6.6GB [sic;
arithmetic uses 10.56 GB]) would cost: 1.5(GB)x0.1 + 10.56(GB)x0.17 +
2(hr)*20*0.8 = $33.95.  Use of reserved instances would drop pricing for
the cpu usage by more than a factor of 3."
"""

import pytest

from conftest import print_table
from repro.sched.ec2 import EC2_INSTANCE_TYPES, EC2CostModel


def cost_sweep():
    model = EC2CostModel()
    out = {
        "paper_on_demand": model.paper_example(),
        "paper_reserved": model.paper_example(reserved=True),
    }
    for name, itype in EC2_INSTANCE_TYPES.items():
        out[name] = model.campaign_cost(
            itype, n_instances=20, wall_hours=2.0, input_gb=1.5, output_gb=10.56
        )
    return out


def test_sec542_ec2_cost(benchmark):
    costs = benchmark.pedantic(cost_sweep, rounds=5, iterations=1)

    rows = [
        ["paper example (c1.xlarge x20, 2h)", f"${costs['paper_on_demand']:.2f}", "$33.95"],
        ["same, reserved instances", f"${costs['paper_reserved']:.2f}", ">3x cheaper CPU"],
    ]
    for name in EC2_INSTANCE_TYPES:
        rows.append([f"{name} x20, 2h, same data", f"${costs[name]:.2f}", ""])
    print_table(
        "Sec 5.4.2: ESSE campaign cost on EC2 (2009 price book)",
        ["scenario", "cost", "paper"],
        rows,
    )

    assert costs["paper_on_demand"] == pytest.approx(33.95, abs=0.01)
    # reserved cuts the CPU share by >3x (transfers unchanged)
    cpu_on_demand = 2 * 20 * 0.8
    cpu_reserved = costs["paper_reserved"] - (costs["paper_on_demand"] - cpu_on_demand)
    assert cpu_on_demand / cpu_reserved > 3.0
    # hour rounding: 2h 1s bills as 3 hours
    model = EC2CostModel()
    itype = EC2_INSTANCE_TYPES["c1.xlarge"]
    assert model.compute_cost(itype, 20, 2.0 + 1 / 3600.0) == pytest.approx(
        3 * 20 * 0.8
    )
