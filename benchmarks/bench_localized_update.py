"""Global vs localized/tiled ESSE analysis on a dense-observation grid.

The global :class:`~repro.core.assimilation.ESSEAnalysis` pays
``O(m p^2)`` in the Woodbury products and ``O(n p^2)`` in the posterior
mode rotation, with every one of the ``m`` observations coupled to all
``p`` modes.  The :class:`~repro.core.assimilation.TiledESSEAnalysis`
localizes both factors: each tile solves against only the observations
inside its Gaspari-Cohn support *and* only the modes with local energy
above the truncation floor, so the per-tile work is
``O(m_t k_t^2 + n_t k_t^2)`` with ``m_t << m`` and ``k_t << p`` when the
error modes are spatially localized -- the regime ESSE targets (paper
Sec 3: dominant uncertainties live on fronts and eddies, not the whole
domain).

The bench assimilates a dense SST-like batch (one observation per grid
cell of each field) into a subspace of compactly supported modes at
AOSN-II scale (n >= 2e4) and reports wall time and accuracy for both
engines.  Accuracy is measured against the global analysis: the RMS
mean difference must stay a small fraction of the RMS analysis
increment, and the posterior variance field must stay close.

``BENCH_SMOKE=1`` shrinks the problem for CI; the committed
``BENCH_localized_update.json`` comes from a full-size run.
"""

import os

import numpy as np

from conftest import print_table
from record import record_bench
from repro.core.assimilation import ESSEAnalysis, TiledESSEAnalysis
from repro.core.localization import GaspariCohnTaper
from repro.core.state import FieldLayout, FieldSpec
from repro.core.subspace import ErrorSubspace
from repro.obs.operators import Observation, ObservationOperator
from repro.telemetry.clock import MONOTONIC

SMOKE = os.environ.get("BENCH_SMOKE") == "1"
NY, NX = (32, 25) if SMOKE else (128, 100)
RANK = 24 if SMOKE else 192
OBS_STRIDE = 2 if SMOKE else 1  # one obs per stride-th cell, per field
BUMP_RADIUS = 6.0  # mode support radius, grid cells
TILE_SHAPE = (8, 8) if SMOKE else (16, 16)
TAPER_RADIUS = 8.0
ENERGY_FLOOR = 0.02
FIELDS = ("ssh", "sst")


def make_layout():
    return FieldLayout(
        [FieldSpec("ssh", (NY, NX), scale=0.5), FieldSpec("sst", (NY, NX), scale=2.0)]
    )


def localized_subspace(layout, rng):
    """Orthonormal modes built from compactly supported Gaussian bumps.

    Each raw mode is a bump at a random center with support
    ``BUMP_RADIUS`` on one field; QR orthonormalizes the stack while
    keeping the energy essentially local (bumps only mix where their
    supports overlap), which is what the per-tile truncation exploits.
    """
    jj, ii = np.meshgrid(np.arange(NY), np.arange(NX), indexing="ij")
    columns = np.zeros((layout.size, RANK))
    n_cells = NY * NX
    for k in range(RANK):
        cj = rng.uniform(0, NY)
        ci = rng.uniform(0, NX)
        r2 = (jj - cj) ** 2 + (ii - ci) ** 2
        bump = np.exp(-r2 / (2.0 * (BUMP_RADIUS / 2.5) ** 2))
        bump[r2 > BUMP_RADIUS**2] = 0.0
        field = k % len(FIELDS)
        columns[field * n_cells : (field + 1) * n_cells, k] = bump.ravel()
    q, _ = np.linalg.qr(columns)
    sigmas = np.geomspace(1.0, 0.25, RANK)
    return ErrorSubspace(modes=q, sigmas=sigmas, n_samples=200)


def dense_operator(layout, truth, rng, noise_std=0.3):
    """One noisy observation per stride-th grid cell of every field."""
    observations = []
    for name in FIELDS:
        block = truth[layout.slice_of(name)].reshape(NY, NX)
        for j in range(0, NY, OBS_STRIDE):
            for i in range(0, NX, OBS_STRIDE):
                observations.append(
                    Observation(
                        field=name,
                        level=0,
                        j=j,
                        i=i,
                        value=float(block[j, i] + rng.normal(0.0, noise_std)),
                        noise_std=noise_std,
                    )
                )
    return ObservationOperator(layout, observations)


def run_comparison(clock=MONOTONIC):
    rng = np.random.default_rng(0)
    layout = make_layout()
    subspace = localized_subspace(layout, rng)
    forecast_mean = np.zeros(layout.size)
    # Truth = forecast + an in-subspace error, so the batch is informative.
    coeffs = rng.normal(0.0, 1.0, RANK) * subspace.sigmas
    truth = forecast_mean + layout.denormalize(subspace.modes @ coeffs)
    operator = dense_operator(layout, truth, rng)

    global_engine = ESSEAnalysis(layout)
    tiled_engine = TiledESSEAnalysis(
        layout,
        (NY, NX),
        TILE_SHAPE,
        taper=GaspariCohnTaper(TAPER_RADIUS),
        local_energy_floor=ENERGY_FLOOR,
    )

    for engine in (global_engine, tiled_engine):  # warm the BLAS/code paths
        engine.update(forecast_mean, subspace.truncate(rank=4), operator)

    t0 = clock()
    global_result = global_engine.update(forecast_mean, subspace, operator)
    global_s = clock() - t0

    t0 = clock()
    tiled_result = tiled_engine.update(forecast_mean, subspace, operator)
    tiled_s = clock() - t0

    increment_rms = float(
        np.sqrt(np.mean((global_result.mean - forecast_mean) ** 2))
    )
    mean_rms_diff = float(
        np.sqrt(np.mean((tiled_result.mean - global_result.mean) ** 2))
    )
    scales = np.repeat([0.5, 2.0], NY * NX)
    var_global = (scales**2) * global_result.subspace.variance_field()
    var_tiled = (scales**2) * tiled_result.subspace.variance_field()
    var_rms_diff = float(np.sqrt(np.mean((var_tiled - var_global) ** 2)))
    var_rms = float(np.sqrt(np.mean(var_global**2)))

    return {
        "state_dim": layout.size,
        "n_obs": operator.size,
        "rank": RANK,
        "tile_shape": f"{TILE_SHAPE[0]}x{TILE_SHAPE[1]}",
        "n_tiles": tiled_engine.decomposition.n_tiles,
        "taper_radius": TAPER_RADIUS,
        "local_energy_floor": ENERGY_FLOOR,
        "global_wall_s": global_s,
        "tiled_wall_s": tiled_s,
        "speedup": global_s / tiled_s,
        "increment_rms": increment_rms,
        "mean_rms_diff": mean_rms_diff,
        "mean_rel_err": mean_rms_diff / increment_rms,
        "variance_rel_err": var_rms_diff / var_rms,
        "tiled_analysis_rms": tiled_result.analysis_rms,
        "global_analysis_rms": global_result.analysis_rms,
        "posterior_rank_tiled": tiled_result.subspace.rank,
        "smoke": SMOKE,
    }


def test_localized_update(benchmark):
    values = benchmark.pedantic(run_comparison, rounds=1, iterations=1)

    print_table(
        f"Global vs tiled analysis (n={values['state_dim']}, "
        f"m={values['n_obs']}, p={values['rank']})",
        ["engine", "wall", "analysis RMS", "vs global"],
        [
            [
                "global",
                f"{values['global_wall_s'] * 1e3:.0f} ms",
                f"{values['global_analysis_rms']:.4f}",
                "--",
            ],
            [
                f"tiled {values['tile_shape']} (GC r={values['taper_radius']})",
                f"{values['tiled_wall_s'] * 1e3:.0f} ms",
                f"{values['tiled_analysis_rms']:.4f}",
                f"{values['speedup']:.2f}x, mean err "
                f"{values['mean_rel_err'] * 100:.1f}%",
            ],
        ],
    )
    record_bench("localized_update", values)

    # Accuracy: the localized analysis must track the global one.
    assert values["mean_rel_err"] < 0.15
    assert values["variance_rel_err"] < 0.25
    # Both engines fit the data: posterior residual below prior residual.
    assert values["tiled_analysis_rms"] <= values["global_analysis_rms"] * 1.2
    if not SMOKE:
        # The whole point at scale: localization must win wall-clock.
        assert values["tiled_wall_s"] < values["global_wall_s"]
