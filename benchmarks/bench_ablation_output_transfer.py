"""Ablation (Sec 5.3.2): push vs pull vs two-stage output return.

The paper argues the push model's synchronized transfer bursts "can
seriously slow down the gateway nodes", a paced pull agent "perform[s]
much better", and a two-stage put amortizes connection setup through the
remote shared filesystem.  All three run over the same completion trace
and WAN/gateway model.
"""

import numpy as np
import pytest

from conftest import print_table
from repro.sched.transfer import (
    OutputReturnPlan,
    WANModel,
    simulate_output_return,
)


def run_all_plans():
    rng = np.random.default_rng(0)
    # 600 members finishing in a synchronized wave (job arrays started
    # together finish together) -- the paper's problematic regime
    times = np.sort(rng.uniform(3000.0, 3060.0, 600))
    wan = WANModel()
    return times, {
        plan: simulate_output_return(times, file_mb=11.0, plan=plan, wan=wan)
        for plan in OutputReturnPlan
    }


def test_ablation_output_transfer(benchmark):
    times, reports = benchmark.pedantic(run_all_plans, rounds=1, iterations=1)
    wave_end = float(times[-1])

    rows = []
    for plan, r in reports.items():
        rows.append(
            [
                plan.value,
                f"{r.all_home_time - wave_end:.0f} s",
                r.peak_concurrent_streams,
                f"{r.mean_file_delay:.0f} s",
                r.transfers_started,
            ]
        )
    print_table(
        "Sec 5.3.2 ablation: returning 600 x 11 MB outputs after a "
        "synchronized wave",
        ["plan", "drain after wave", "peak streams", "mean delay", "transfers"],
        rows,
    )

    push = reports[OutputReturnPlan.PUSH]
    pull = reports[OutputReturnPlan.PULL]
    two = reports[OutputReturnPlan.TWO_STAGE]
    drain = {r.plan: r.all_home_time - wave_end for r in reports.values()}
    # push floods the gateway; pull stays paced
    assert push.peak_concurrent_streams > 50
    assert pull.peak_concurrent_streams <= 8
    # paper: pull "perform[s] much better" than the push burst
    assert drain[OutputReturnPlan.PULL] < 0.5 * drain[OutputReturnPlan.PUSH]
    # two-stage batches transfers by ~batch_size and drains fastest
    assert two.transfers_started < 20
    assert drain[OutputReturnPlan.TWO_STAGE] <= drain[OutputReturnPlan.PULL]
