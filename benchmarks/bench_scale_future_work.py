"""Sec 7 (future work): scaling to 1000-10000 members and nested MPI jobs.

"Future more involved experiments are expected to scale from 1000 to
10000 or more ESSE ensemble members (and even more acoustic calculations).
We are interested in seeing how queuing systems and resource managers
handle such a workload in a short time interval.  Furthermore more
realistic model setups are expected to require ... massive ensembles of
small (2-3 task) MPI jobs."

The DES answers both questions for the calibrated home cluster.
"""

import pytest

from conftest import print_table
from repro.sched import EnsembleCampaign, mseas_cluster
from repro.sched.schedulers import SGEPolicy


def run_scaling():
    out = {}
    for n in (600, 1000, 10000):
        campaign = EnsembleCampaign(mseas_cluster(), policy=SGEPolicy())
        out[n] = campaign.run(campaign.ensemble_specs(n))
    return out


def run_nested():
    out = {}
    for tasks in (1, 2, 3):
        campaign = EnsembleCampaign(mseas_cluster(), policy=SGEPolicy())
        specs = (
            campaign.ensemble_specs(600)
            if tasks == 1
            else campaign.nested_ensemble_specs(600, mpi_tasks=tasks)
        )
        out[tasks] = campaign.run(specs)
    return out


def test_scale_to_10000_members(benchmark):
    stats = benchmark.pedantic(run_scaling, rounds=1, iterations=1)

    rows = [
        [
            n,
            2 * n,
            f"{s.makespan_minutes:.0f} min",
            f"{s.makespan_minutes / 60:.1f} h",
            f"{100 * s.core_utilization:.0f}%",
        ]
        for n, s in stats.items()
    ]
    print_table(
        "Sec 7: ESSE campaign scaling on the 210-core home cluster",
        ["members", "jobs", "makespan", "hours", "core util"],
        rows,
    )

    # scaling stays near-linear: 10000 members ~ 16.7x the 600-member time
    ratio = stats[10000].makespan_seconds / stats[600].makespan_seconds
    assert 14.0 < ratio < 18.0
    # the scheduler keeps the cluster busy at every scale
    for s in stats.values():
        assert s.core_utilization > 0.85


def test_nested_mpi_ensembles(benchmark):
    stats = benchmark.pedantic(run_nested, rounds=1, iterations=1)

    rows = [
        [
            f"{tasks}-task jobs",
            f"{s.mean_runtime_by_kind['pemodel']:.0f} s",
            f"{s.makespan_minutes:.1f} min",
        ]
        for tasks, s in stats.items()
    ]
    print_table(
        "Sec 7: 600-member ensembles of small MPI pemodel jobs",
        ["job shape", "pemodel runtime", "campaign makespan"],
        rows,
    )

    # each MPI job runs faster...
    assert (
        stats[2].mean_runtime_by_kind["pemodel"]
        < stats[1].mean_runtime_by_kind["pemodel"]
    )
    # ...but the campaign makespan stays roughly constant (same total work
    # on the same cores, minus parallel-efficiency losses)
    assert stats[2].makespan_minutes > 0.9 * stats[1].makespan_minutes
    assert stats[3].makespan_minutes > 0.9 * stats[1].makespan_minutes
