"""Forecast products: scoring, selection and the web bulletin.

Paper Fig 1 (middle row): each prediction comprises "the computation of
r+1 data-driven forecast simulations" followed by "the study, selection
and web-distribution of the best forecasts".  This module implements that
tail of the forecaster's timeline: candidate forecasts are scored against
the newest observation batch (noise-weighted misfit), the best is
selected, and a distributable product summarizing fields, uncertainty and
the candidate ranking is generated.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:
    from repro.core.driver import ForecastResult
    from repro.obs.operators import ObservationOperator
    from repro.ocean.model import PEModel


@dataclass(frozen=True)
class CandidateScore:
    """One candidate forecast's fit to the verification batch."""

    label: str
    weighted_rmse: float  # sqrt(mean(innovation^2 / R))

    def __post_init__(self):
        if self.weighted_rmse < 0:
            raise ValueError("weighted_rmse must be >= 0")

    def to_dict(self) -> dict:
        """JSON-ready form (stable keys; round-trips via :meth:`from_dict`)."""
        return {"label": self.label, "weighted_rmse": self.weighted_rmse}

    @classmethod
    def from_dict(cls, data: dict) -> "CandidateScore":
        """Inverse of :meth:`to_dict`."""
        return cls(
            label=str(data["label"]),
            weighted_rmse=float(data["weighted_rmse"]),
        )


def score_candidates(
    candidates: dict[str, np.ndarray],
    operator: "ObservationOperator",
) -> list[CandidateScore]:
    """Score candidate state vectors against an observation batch.

    The score is the observation-noise-weighted RMS misfit, so a candidate
    matching accurate CTDs matters more than one matching noisy SST.
    Scores are returned best-first; exact ties order by label, so the
    ranking (and therefore the *selected* forecast) is deterministic
    regardless of candidate-dict insertion order.
    """
    if not candidates:
        raise ValueError("need at least one candidate forecast")
    scores = []
    for label, vector in candidates.items():
        innovation = operator.innovation(np.asarray(vector))
        weighted = innovation**2 / operator.noise_var
        scores.append(
            CandidateScore(label=label, weighted_rmse=float(np.sqrt(weighted.mean())))
        )
    return sorted(scores, key=lambda s: (s.weighted_rmse, s.label))


@dataclass(frozen=True)
class ForecastProduct:
    """The distributable bulletin of one prediction cycle."""

    cycle_index: int
    nowcast_time: float
    selected: str
    scores: tuple[CandidateScore, ...]
    sst_mean: float
    sst_min: float
    sst_max: float
    sst_sigma_median: float
    ensemble_size: int
    converged: bool

    def render(self) -> str:
        """The text bulletin ("web distribution" stand-in)."""
        lines = [
            f"ESSE forecast bulletin -- cycle {self.cycle_index}, "
            f"nowcast t={self.nowcast_time / 3600.0:.1f} h",
            f"selected forecast: {self.selected} "
            f"(ensemble N={self.ensemble_size}, "
            f"converged={'yes' if self.converged else 'no'})",
            f"SST: mean {self.sst_mean:.2f} degC "
            f"[{self.sst_min:.2f}, {self.sst_max:.2f}], "
            f"median uncertainty {self.sst_sigma_median:.2f} degC",
            "candidate ranking (weighted RMSE):",
        ]
        for rank, score in enumerate(self.scores, start=1):
            lines.append(f"  {rank}. {score.label}: {score.weighted_rmse:.4f}")
        return "\n".join(lines)

    def to_dict(self) -> dict:
        """JSON-ready form, stable across processes.

        The product store serializes every published snapshot through
        this; :meth:`from_dict` reconstructs an equal dataclass, so a
        bulletin survives the disk round-trip bit-for-bit (floats pass
        through ``json`` unrounded via repr round-tripping).
        """
        return {
            "cycle_index": self.cycle_index,
            "nowcast_time": self.nowcast_time,
            "selected": self.selected,
            "scores": [s.to_dict() for s in self.scores],
            "sst_mean": self.sst_mean,
            "sst_min": self.sst_min,
            "sst_max": self.sst_max,
            "sst_sigma_median": self.sst_sigma_median,
            "ensemble_size": self.ensemble_size,
            "converged": self.converged,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ForecastProduct":
        """Inverse of :meth:`to_dict`."""
        return cls(
            cycle_index=int(data["cycle_index"]),
            nowcast_time=float(data["nowcast_time"]),
            selected=str(data["selected"]),
            scores=tuple(CandidateScore.from_dict(s) for s in data["scores"]),
            sst_mean=float(data["sst_mean"]),
            sst_min=float(data["sst_min"]),
            sst_max=float(data["sst_max"]),
            sst_sigma_median=float(data["sst_sigma_median"]),
            ensemble_size=int(data["ensemble_size"]),
            converged=bool(data["converged"]),
        )


def generate_product(
    model: "PEModel",
    forecast: "ForecastResult",
    operator: "ObservationOperator",
    cycle_index: int = 0,
    extra_candidates: dict[str, np.ndarray] | None = None,
) -> ForecastProduct:
    """Build the cycle's product from the standard candidate set.

    The r+1 data-driven simulations are represented by:

    - ``central``: the unperturbed central forecast,
    - ``ensemble-mean``: the mean of the surviving stochastic members,
    - any caller-supplied extra candidates (e.g. alternative physics).
    """
    central_vec = model.to_vector(forecast.central)
    candidates: dict[str, np.ndarray] = {"central": central_vec}
    if forecast.member_forecasts.shape[0] >= 2:
        candidates["ensemble-mean"] = forecast.member_forecasts.mean(axis=0)
    if extra_candidates:
        overlap = set(extra_candidates) & set(candidates)
        if overlap:
            raise ValueError(f"candidate labels collide: {sorted(overlap)}")
        candidates.update(
            {k: np.asarray(v) for k, v in extra_candidates.items()}
        )
    scores = score_candidates(candidates, operator)
    best = scores[0].label

    layout = model.layout
    grid = model.grid
    wet = grid.mask
    best_state = candidates[best]
    sst = layout.view(np.asarray(best_state), "temp")[0]
    var_phys = forecast.subspace.variance_field() * np.asarray(layout.scales) ** 2
    sst_sigma = np.sqrt(layout.view(var_phys, "temp")[0])
    return ForecastProduct(
        cycle_index=cycle_index,
        nowcast_time=forecast.central.time,
        selected=best,
        scores=tuple(scores),
        sst_mean=float(sst[wet].mean()),
        sst_min=float(sst[wet].min()),
        sst_max=float(sst[wet].max()),
        sst_sigma_median=float(np.median(sst_sigma[wet])),
        ensemble_size=forecast.ensemble_size,
        converged=forecast.converged,
    )
