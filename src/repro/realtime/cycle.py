"""The real-time forecast/assimilation cycle driver.

Walks an :class:`~repro.realtime.times.ExperimentTimeline` against a twin
truth run: at the end of every observation period the network samples the
truth, ESSE forecasts uncertainty over the period, the batch is
assimilated, and the analysis becomes the next cycle's initial condition --
the "simulation time" row of Fig 1 executed end to end.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.core.driver import ESSEDriver, ForecastResult
from repro.core.subspace import ErrorSubspace
from repro.obs.network import ObservationNetwork
from repro.ocean.model import ModelState, PEModel
from repro.realtime.products import generate_product
from repro.realtime.times import ExperimentTimeline
from repro.telemetry.spans import NULL_RECORDER


@dataclass(frozen=True)
class CycleRecord:
    """Diagnostics of one assimilation cycle."""

    period_index: int
    nowcast_time: float
    ensemble_size: int
    converged: bool
    innovation_rms: float
    analysis_rms: float
    forecast_error: float
    analysis_error: float

    @property
    def error_reduction(self) -> float:
        """Relative reduction of true state error by the analysis."""
        if self.forecast_error == 0:
            return 0.0
        return 1.0 - self.analysis_error / self.forecast_error


class RealTimeForecastCycle:
    """Runs ESSE through successive observation periods of a twin experiment.

    Parameters
    ----------
    driver:
        Configured ESSE driver (model inside).
    truth_model:
        The (stochastic) model that evolves the synthetic truth.
    network:
        Observation network sampling the truth each period.
    timeline:
        Experiment timeline; each period triggers one cycle.
    telemetry:
        A :class:`~repro.telemetry.spans.TraceRecorder` receiving one
        ``cycle`` span per observation period, with ``truth_run`` /
        ``observe`` child spans (the driver adds its own forecast and
        assimilation spans inside when it shares the recorder -- pass the
        same instance to both to get the full Fig 1 "simulation time"
        timeline).  The default records nothing.
    product_hook:
        Optional callable ``(product, forecast) -> None`` receiving each
        completed cycle's :class:`~repro.realtime.products.ForecastProduct`
        (scored against that period's observation batch) together with
        the raw :class:`~repro.core.driver.ForecastResult` -- the Fig 1
        "web distribution" tail.  The forecast-product service layer
        plugs its publisher in here
        (:class:`repro.products.store.CycleProductPublisher`); the
        dependency points from the service layer down to this hook, never
        back.  The default drops products on the floor as before.
    """

    def __init__(
        self,
        driver: ESSEDriver,
        truth_model: PEModel,
        network: ObservationNetwork,
        timeline: ExperimentTimeline,
        telemetry=None,
        product_hook: Callable | None = None,
    ):
        self.driver = driver
        self.truth_model = truth_model
        self.network = network
        self.timeline = timeline
        self.telemetry = telemetry if telemetry is not None else NULL_RECORDER
        self.product_hook = product_hook

    def _normalized_error(self, state_vec: np.ndarray, truth: ModelState) -> float:
        layout = self.driver.model.layout
        truth_vec = self.driver.model.to_vector(truth)
        return float(np.linalg.norm(layout.normalize(state_vec - truth_vec)))

    def run(
        self,
        initial_state: ModelState,
        initial_truth: ModelState,
        initial_subspace: ErrorSubspace,
        mapper: Callable | None = None,
    ) -> tuple[list[CycleRecord], ModelState, ErrorSubspace]:
        """Run every cycle of the timeline.

        Returns
        -------
        (records, final_analysis_state, final_subspace)
        """
        model = self.driver.model
        state = initial_state
        truth = initial_truth
        subspace = initial_subspace
        records: list[CycleRecord] = []
        for period in self.timeline.periods():
            with self.telemetry.span("cycle", period=period.index) as cycle_span:
                with self.telemetry.span("truth_run", period=period.index):
                    truth = self.truth_model.run(truth, period.duration)
                forecast = self.driver.forecast(
                    state, subspace, duration=period.duration, mapper=mapper
                )
                with self.telemetry.span("observe", period=period.index):
                    batch = self.network.observe(truth)
                analysis = self.driver.assimilate(forecast, batch.operator)
                forecast_err = self._normalized_error(
                    model.to_vector(forecast.central), truth
                )
                analysis_err = self._normalized_error(analysis.mean, truth)
                cycle_span.set(
                    ensemble_size=forecast.ensemble_size,
                    converged=forecast.converged,
                )
                if self.product_hook is not None:
                    with self.telemetry.span("publish_product", period=period.index):
                        product = generate_product(
                            model,
                            forecast,
                            batch.operator,
                            cycle_index=period.index,
                        )
                        self.product_hook(product, forecast)
                records.append(
                    CycleRecord(
                        period_index=period.index,
                        nowcast_time=period.end,
                        ensemble_size=forecast.ensemble_size,
                        converged=forecast.converged,
                        innovation_rms=analysis.innovation_rms,
                        analysis_rms=analysis.analysis_rms,
                        forecast_error=forecast_err,
                        analysis_error=analysis_err,
                    )
                )
                state = model.from_vector(analysis.mean, time=forecast.central.time)
                subspace = analysis.subspace
        return records, state, subspace
