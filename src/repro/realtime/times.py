"""The three times of real-time ocean forecasting (paper Fig 1).

- *Observation ("ocean") time* ``T``: measurements arrive in batches over
  periods ``T_k`` from ``T_0`` to ``T_f``.
- *Forecaster time* ``tau^k``: for each prediction ``k`` the forecaster
  processes the available data, computes ``r+1`` data-driven forecast
  simulations, and studies/selects/web-distributes the best ones.
- *Simulation time* ``t^i``: each simulation re-covers ocean time from
  ``T_0`` through the last observed period ``T_k`` (assimilating each
  batch -- the nowcast) and continues into the unobserved future up to
  ``T_{k+n}`` (the forecast proper).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ObservationPeriod:
    """One batch window ``T_k`` in ocean time."""

    index: int
    start: float
    end: float

    def __post_init__(self):
        if self.end <= self.start:
            raise ValueError("period end must exceed start")
        if self.index < 0:
            raise ValueError("index must be >= 0")

    @property
    def duration(self) -> float:
        """Window length (s)."""
        return self.end - self.start


@dataclass(frozen=True)
class ForecasterTask:
    """One stage of the forecaster's timeline for prediction ``k``."""

    name: str  # "processing" | "simulation" | "dissemination"
    start: float  # forecaster wall-clock (s from tau_0^k)
    end: float

    def __post_init__(self):
        if self.end < self.start:
            raise ValueError("task end before start")


@dataclass(frozen=True)
class SimulationWindow:
    """Ocean-time coverage of the ``i``-th simulation of prediction ``k``.

    Attributes
    ----------
    assimilation_periods:
        The observed batches ``T_0 .. T_k`` the simulation assimilates.
    nowcast_time:
        End of the last observed period (the nowcast instant).
    forecast_end:
        ``T_{k+n}``: the last prediction time.
    """

    simulation_index: int
    assimilation_periods: tuple[ObservationPeriod, ...]
    nowcast_time: float
    forecast_end: float

    def __post_init__(self):
        if self.forecast_end < self.nowcast_time:
            raise ValueError("forecast must extend beyond the nowcast")

    @property
    def forecast_horizon(self) -> float:
        """Length of the forecast-proper segment (s)."""
        return self.forecast_end - self.nowcast_time


class ExperimentTimeline:
    """The full Fig 1 structure for one real-time experiment.

    Parameters
    ----------
    t0:
        Experiment start (ocean time, s).
    period_length:
        Length of each observation window ``T_k`` (s).
    n_periods:
        Number of observation windows up to ``T_f``.
    forecast_horizon_periods:
        How many periods ``n`` past the nowcast each prediction extends.
    n_simulations:
        ``r + 1``: data-driven forecast simulations per prediction.
    """

    def __init__(
        self,
        t0: float = 0.0,
        period_length: float = 2 * 86400.0,
        n_periods: int = 5,
        forecast_horizon_periods: int = 1,
        n_simulations: int = 2,
    ):
        if period_length <= 0:
            raise ValueError("period_length must be positive")
        if n_periods < 1:
            raise ValueError("n_periods must be >= 1")
        if forecast_horizon_periods < 1:
            raise ValueError("forecast_horizon_periods must be >= 1")
        if n_simulations < 1:
            raise ValueError("n_simulations must be >= 1")
        self.t0 = float(t0)
        self.period_length = float(period_length)
        self.n_periods = int(n_periods)
        self.forecast_horizon_periods = int(forecast_horizon_periods)
        self.n_simulations = int(n_simulations)

    # -- observation time -----------------------------------------------------

    def periods(self) -> list[ObservationPeriod]:
        """All observation windows ``T_0 .. T_{f}``."""
        return [self.period(k) for k in range(self.n_periods)]

    def period(self, k: int) -> ObservationPeriod:
        """The ``T_k`` window."""
        if not 0 <= k < self.n_periods:
            raise IndexError(f"period {k} out of range [0, {self.n_periods})")
        start = self.t0 + k * self.period_length
        return ObservationPeriod(index=k, start=start, end=start + self.period_length)

    @property
    def final_time(self) -> float:
        """``T_f``: end of the last observation window."""
        return self.t0 + self.n_periods * self.period_length

    # -- forecaster time ----------------------------------------------------------

    def forecaster_tasks(
        self,
        processing_fraction: float = 0.2,
        dissemination_fraction: float = 0.1,
        budget: float = 6 * 3600.0,
    ) -> list[ForecasterTask]:
        """The tau^k stage layout within one forecaster budget.

        Fractions split the wall-clock budget between data processing,
        the forecast computations and web distribution.
        """
        if not 0 < processing_fraction + dissemination_fraction < 1:
            raise ValueError("fractions must leave room for the simulations")
        t_proc = budget * processing_fraction
        t_diss = budget * dissemination_fraction
        return [
            ForecasterTask("processing", 0.0, t_proc),
            ForecasterTask("simulation", t_proc, budget - t_diss),
            ForecasterTask("dissemination", budget - t_diss, budget),
        ]

    # -- simulation time -------------------------------------------------------------

    def simulation_window(self, k: int, simulation_index: int = 0) -> SimulationWindow:
        """Ocean-time coverage of one simulation of prediction ``k``."""
        if not 0 <= k < self.n_periods:
            raise IndexError(f"prediction {k} out of range")
        observed = tuple(self.period(j) for j in range(k + 1))
        nowcast = observed[-1].end
        forecast_end = nowcast + self.forecast_horizon_periods * self.period_length
        return SimulationWindow(
            simulation_index=simulation_index,
            assimilation_periods=observed,
            nowcast_time=nowcast,
            forecast_end=forecast_end,
        )

    def simulation_windows(self, k: int) -> list[SimulationWindow]:
        """All ``r+1`` simulation windows of prediction ``k``."""
        return [
            self.simulation_window(k, simulation_index=i)
            for i in range(self.n_simulations)
        ]
