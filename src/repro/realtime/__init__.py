"""Real-time forecasting timelines and the cycle driver (paper Fig 1)."""

from repro.realtime.times import (
    ExperimentTimeline,
    ForecasterTask,
    ObservationPeriod,
    SimulationWindow,
)
from repro.realtime.cycle import CycleRecord, RealTimeForecastCycle
from repro.realtime.products import (
    CandidateScore,
    ForecastProduct,
    generate_product,
    score_candidates,
)

__all__ = [
    "ObservationPeriod",
    "ForecasterTask",
    "SimulationWindow",
    "ExperimentTimeline",
    "CycleRecord",
    "RealTimeForecastCycle",
    "CandidateScore",
    "ForecastProduct",
    "generate_product",
    "score_candidates",
]
