"""Durable filesystem I/O helpers for the stage-then-replace publish protocol.

Every artifact the repo publishes (covariance files, product HEAD pointers,
member forecasts, task status files) follows the same idiom: write to a
staging path, make the bytes durable, then :func:`os.replace` onto the
visible path.  The middle step is the one that gets forgotten -- an
``os.replace`` of an unfsynced file is atomic with respect to *naming* but
not *contents*: after a crash the published name can point at a truncated
or empty artifact.  The REP011 lint rule enforces the full protocol; these
helpers are the sanctioned way to satisfy it.
"""

from __future__ import annotations

import os
from pathlib import Path

__all__ = ["fsync_path", "fsync_dir", "durable_replace"]


def fsync_path(path: str | os.PathLike[str]) -> None:
    """fsync the file at *path* so its contents survive a crash.

    Opens read-only, so it works on artifacts written and closed by other
    code (``Path.write_text``, ``np.savez``, ...).
    """
    fd = os.open(os.fspath(path), os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def fsync_dir(path: str | os.PathLike[str]) -> None:
    """fsync a directory so a rename into it is durable.

    Directory fsync is what persists the *name* -> inode mapping after an
    ``os.replace``.  Best-effort: some filesystems (and platforms) refuse
    to fsync a directory fd; that degrades durability, not correctness.
    """
    try:
        fd = os.open(os.fspath(path), os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def durable_replace(src: str | os.PathLike[str], dst: str | os.PathLike[str]) -> None:
    """Publish *src* at *dst*: fsync src, replace, fsync the parent dir.

    The one-call form of the stage -> fsync -> replace protocol.  After it
    returns, a crash at any point leaves *dst* either absent/previous or
    fully equal to the staged bytes -- never a torn mix.
    """
    fsync_path(src)
    os.replace(src, dst)
    fsync_dir(Path(dst).resolve().parent)
