"""Runtime concurrency sanitizer: lockset races and lock-order inversions.

The many-task pipeline (``repro.workflow.parallel``) is threads sharing
mutable state behind ad-hoc locks; the static lock rules (REP003,
REP006--REP008 in ``tools/lint``) catch what is visible lexically, but a
race that only exists on one interleaving needs a *dynamic* check.  This
module provides two, both in the spirit of Savage et al.'s Eraser:

- a **lockset race detector**: every shared variable registered with
  :func:`track` keeps the set of locks that protected *all* of its
  accesses so far; a write performed while that set is empty -- no single
  lock consistently guards the variable -- is reported as a data race
  without needing the racy interleaving to actually occur;
- a **lock-order witness**: every :class:`SanitizedLock` acquisition
  records "held -> acquired" edges; acquiring two locks in opposite
  orders on any two code paths (the classic deadlock recipe) is reported
  the moment the second ordering is seen, and re-acquiring a held
  non-reentrant lock (a guaranteed self-deadlock) raises immediately
  instead of hanging the test run.

Activation and overhead
-----------------------
The sanitizer is **off by default** and costs one module-global boolean
check per lock operation when off.  It activates when the process starts
with ``REPRO_SANITIZE=1`` in the environment, or inside a
:func:`sanitized` context manager (which is how the test-suite fixture
in ``tests/conftest.py`` wraps every test).  The factories
:func:`new_lock` / :func:`new_rlock` return plain :mod:`threading` locks
when the sanitizer is inactive at construction time, so production runs
carry zero instrumentation; :func:`track` is likewise a no-op when
inactive.

Reports are plain dataclasses (:class:`RaceReport`,
:class:`LockOrderReport`).  They convert into the unified telemetry
event schema via :func:`repro.telemetry.events.from_sanitizer_reports`
-- the conversion lives in :mod:`repro.telemetry` because ``util`` is a
leaf package and must not import upward (REP005).

Scope and honesty
-----------------
Lockset analysis over-approximates: state handed between threads by a
happens-before edge the detector cannot see (``Thread.start``/``join``,
a drained container consumed privately after a locked swap) would be a
false positive if reads were reported.  The implementation therefore
refines locksets on reads but *reports only at writes* -- exactly the
"unlocked mutation" class that PR 3's REP003 caught statically -- and
state that is rebound (``self._x = []``) gets a fresh lockset, so the
swap-under-lock/drain-privately idiom stays clean.
"""

from __future__ import annotations

import os
import threading
from contextlib import contextmanager
from dataclasses import dataclass

__all__ = [
    "LockOrderReport",
    "RaceReport",
    "SanitizedLock",
    "SanitizedRLock",
    "all_reports",
    "clear_reports",
    "is_active",
    "new_lock",
    "new_rlock",
    "sanitized",
    "track",
]


# -- reports ------------------------------------------------------------------


@dataclass(frozen=True)
class RaceReport:
    """A write to tracked shared state with an empty candidate lockset."""

    var: str  # tracked-variable label, e.g. "ParallelESSEWorkflow._events"
    thread: str  # thread performing the unprotected write
    first_thread: str  # thread that first touched the variable
    held: tuple[str, ...]  # locks held at the racy write (may be non-empty)
    kind: str = "race"

    def describe(self) -> str:
        """Human-readable one-line report."""
        held = ", ".join(self.held) or "no locks"
        return (
            f"race: write to {self.var} in thread {self.thread!r} holding "
            f"{held}, but no single lock protects every access "
            f"(first touched by {self.first_thread!r})"
        )

    def to_attrs(self) -> dict:
        """Plain-data attributes for the telemetry event schema."""
        return {
            "var": self.var,
            "thread": self.thread,
            "first_thread": self.first_thread,
            "held": ",".join(self.held),
        }


@dataclass(frozen=True)
class LockOrderReport:
    """Two locks acquired in opposite orders on different code paths."""

    first: str  # lock held while acquiring `second` this time
    second: str
    thread: str  # thread that exhibited this ordering
    prior_thread: str  # thread that witnessed the opposite ordering
    kind: str = "lock_order"

    def describe(self) -> str:
        """Human-readable one-line report."""
        return (
            f"lock-order inversion: thread {self.thread!r} acquired "
            f"{self.second} while holding {self.first}, but thread "
            f"{self.prior_thread!r} previously acquired them in the "
            "opposite order (potential deadlock)"
        )

    def to_attrs(self) -> dict:
        """Plain-data attributes for the telemetry event schema."""
        return {
            "first": self.first,
            "second": self.second,
            "thread": self.thread,
            "prior_thread": self.prior_thread,
        }


# -- module state -------------------------------------------------------------

#: Fast-path activation flag; written only under _STATE_LOCK, read unlocked
#: (a torn read of a bool is impossible in CPython).
_active: bool = os.environ.get("REPRO_SANITIZE", "") == "1"

#: Guards every monitor structure below.  A plain threading.Lock on
#: purpose: the monitor must not recurse into itself.
_STATE_LOCK = threading.Lock()

#: All reports in discovery order (races and inversions interleaved).
_reports: list = []

#: Lock-order edges actually witnessed: (id(a), id(b)) -> (name_a,
#: name_b, thread).  Keyed by lock *identity*, not name, so two
#: same-named locks on different instances never fake an inversion.
_order_edges: dict = {}

#: (id(a), id(b)) pairs already reported, to report each pair once.
_order_reported: set = set()

#: Per-thread stack of currently held (lock, count) entries.
_tls = threading.local()


def is_active() -> bool:
    """Whether the sanitizer is currently recording."""
    return _active


def _held_entries() -> list:
    """The calling thread's held-lock stack (created on first use)."""
    entries = getattr(_tls, "held", None)
    if entries is None:
        entries = _tls.held = []
    return entries


def _held_names() -> frozenset:
    """Names of the locks the calling thread holds right now."""
    return frozenset(lock.name for lock, _ in _held_entries())


def _clear_locked() -> None:
    """Reset every monitor structure; caller holds _STATE_LOCK."""
    _reports.clear()
    _order_edges.clear()
    _order_reported.clear()


def all_reports() -> tuple:
    """Every race/inversion report since the last clear, in order."""
    with _STATE_LOCK:
        return tuple(_reports)


def clear_reports() -> None:
    """Drop accumulated reports and the lock-order edge memory.

    Tests that *deliberately* provoke a race (the detection-power
    fixtures) call this before returning so the suite-level sanitizer
    fixture does not fail the test for the planted report.
    """
    with _STATE_LOCK:
        _clear_locked()


class SanitizerMonitor:
    """Handle yielded by :func:`sanitized`: a view over the reports."""

    @property
    def reports(self) -> tuple:
        """All reports recorded since the context was entered."""
        return all_reports()

    @property
    def races(self) -> tuple:
        """Only the :class:`RaceReport` entries."""
        return tuple(r for r in all_reports() if r.kind == "race")

    @property
    def lock_orders(self) -> tuple:
        """Only the :class:`LockOrderReport` entries."""
        return tuple(r for r in all_reports() if r.kind == "lock_order")

    def clear(self) -> None:
        """Forget reports recorded so far (see :func:`clear_reports`)."""
        clear_reports()


@contextmanager
def sanitized():
    """Activate the sanitizer for the duration of a ``with`` block.

    Clears all monitor state on entry (so each test scopes its own
    reports) and yields a :class:`SanitizerMonitor`.  The activation flag
    is restored on exit, but reports stay readable through the monitor
    until the next activation clears them.

    Locks and tracked state must be *created* while the sanitizer is
    active to be instrumented -- enter the context before constructing
    the objects under test.
    """
    global _active
    with _STATE_LOCK:
        _clear_locked()
    previous = _active
    _active = True
    try:
        yield SanitizerMonitor()
    finally:
        _active = previous


# -- sanitized locks ----------------------------------------------------------


class SanitizedLock:
    """Drop-in for :class:`threading.Lock` that feeds the monitor.

    On every acquisition (while active) it records "held -> acquired"
    ordering edges, reports an inversion if the opposite edge was ever
    witnessed, and raises :class:`RuntimeError` on a same-thread
    re-acquisition -- which for a non-reentrant lock is a guaranteed
    deadlock, better surfaced as an exception than as a hung test run.
    """

    _reentrant = False

    def __init__(self, name: str | None = None):
        self._inner = self._make_inner()
        self.name = name if name is not None else f"{type(self).__name__}@{id(self):#x}"

    @staticmethod
    def _make_inner():
        """The wrapped primitive (overridden by the RLock variant)."""
        return threading.Lock()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name}>"

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        """Acquire the lock, recording order edges while active."""
        if not _active:
            return self._inner.acquire(blocking, timeout)
        self._before_acquire()
        ok = self._inner.acquire(blocking, timeout)
        if ok:
            self._note_acquired()
        return ok

    def release(self) -> None:
        """Release the lock, unwinding the held-lock stack while active."""
        if _active:
            self._note_released()
        self._inner.release()

    def locked(self) -> bool:
        """Whether the underlying lock is currently held by anyone."""
        return self._inner.locked()

    def __enter__(self) -> "SanitizedLock":
        """Context-manager acquire."""
        self.acquire()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        """Context-manager release; never swallows exceptions."""
        self.release()
        return False

    # -- monitor plumbing --------------------------------------------------

    def _held_count(self) -> int:
        """How many times the calling thread currently holds this lock."""
        for lock, count in _held_entries():
            if lock is self:
                return count
        return 0

    def _before_acquire(self) -> None:
        """Order-witness bookkeeping; runs *before* blocking."""
        if self._held_count():
            if not self._reentrant:
                raise RuntimeError(
                    f"sanitizer: thread {threading.current_thread().name!r} "
                    f"re-acquired non-reentrant lock {self.name} it already "
                    "holds -- guaranteed self-deadlock"
                )
            return  # reentrant re-acquisition adds no ordering information
        thread = threading.current_thread().name
        with _STATE_LOCK:
            for held, _ in _held_entries():
                if held is self:
                    continue
                key = (id(held), id(self))
                _order_edges.setdefault(key, (held.name, self.name, thread))
                reverse = (id(self), id(held))
                witness = _order_edges.get(reverse)
                pair = (min(key), max(key))
                if witness is not None and pair not in _order_reported:
                    _order_reported.add(pair)
                    _reports.append(
                        LockOrderReport(
                            first=held.name,
                            second=self.name,
                            thread=thread,
                            prior_thread=witness[2],
                        )
                    )

    def _note_acquired(self) -> None:
        entries = _held_entries()
        for i, (lock, count) in enumerate(entries):
            if lock is self:
                entries[i] = (lock, count + 1)
                return
        entries.append((self, 1))

    def _note_released(self) -> None:
        entries = _held_entries()
        for i, (lock, count) in enumerate(entries):
            if lock is self:
                if count > 1:
                    entries[i] = (lock, count - 1)
                else:
                    del entries[i]
                return


class SanitizedRLock(SanitizedLock):
    """Drop-in for :class:`threading.RLock` with the same monitoring."""

    _reentrant = True

    @staticmethod
    def _make_inner():
        """The wrapped reentrant primitive."""
        return threading.RLock()

    def locked(self) -> bool:
        """RLocks predate ``locked()``; approximate via try-acquire."""
        if self._inner.acquire(blocking=False):
            self._inner.release()
            return False
        return True


def new_lock(name: str | None = None):
    """A mutex: :class:`SanitizedLock` when active, else ``threading.Lock``.

    The decision is made at construction time, so objects built outside a
    :func:`sanitized` context (and without ``REPRO_SANITIZE=1``) carry a
    raw lock and pay zero sanitizer overhead forever.
    """
    return SanitizedLock(name) if _active else threading.Lock()


def new_rlock(name: str | None = None):
    """Reentrant variant of :func:`new_lock`."""
    return SanitizedRLock(name) if _active else threading.RLock()


# -- lockset race detection ---------------------------------------------------

# Eraser state machine per tracked variable:
#   EXCLUSIVE        only one thread has touched it (no check)
#   SHARED           multiple threads, reads only since sharing began
#   SHARED_MODIFIED  multiple threads and at least one write
# The candidate lockset starts as the locks held at the first *shared*
# access and is intersected on every subsequent access; an empty set at a
# write means no single lock protects the variable.
_EXCLUSIVE = 0
_SHARED = 1
_SHARED_MODIFIED = 2


class _Var:
    """Monitor state of one tracked variable (or tracked container)."""

    __slots__ = ("label", "phase", "owner", "lockset", "reported")

    def __init__(self, label: str, owner: str):
        self.label = label
        self.phase = _EXCLUSIVE
        self.owner = owner  # first-toucher thread name
        self.lockset: frozenset = frozenset()
        self.reported = False


def _note_access(var: _Var, write: bool) -> None:
    """Feed one access into the lockset state machine."""
    thread = threading.current_thread().name
    held = _held_names()
    with _STATE_LOCK:
        if var.phase == _EXCLUSIVE:
            if thread == var.owner:
                return
            var.lockset = held
            var.phase = _SHARED_MODIFIED if write else _SHARED
        else:
            var.lockset &= held
            if write:
                var.phase = _SHARED_MODIFIED
        if (
            write
            and var.phase == _SHARED_MODIFIED
            and not var.lockset
            and not var.reported
        ):
            var.reported = True
            _reports.append(
                RaceReport(
                    var=var.label,
                    thread=thread,
                    first_thread=var.owner,
                    held=tuple(sorted(held)),
                )
            )


class _TrackedAttr:
    """Data descriptor routing one attribute's accesses to the monitor.

    The value itself lives in the instance ``__dict__`` under its normal
    name; the per-instance :class:`_Var` sits beside it under a mangled
    key.  Being a *data* descriptor, it takes precedence over the
    instance dictionary for both reads and writes.
    """

    def __init__(self, name: str):
        self.name = name
        self.varslot = "_repro_sanitizer_var__" + name

    def __get__(self, obj, objtype=None):
        if obj is None:
            return self
        d = obj.__dict__
        if _active:
            var = d.get(self.varslot)
            if var is not None:
                _note_access(var, write=False)
        try:
            return d[self.name]
        except KeyError:
            raise AttributeError(self.name) from None

    def __set__(self, obj, value) -> None:
        d = obj.__dict__
        if _active:
            var = d.get(self.varslot)
            if var is not None:
                _note_access(var, write=True)
                # Rebinding starts a fresh container epoch: the old value
                # may legitimately be consumed privately (drain pattern).
                value = _wrap_value(value, var.label)
        d[self.name] = value

    def __delete__(self, obj) -> None:
        obj.__dict__.pop(self.name, None)


# -- instrumented containers --------------------------------------------------
#
# Attribute-level tracking alone cannot see `self._d[k] = v`: that is a
# *read* of the attribute followed by a mutation of the container.  The
# wrapper subclasses below give dict/list/set values their own _Var so
# in-place mutations count as writes at the right granularity.

_DICT_WRITERS = (
    "__setitem__", "__delitem__", "__ior__", "clear", "pop", "popitem",
    "setdefault", "update",
)
_LIST_WRITERS = (
    "__setitem__", "__delitem__", "__iadd__", "__imul__", "append", "clear",
    "extend", "insert", "pop", "remove", "reverse", "sort",
)
_SET_WRITERS = (
    "__iand__", "__ior__", "__isub__", "__ixor__", "add", "clear", "discard",
    "difference_update", "intersection_update", "pop", "remove",
    "symmetric_difference_update", "update",
)
_READERS = (
    "__contains__", "__getitem__", "__iter__", "__len__", "__eq__", "copy",
    "count", "get", "index", "items", "keys", "values",
)


def _accessor(base: type, method: str, write: bool):
    """Build one monitored method forwarding to the base container."""
    target = getattr(base, method)

    def wrapped(self, *args, **kwargs):
        if _active:
            _note_access(self._repro_var, write=write)
        return target(self, *args, **kwargs)

    wrapped.__name__ = method
    return wrapped


def _tracked_container(base: type, writers: tuple) -> type:
    """A ``base`` subclass whose mutators/readers feed the monitor."""
    namespace: dict = {"__slots__": ("_repro_var",)}
    for method in writers:
        if hasattr(base, method):
            namespace[method] = _accessor(base, method, write=True)
    for method in _READERS:
        if hasattr(base, method):
            namespace[method] = _accessor(base, method, write=False)
    return type(f"_Tracked{base.__name__.capitalize()}", (base,), namespace)


_TrackedDict = _tracked_container(dict, _DICT_WRITERS)
_TrackedList = _tracked_container(list, _LIST_WRITERS)
_TrackedSet = _tracked_container(set, _SET_WRITERS)

_CONTAINER_TYPES = {dict: _TrackedDict, list: _TrackedList, set: _TrackedSet}


def _wrap_value(value, label: str):
    """Wrap a plain dict/list/set in its monitored twin (else pass through)."""
    wrapper = _CONTAINER_TYPES.get(type(value))
    if wrapper is None:
        return value
    wrapped = wrapper(value)
    wrapped._repro_var = _Var(label, threading.current_thread().name)
    return wrapped


# -- track() ------------------------------------------------------------------

#: Cache of instrumented subclasses keyed by (base class, tracked attrs).
_class_cache: dict = {}


def _tracked_class(base: type, attrs: frozenset) -> type:
    key = (base, attrs)
    cls = _class_cache.get(key)
    if cls is None:
        namespace = {name: _TrackedAttr(name) for name in sorted(attrs)}
        namespace["_repro_sanitizer_base"] = base
        namespace["_repro_sanitizer_attrs"] = attrs
        cls = type(base.__name__, (base,), namespace)
        _class_cache[key] = cls
    return cls


def track(obj, *attrs: str):
    """Register instance attributes as sanitizer-monitored shared state.

    A no-op (returning ``obj`` unchanged) when the sanitizer is inactive.
    When active, the object's class is swapped for a cached instrumented
    subclass whose data descriptors observe reads/writes of the named
    attributes, and any current dict/list/set values are wrapped so
    in-place mutations (``self._d[k] = v``, ``self._l.append(x)``) count
    as writes.  Call from ``__init__`` *after* assigning the attributes:

    >>> class Pool:
    ...     def __init__(self):
    ...         self._lock = new_lock("Pool._lock")
    ...         self._items = []
    ...         track(self, "_items")

    Only track state that is genuinely lock-guarded.  State handed
    between threads by ``Thread.start``/``join`` ordering alone (the
    detector cannot see happens-before edges) belongs outside
    :func:`track`.
    """
    if not _active:
        return obj
    cls = type(obj)
    base = getattr(cls, "_repro_sanitizer_base", cls)
    tracked = frozenset(getattr(cls, "_repro_sanitizer_attrs", frozenset()) | set(attrs))
    try:
        obj.__class__ = _tracked_class(base, tracked)
    except TypeError as exc:  # __slots__, extension types...
        raise TypeError(
            f"sanitizer.track() cannot instrument {base.__name__}: {exc}"
        ) from exc
    owner = threading.current_thread().name
    for name in attrs:
        varslot = "_repro_sanitizer_var__" + name
        if varslot in obj.__dict__:
            continue  # already tracked; keep its history
        label = f"{base.__name__}.{name}"
        obj.__dict__[varslot] = _Var(label, owner)
        if name in obj.__dict__:
            obj.__dict__[name] = _wrap_value(obj.__dict__[name], label)
    return obj
