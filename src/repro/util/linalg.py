"""Thin linear-algebra helpers used throughout the ESSE core.

The ESSE procedure is dominated by SVDs of tall-skinny difference matrices
(state dimension ``n`` is O(1e4-1e7), ensemble size ``N`` is O(1e2-1e3)).
Following the optimisation guidance for scientific Python, we always request
economy-size factorizations (``full_matrices=False``): the full ``n x n``
left factor would be both useless and unaffordable.
"""

from __future__ import annotations

import numpy as np
import scipy.linalg

from repro.util.rng import SeedSequenceStream


def thin_svd(a: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Economy-size SVD ``a = u @ diag(s) @ vt``.

    Parameters
    ----------
    a:
        Matrix of shape ``(n, m)``; typically ``n >> m`` (state-by-ensemble).

    Returns
    -------
    u, s, vt:
        ``u`` is ``(n, k)``, ``s`` is ``(k,)`` descending, ``vt`` is
        ``(k, m)`` with ``k = min(n, m)``.
    """
    a = np.asarray(a, dtype=np.float64)
    if a.ndim != 2:
        raise ValueError(f"thin_svd expects a 2-D array, got shape {a.shape}")
    # gesdd is faster for the tall-skinny matrices ESSE produces; fall back
    # to the slower but more robust gesvd driver on non-convergence.
    try:
        return scipy.linalg.svd(a, full_matrices=False, lapack_driver="gesdd")
    except np.linalg.LinAlgError:
        return scipy.linalg.svd(a, full_matrices=False, lapack_driver="gesvd")


def truncated_svd(
    a: np.ndarray,
    rank: int | None = None,
    energy: float | None = None,
    rtol: float = 0.0,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Thin SVD truncated to a dominant subspace.

    The criteria compose: the retained rank is the tightest of the
    ``energy`` cut, the ``rank`` cap and the ``rtol`` floor.

    Parameters
    ----------
    a:
        Matrix ``(n, m)``.
    rank:
        Keep at most this many modes.
    energy:
        Keep the smallest leading set of modes whose cumulative squared
        singular values reach this fraction of the total (0 < energy <= 1).
    rtol:
        Relative singular-value floor; modes with ``s_i <= rtol * s_0`` are
        always discarded.
    """
    u, s, vt = thin_svd(a)
    if s.size == 0:
        return u, s, vt
    keep = s.size
    if rtol > 0.0:
        keep = int(np.count_nonzero(s > rtol * s[0]))
        keep = max(keep, 1)
    if energy is not None:
        if not 0.0 < energy <= 1.0:
            raise ValueError(f"energy must be in (0, 1], got {energy}")
        power = np.cumsum(s**2)
        total = power[-1]
        if total == 0.0:
            keep = 1
        else:
            keep = min(keep, int(np.searchsorted(power, energy * total) + 1))
    if rank is not None:
        if rank < 1:
            raise ValueError(f"rank must be >= 1, got {rank}")
        keep = min(keep, rank)
    return u[:, :keep], s[:keep], vt[:keep, :]


def randomized_svd(
    a: np.ndarray,
    rank: int,
    oversample: int = 10,
    n_iter: int = 2,
    rng: np.random.Generator | None = None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Randomized range-finder SVD (Halko-Martinsson-Tropp).

    The paper worries that the dense LAPACK SVD "require[s] a lot of
    memory and time, especially for large N" and anticipates needing
    ScaLAPACK (Sec 4.1).  For the dominant-subspace extraction ESSE
    actually needs, sketching is the modern answer: project onto a random
    ``rank + oversample``-dimensional range, QR it, and SVD the small
    projected matrix -- O(n N k) instead of O(n N min(n, N)), with a few
    power iterations sharpening the spectrum.

    Parameters
    ----------
    a:
        Matrix ``(n, m)``.
    rank:
        Number of singular triplets wanted (>= 1).
    oversample:
        Extra sketch dimensions (accuracy knob).
    n_iter:
        Power iterations (each sharpens decaying spectra).
    rng:
        Generator for the sketch; thread one from your experiment's root
        seed for stream independence.  The default is a deterministic
        keyed stream, so repeated sketches of the same matrix agree
        bit-for-bit.

    Returns
    -------
    (u, s, vt) with ``u`` of shape ``(n, rank)``.
    """
    a = np.asarray(a, dtype=np.float64)
    if a.ndim != 2:
        raise ValueError(f"randomized_svd expects a 2-D array, got {a.shape}")
    if rank < 1:
        raise ValueError("rank must be >= 1")
    if oversample < 0 or n_iter < 0:
        raise ValueError("oversample and n_iter must be >= 0")
    if rng is None:
        rng = SeedSequenceStream(0).rng("linalg", "randomized-svd")
    n, m = a.shape
    sketch = min(rank + oversample, m)
    omega = rng.standard_normal((m, sketch))
    y = a @ omega
    for _ in range(n_iter):
        y, _ = np.linalg.qr(y)
        y = a @ (a.T @ y)
    q, _ = np.linalg.qr(y)
    b = q.T @ a  # (sketch, m)
    ub, s, vt = scipy.linalg.svd(b, full_matrices=False)
    u = q @ ub
    keep = min(rank, s.size)
    return u[:, :keep], s[:keep], vt[:keep, :]


def svd_rank_update(
    u: np.ndarray,
    s: np.ndarray,
    new_columns: np.ndarray,
    rank: int | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Incremental SVD update: append columns to a known factorization.

    Given a (possibly truncated) left factorization ``A approx
    U diag(s)`` and ``k`` newly arrived columns ``C``, returns the left
    singular vectors and values of the augmented matrix
    ``[U diag(s), C]`` -- the Brand (2002) update specialized to the
    left factor, which is all ESSE needs (error modes and std-devs; the
    right factor is bookkeeping we never use).

    Cost is ``O(n (p + k)^2)`` for state dimension ``n``, carried rank
    ``p`` and batch size ``k`` -- independent of how many columns were
    already folded in, which is the whole point: each differ->SVD
    checkpoint pays for its *new* members only, not for the full
    ensemble from scratch.

    The update is exact (to roundoff) when ``U diag(s)`` is an exact
    factorization of the previous columns; with a truncated ``U`` the
    error is bounded by the discarded singular values (the caller's
    accuracy guard -- see
    :class:`repro.core.subspace.IncrementalSubspaceEstimator`).

    Parameters
    ----------
    u:
        Orthonormal columns ``(n, p)``.
    s:
        Singular values ``(p,)``, descending.
    new_columns:
        New columns ``(n, k)`` (a 1-D vector is treated as ``k = 1``).
    rank:
        Truncate the result to at most this many modes.

    Returns
    -------
    (u2, s2) with ``u2`` of shape ``(n, min(p + k, rank))``.
    """
    u = np.asarray(u, dtype=np.float64)
    s = np.asarray(s, dtype=np.float64)
    c = np.asarray(new_columns, dtype=np.float64)
    if c.ndim == 1:
        c = c[:, None]
    if u.ndim != 2 or c.ndim != 2 or u.shape[0] != c.shape[0]:
        raise ValueError(
            f"incompatible shapes: u {u.shape}, new_columns {c.shape}"
        )
    if s.shape != (u.shape[1],):
        raise ValueError(f"s shape {s.shape} does not match {u.shape[1]} modes")
    p, k = u.shape[1], c.shape[1]
    # Project the new columns onto the carried subspace and orthogonalize
    # the residual (one re-orthogonalization pass guards against the
    # classical Gram-Schmidt cancellation when C nearly lies in span(U)).
    m = u.T @ c
    resid = c - u @ m
    m2 = u.T @ resid
    resid -= u @ m2
    m += m2
    q, r = np.linalg.qr(resid)
    # SVD of the small core [[diag(s), M], [0, R]] of size (p+k, p+k).
    core = np.zeros((p + k, p + k))
    core[:p, :p] = np.diag(s)
    core[:p, p:] = m
    core[p:, p:] = r
    uc, s2, _ = scipy.linalg.svd(core, full_matrices=False)
    u2 = np.hstack([u, q]) @ uc
    if rank is not None:
        keep = min(max(int(rank), 1), s2.size)
        u2, s2 = u2[:, :keep], s2[:keep]
    return u2, s2


def warm_randomized_svd(
    a: np.ndarray,
    rank: int,
    basis: np.ndarray | None = None,
    oversample: int = 10,
    n_iter: int = 1,
    rng: np.random.Generator | None = None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Randomized SVD warm-started from a previous dominant subspace.

    Identical to :func:`randomized_svd` except the range sketch is
    seeded with ``basis`` -- the previous checkpoint's error modes.
    Because consecutive ESSE checkpoints share most of their dominant
    subspace, the seeded sketch already spans nearly the whole range and
    a single power iteration suffices where a cold sketch needs several;
    the random oversample columns catch whatever directions the new
    members introduced.

    Parameters
    ----------
    a:
        Matrix ``(n, m)``.
    rank:
        Number of singular triplets wanted.
    basis:
        Orthonormal warm-start columns ``(n, p)`` (``None`` falls back
        to the cold sketch of :func:`randomized_svd`).
    oversample, n_iter, rng:
        As for :func:`randomized_svd`.
    """
    a = np.asarray(a, dtype=np.float64)
    if a.ndim != 2:
        raise ValueError(f"warm_randomized_svd expects a 2-D array, got {a.shape}")
    if basis is None:
        return randomized_svd(a, rank, oversample=oversample, n_iter=n_iter, rng=rng)
    basis = np.asarray(basis, dtype=np.float64)
    if basis.ndim != 2 or basis.shape[0] != a.shape[0]:
        raise ValueError(
            f"basis {basis.shape} incompatible with matrix {a.shape}"
        )
    if rank < 1:
        raise ValueError("rank must be >= 1")
    if oversample < 0 or n_iter < 0:
        raise ValueError("oversample and n_iter must be >= 0")
    if rng is None:
        rng = SeedSequenceStream(0).rng("linalg", "warm-randomized-svd")
    n, m = a.shape
    sketch = min(rank + oversample, m)
    fresh = max(sketch - basis.shape[1], 1)
    omega = rng.standard_normal((m, fresh))
    y = np.hstack([basis, a @ omega])
    for _ in range(n_iter):
        y, _ = np.linalg.qr(y)
        y = a @ (a.T @ y)
    q, _ = np.linalg.qr(y)
    b = q.T @ a
    ub, s, vt = scipy.linalg.svd(b, full_matrices=False)
    u = q @ ub
    keep = min(rank, s.size)
    return u[:, :keep], s[:keep], vt[:keep, :]


def orthonormal_columns(a: np.ndarray, atol: float = 1e-8) -> bool:
    """Return True when the columns of ``a`` are orthonormal within ``atol``."""
    a = np.asarray(a)
    if a.ndim != 2:
        raise ValueError(f"expected 2-D array, got shape {a.shape}")
    gram = a.T @ a
    return bool(np.allclose(gram, np.eye(a.shape[1]), atol=atol))


def subspace_principal_angles(e1: np.ndarray, e2: np.ndarray) -> np.ndarray:
    """Principal angles (radians, ascending) between two column subspaces.

    Both inputs must have orthonormal columns; use the cosines
    ``sigma(E1^T E2)`` clipped into [0, 1].
    """
    for name, e in (("e1", e1), ("e2", e2)):
        if not orthonormal_columns(e, atol=1e-6):
            raise ValueError(f"{name} does not have orthonormal columns")
    cosines = scipy.linalg.svd(e1.T @ e2, compute_uv=False)
    return np.arccos(np.clip(cosines, 0.0, 1.0))[::-1]
