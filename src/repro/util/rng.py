"""Reproducible, member-indexed random-number streams.

Every ESSE ensemble member gets its own independent stream derived from a
root seed and the *perturbation index*.  This mirrors the paper's workflow,
where the perturbation index is passed to each singleton job: a member's
stochastic forcing depends only on (root seed, index), never on the order
in which the scheduler happens to run members.  Members can therefore be
re-run, re-ordered across heterogeneous hosts (Sec 5.3.3: "perturbation 900
may very well finish well before number 700") or restarted after a crash
without changing the statistics.
"""

from __future__ import annotations

import numpy as np


class SeedSequenceStream:
    """A root seed that spawns per-purpose, per-index child generators.

    Parameters
    ----------
    root_seed:
        Any integer; identifies the whole experiment.

    Notes
    -----
    Streams are keyed by an arbitrary tuple of small ints / strings hashed
    into spawn keys, so e.g. ``stream.rng("pert", 17)`` is stable across
    processes and platforms.
    """

    def __init__(self, root_seed: int):
        self.root_seed = int(root_seed)

    def _key_words(self, key: tuple) -> list[int]:
        words: list[int] = []
        for part in key:
            if isinstance(part, (int, np.integer)):
                words.append(int(part) & 0xFFFFFFFF)
            elif isinstance(part, str):
                # Stable 32-bit FNV-1a hash; Python's hash() is salted.
                acc = 2166136261
                for byte in part.encode():
                    acc = ((acc ^ byte) * 16777619) & 0xFFFFFFFF
                words.append(acc)
            else:
                raise TypeError(f"stream key parts must be int or str, got {part!r}")
        return words

    def seed_sequence(self, *key: int | str) -> np.random.SeedSequence:
        """The :class:`numpy.random.SeedSequence` for a stream key."""
        return np.random.SeedSequence([self.root_seed, *self._key_words(key)])

    def rng(self, *key: int | str) -> np.random.Generator:
        """An independent :class:`numpy.random.Generator` for a stream key."""
        return np.random.default_rng(self.seed_sequence(*key))


def member_rng(root_seed: int, member_index: int, purpose: str = "member") -> np.random.Generator:
    """Generator for one ensemble member, independent of execution order."""
    if member_index < 0:
        raise ValueError(f"member_index must be >= 0, got {member_index}")
    return SeedSequenceStream(root_seed).rng(purpose, member_index)
