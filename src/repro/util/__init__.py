"""Shared utilities: thin SVDs, RNG streams, random fields, sanitizer."""

from repro.util.linalg import (
    thin_svd,
    truncated_svd,
    orthonormal_columns,
    subspace_principal_angles,
)
from repro.util.rng import SeedSequenceStream, member_rng
from repro.util.randomfields import GaussianRandomField2D
from repro.util.sanitizer import (
    SanitizedLock,
    SanitizedRLock,
    new_lock,
    new_rlock,
    sanitized,
    track,
)

__all__ = [
    "thin_svd",
    "truncated_svd",
    "orthonormal_columns",
    "subspace_principal_angles",
    "SeedSequenceStream",
    "member_rng",
    "GaussianRandomField2D",
    "SanitizedLock",
    "SanitizedRLock",
    "new_lock",
    "new_rlock",
    "sanitized",
    "track",
]
