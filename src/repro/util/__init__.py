"""Shared numerical utilities: thin SVDs, RNG streams, random fields."""

from repro.util.linalg import (
    thin_svd,
    truncated_svd,
    orthonormal_columns,
    subspace_principal_angles,
)
from repro.util.rng import SeedSequenceStream, member_rng
from repro.util.randomfields import GaussianRandomField2D

__all__ = [
    "thin_svd",
    "truncated_svd",
    "orthonormal_columns",
    "subspace_principal_angles",
    "SeedSequenceStream",
    "member_rng",
    "GaussianRandomField2D",
]
