"""Spatially correlated Gaussian random fields.

ESSE perturbs initial conditions with *smooth* random fields (dominant error
modes plus correlated "white-noise" residuals) and forces the stochastic
ocean model with noise that is white in time but correlated in space
(Sec 3.1: state augmentation turns time/space-correlated model error into
intermediary Wiener processes).  We synthesize such fields spectrally: draw
white noise on the grid, filter it with a Gaussian kernel in Fourier space,
and normalize to unit pointwise variance.

The FFT route costs O(nx ny log(nx ny)) per draw and vectorizes over the
grid, which keeps per-member perturbation cost negligible next to the model
integration (the same balance the paper reports between ``pert`` seconds and
``pemodel`` half-hours).
"""

from __future__ import annotations

import numpy as np

from repro.util.rng import SeedSequenceStream


class GaussianRandomField2D:
    """Homogeneous Gaussian random fields on a periodic 2-D grid.

    Parameters
    ----------
    shape:
        Grid shape ``(ny, nx)``.
    length_scale:
        Correlation length in *grid cells*; the spectral filter is
        ``exp(-(k * L)^2 / 2)``.  ``0`` yields white noise.
    seed / rng:
        Either a seed for an internal generator or an external generator
        (pass at most one).  With neither, the field uses a deterministic
        :class:`~repro.util.rng.SeedSequenceStream` stream so repeat runs
        draw identical fields.

    Notes
    -----
    Fields are normalized so that each point has (ensemble) variance 1;
    callers scale by physical standard deviations.  The periodic wrap is
    acceptable because the ocean domain is masked by land well inside the
    array bounds.
    """

    def __init__(
        self,
        shape: tuple[int, int],
        length_scale: float,
        rng: np.random.Generator | None = None,
        seed: int | None = None,
    ):
        ny, nx = shape
        if ny < 1 or nx < 1:
            raise ValueError(f"shape must be positive, got {shape}")
        if length_scale < 0:
            raise ValueError(f"length_scale must be >= 0, got {length_scale}")
        if rng is not None and seed is not None:
            raise ValueError("pass at most one of rng= and seed=")
        self.shape = (int(ny), int(nx))
        self.length_scale = float(length_scale)
        if rng is not None:
            self._rng = rng
        elif seed is not None:
            self._rng = np.random.default_rng(seed)
        else:
            self._rng = SeedSequenceStream(0).rng("util", "randomfields")
        self._filter = self._build_filter()

    def _build_filter(self) -> np.ndarray:
        ny, nx = self.shape
        ky = np.fft.fftfreq(ny)[:, None] * 2.0 * np.pi
        kx = np.fft.fftfreq(nx)[None, :] * 2.0 * np.pi
        k2 = ky**2 + kx**2
        filt = np.exp(-0.5 * k2 * self.length_scale**2)
        # Normalize so the synthesized field has unit pointwise variance:
        # var = mean(|filter|^2) over wavenumbers.
        norm = np.sqrt(np.mean(filt**2))
        if norm == 0.0:
            raise RuntimeError("degenerate spectral filter")
        return filt / norm

    def filter_white(self, white: np.ndarray) -> np.ndarray:
        """Spectrally filter externally drawn white noise into smooth fields.

        ``white`` is standard-normal noise whose trailing two axes match
        the grid; any leading batch axes are filtered independently (one
        batched FFT).  This is the shared kernel behind :meth:`sample` and
        :meth:`sample_many`, split out so callers that must control the
        *draw order* of the white noise (e.g. the batched ensemble
        forcing, which draws per-member then filters per-batch) produce
        bit-identical fields to the single-draw path: ``numpy``'s
        pocketfft transforms over ``axes=(-2, -1)`` are bit-identical
        whether or not leading batch axes are present.
        """
        white = np.asarray(white)
        if white.shape[-2:] != self.shape:
            raise ValueError(
                f"white noise shape {white.shape} incompatible with grid "
                f"{self.shape}"
            )
        spectrum = np.fft.fft2(white, axes=(-2, -1)) * self._filter
        return np.real(np.fft.ifft2(spectrum, axes=(-2, -1)))

    def sample(self, rng: np.random.Generator | None = None) -> np.ndarray:
        """Draw one field of shape ``(ny, nx)`` with ~unit variance."""
        gen = rng if rng is not None else self._rng
        return self.filter_white(gen.standard_normal(self.shape))

    def sample_many(self, count: int, rng: np.random.Generator | None = None) -> np.ndarray:
        """Draw ``count`` independent fields, shape ``(count, ny, nx)``."""
        if count < 0:
            raise ValueError(f"count must be >= 0, got {count}")
        gen = rng if rng is not None else self._rng
        return self.filter_white(gen.standard_normal((count, *self.shape)))
