"""ESSE many-task computing reproduction.

Reproduction of Evangelinos, Lermusiaux, Xu, Haley & Hill, *Many Task
Computing for Multidisciplinary Ocean Sciences: Real-Time Uncertainty
Prediction and Data Assimilation* (MTAGS'09 / SC'09 workshop).

The package is organised as:

- :mod:`repro.core` -- ESSE proper: error subspaces, perturbations,
  adaptive ensembles, SVD convergence and the assimilation update.
- :mod:`repro.ocean` -- the primitive-equation-model substrate: a
  stochastically forced shallow-water + tracer model over a synthetic
  Monterey-Bay-like domain.
- :mod:`repro.obs` -- synthetic observation instruments and measurement
  operators (CTD, AUV, glider, SST).
- :mod:`repro.acoustics` -- sound-speed, normal-mode transmission loss and
  coupled physical-acoustical uncertainty.
- :mod:`repro.workflow` -- the serial (Fig 3) and parallel many-task
  (Fig 4) ESSE workflow implementations.
- :mod:`repro.sched` -- discrete-event simulation of the local cluster,
  SGE/Condor schedulers, TeraGrid sites and Amazon EC2 (Tables 1-2).
- :mod:`repro.realtime` -- real-time forecasting timelines (Fig 1).
"""

__version__ = "0.1.0"

__all__ = [
    "core",
    "ocean",
    "obs",
    "acoustics",
    "workflow",
    "sched",
    "realtime",
    "util",
]
