"""Atmospheric forcing: wind stress and surface heat flux.

The AOSN-II ensembles were "each forced by forecast COAMPS atmospheric
fluxes" (paper Sec 6).  We synthesize a COAMPS-like product: a mean
upwelling-favourable (equatorward) along-shore wind with synoptic
relaxation/strengthening events, plus a diurnal-ish heat-flux cycle.  The
forcing is a deterministic function of time so every ensemble member sees
the same fluxes (model-error noise is separate, in
:mod:`repro.ocean.stochastic`).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.ocean.grid import OceanGrid


def upwelling_wind_stress(
    grid: OceanGrid,
    amplitude: float = 0.08,
    offshore_decay_fraction: float = 0.5,
) -> tuple[np.ndarray, np.ndarray]:
    """Mean wind-stress pattern (tau_x, tau_y) in N/m^2.

    Equatorward (southward, tau_y < 0) along-shore stress, strongest at
    the coast and decaying offshore -- the classic central-California
    summer pattern, and the shape that drives coastal Ekman divergence
    (hence upwelling) against the eastern boundary.
    """
    xf = np.linspace(0.0, 1.0, grid.nx)[None, :]
    dist_offshore = 1.0 - xf  # 0 at the (eastern) coast
    profile = np.exp(-dist_offshore / max(offshore_decay_fraction, 1e-6))
    tau_y = -amplitude * (0.4 + 0.6 * profile) * np.ones((grid.ny, 1))
    tau_x = 0.15 * amplitude * np.sin(np.pi * xf) * np.ones((grid.ny, 1))
    return grid.apply_mask(tau_x * np.ones(grid.shape2d)), grid.apply_mask(
        tau_y * np.ones(grid.shape2d)
    )


@dataclass(frozen=True)
class AtmosphericForcing:
    """Time-dependent surface forcing.

    Parameters
    ----------
    grid:
        Ocean grid.
    mean_tau:
        Mean wind-stress magnitude (N/m^2).
    synoptic_period:
        Period (s) of the wind relaxation/strengthening cycle; AOSN-II saw
        ~5-8 day upwelling/relaxation cycles.
    synoptic_amplitude:
        Fractional modulation of the mean wind (0 = steady).
    heat_flux_amplitude:
        Surface heat-flux amplitude (W/m^2) for the daily cycle.
    """

    grid: OceanGrid
    mean_tau: float = 0.08
    synoptic_period: float = 6.0 * 86400.0
    synoptic_amplitude: float = 0.6
    heat_flux_amplitude: float = 80.0

    def __post_init__(self):
        if self.synoptic_period <= 0:
            raise ValueError("synoptic_period must be positive")
        if not 0.0 <= self.synoptic_amplitude <= 1.0:
            raise ValueError("synoptic_amplitude must be in [0, 1]")
        tau_x, tau_y = upwelling_wind_stress(self.grid, amplitude=self.mean_tau)
        object.__setattr__(self, "_tau_x0", tau_x)
        object.__setattr__(self, "_tau_y0", tau_y)

    def wind_stress(self, t: float) -> tuple[np.ndarray, np.ndarray]:
        """Wind stress fields (tau_x, tau_y) at model time ``t`` seconds."""
        phase = 2.0 * np.pi * t / self.synoptic_period
        factor = 1.0 + self.synoptic_amplitude * np.sin(phase)
        return self._tau_x0 * factor, self._tau_y0 * factor

    def heat_flux(self, t: float) -> np.ndarray:
        """Net surface heat flux (W/m^2, positive warms) at time ``t``."""
        daily = np.cos(2.0 * np.pi * (t % 86400.0) / 86400.0 - np.pi)
        synoptic = 0.3 * np.sin(2.0 * np.pi * t / self.synoptic_period)
        value = self.heat_flux_amplitude * (daily + synoptic)
        return self.grid.apply_mask(np.full(self.grid.shape2d, value))
