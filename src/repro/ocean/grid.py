"""Regular ocean grid with land/sea mask and depth levels.

Fields are collocated (A-grid): simpler masking than a staggered C-grid and
entirely adequate for the mesoscale "scale window" the paper targets.  All
horizontal arrays are indexed ``[y, x]`` (row = northing) and 3-D tracer
arrays ``[z, y, x]``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass(frozen=True)
class OceanGrid:
    """A regular, masked ocean grid.

    Parameters
    ----------
    nx, ny:
        Number of points east/north.
    dx, dy:
        Grid spacing in metres.
    z_levels:
        Depth-level centres in metres, positive downward, ascending
        (e.g. ``[5, 15, 30, ...]``).
    mask:
        Boolean ``(ny, nx)``; True over ocean.  Defaults to all-ocean.
    lat0:
        Reference latitude (degrees) for the Coriolis parameter.
    """

    nx: int
    ny: int
    dx: float
    dy: float
    z_levels: tuple[float, ...]
    mask: np.ndarray = field(default=None, repr=False)  # type: ignore[assignment]
    lat0: float = 36.7  # Monterey Bay

    def __post_init__(self):
        if self.nx < 4 or self.ny < 4:
            raise ValueError(f"grid must be at least 4x4, got {self.ny}x{self.nx}")
        if self.dx <= 0 or self.dy <= 0:
            raise ValueError("grid spacing must be positive")
        z = np.asarray(self.z_levels, dtype=float)
        if z.ndim != 1 or z.size == 0:
            raise ValueError("z_levels must be a non-empty 1-D sequence")
        if np.any(np.diff(z) <= 0) or np.any(z < 0):
            raise ValueError("z_levels must be non-negative and strictly ascending")
        object.__setattr__(self, "z_levels", tuple(float(v) for v in z))
        if self.mask is None:
            object.__setattr__(self, "mask", np.ones((self.ny, self.nx), dtype=bool))
        else:
            mask = np.asarray(self.mask, dtype=bool)
            if mask.shape != (self.ny, self.nx):
                raise ValueError(
                    f"mask shape {mask.shape} does not match grid ({self.ny}, {self.nx})"
                )
            object.__setattr__(self, "mask", mask)

    # -- geometry -------------------------------------------------------

    @property
    def nz(self) -> int:
        """Number of depth levels."""
        return len(self.z_levels)

    @property
    def shape2d(self) -> tuple[int, int]:
        """Shape of a horizontal field, ``(ny, nx)``."""
        return (self.ny, self.nx)

    @property
    def shape3d(self) -> tuple[int, int, int]:
        """Shape of a tracer field, ``(nz, ny, nx)``."""
        return (self.nz, self.ny, self.nx)

    @property
    def n_ocean(self) -> int:
        """Number of wet points in a horizontal field."""
        return int(np.count_nonzero(self.mask))

    @property
    def coriolis(self) -> float:
        """Coriolis parameter f = 2 Omega sin(lat0), in 1/s."""
        omega = 7.2921159e-5
        return 2.0 * omega * np.sin(np.deg2rad(self.lat0))

    def x_coords(self) -> np.ndarray:
        """Eastward coordinates of grid columns (m)."""
        return np.arange(self.nx) * self.dx

    def y_coords(self) -> np.ndarray:
        """Northward coordinates of grid rows (m)."""
        return np.arange(self.ny) * self.dy

    # -- indexing helpers ----------------------------------------------

    def level_index(self, depth: float) -> int:
        """Index of the depth level closest to ``depth`` metres."""
        z = np.asarray(self.z_levels)
        return int(np.argmin(np.abs(z - depth)))

    def nearest_point(self, x: float, y: float) -> tuple[int, int]:
        """Grid indices ``(j, i)`` of the wet point nearest to ``(x, y)`` m.

        Raises
        ------
        ValueError
            If the grid has no wet points.
        """
        if self.n_ocean == 0:
            raise ValueError("grid has no ocean points")
        j0 = int(np.clip(round(y / self.dy), 0, self.ny - 1))
        i0 = int(np.clip(round(x / self.dx), 0, self.nx - 1))
        if self.mask[j0, i0]:
            return j0, i0
        # Fall back to the nearest wet point by Euclidean grid distance.
        jj, ii = np.nonzero(self.mask)
        d2 = (jj - j0) ** 2 * (self.dy / self.dx) ** 2 + (ii - i0) ** 2
        k = int(np.argmin(d2))
        return int(jj[k]), int(ii[k])

    def apply_mask(self, fld: np.ndarray, fill: float = 0.0) -> np.ndarray:
        """Return a copy of ``fld`` with land points set to ``fill``.

        Works for 2-D ``(ny, nx)`` and 3-D ``(nz, ny, nx)`` fields.
        """
        fld = np.array(fld, dtype=float, copy=True)
        if fld.shape[-2:] != self.shape2d:
            raise ValueError(
                f"field shape {fld.shape} incompatible with grid {self.shape2d}"
            )
        fld[..., ~self.mask] = fill
        return fld


def demo_grid(nx: int = 24, ny: int = 20, nz: int = 4) -> OceanGrid:
    """A small closed-basin grid used by unit tests and doctests.

    The outermost ring of cells is land so the basin is closed; wind-driven
    runs are then stable without open-boundary machinery.
    """
    depths = tuple(np.linspace(5.0, 150.0, nz))
    mask = np.ones((ny, nx), dtype=bool)
    mask[0, :] = mask[-1, :] = False
    mask[:, 0] = mask[:, -1] = False
    return OceanGrid(nx=nx, ny=ny, dx=3000.0, dy=3000.0, z_levels=depths, mask=mask)
