"""Reduced-gravity shallow-water dynamics.

A 1.5-layer reduced-gravity model is the smallest nonlinear ocean model
that produces the mesoscale phenomenology ESSE feeds on: geostrophic
adjustment, wind-driven upwelling at a coast, instabilities and eddies.
The prognostic variables are the layer velocities ``u, v`` (m/s) and the
interface displacement ``eta`` (m) on a collocated grid; the active upper
layer has rest thickness ``h0`` and reduced gravity ``g'``.

Spatial discretization is second-order centred differences with Laplacian
eddy viscosity; time stepping is Heun (RK2).  All operators are fully
vectorized NumPy; a single step on the default 42x36 AOSN-II grid costs a
few tens of microseconds, which is what makes O(1000)-member ensembles
tractable on one machine.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.ocean.grid import OceanGrid
from repro.ocean.masking import LandFiller

RHO0 = 1025.0  # reference sea-water density, kg/m^3


def ddx(fld: np.ndarray, dx: float) -> np.ndarray:
    """Centred x-derivative with one-sided differences at the edges."""
    out = np.empty_like(fld)
    out[..., :, 1:-1] = (fld[..., :, 2:] - fld[..., :, :-2]) / (2.0 * dx)
    out[..., :, 0] = (fld[..., :, 1] - fld[..., :, 0]) / dx
    out[..., :, -1] = (fld[..., :, -1] - fld[..., :, -2]) / dx
    return out


def ddy(fld: np.ndarray, dy: float) -> np.ndarray:
    """Centred y-derivative with one-sided differences at the edges."""
    out = np.empty_like(fld)
    out[..., 1:-1, :] = (fld[..., 2:, :] - fld[..., :-2, :]) / (2.0 * dy)
    out[..., 0, :] = (fld[..., 1, :] - fld[..., 0, :]) / dy
    out[..., -1, :] = (fld[..., -1, :] - fld[..., -2, :]) / dy
    return out


def laplacian(fld: np.ndarray, dx: float, dy: float) -> np.ndarray:
    """Five-point Laplacian; zero-flux (Neumann) at the array edges."""
    padded = np.pad(fld, [(0, 0)] * (fld.ndim - 2) + [(1, 1), (1, 1)], mode="edge")
    core = padded[..., 1:-1, 1:-1]
    d2x = (padded[..., 1:-1, 2:] - 2.0 * core + padded[..., 1:-1, :-2]) / dx**2
    d2y = (padded[..., 2:, 1:-1] - 2.0 * core + padded[..., :-2, 1:-1]) / dy**2
    return d2x + d2y


@dataclass(frozen=True)
class ShallowWaterDynamics:
    """Tendency operator for the reduced-gravity layer.

    Parameters
    ----------
    grid:
        Ocean grid (mask defines the coastline; velocity is zero on land).
    h0:
        Rest thickness of the active layer (m).
    g_reduced:
        Reduced gravity g' = g * (delta rho / rho) (m/s^2).
    viscosity:
        Laplacian eddy viscosity (m^2/s).
    bottom_drag:
        Linear (Rayleigh) drag coefficient (1/s).
    eta_diffusivity:
        Interface-height diffusivity (m^2/s).  A collocated (A-) grid
        supports a 2-grid-point checkerboard mode in ``eta`` that the
        pressure gradient cannot see; this scale-selective smoothing damps
        it (the standard A-grid remedy) without affecting the mesoscale.
    """

    grid: OceanGrid
    h0: float = 150.0
    g_reduced: float = 0.03
    viscosity: float = 120.0
    bottom_drag: float = 2.0e-6
    eta_diffusivity: float = 150.0

    def __post_init__(self):
        if self.h0 <= 0:
            raise ValueError("layer thickness h0 must be positive")
        if self.g_reduced <= 0:
            raise ValueError("reduced gravity must be positive")
        if self.viscosity < 0 or self.bottom_drag < 0:
            raise ValueError("viscosity and drag must be non-negative")
        # Coastal land-fill: eta gets a zero-gradient (free-slip wall)
        # condition before gradient/diffusion stencils (see masking.py).
        object.__setattr__(self, "fill_land", LandFiller(self.grid.mask))
        # Open (wet-wet) cell faces, used by the finite-volume continuity
        # fluxes: a face is open only when both adjacent cells are ocean,
        # which makes the coastline an exact no-flux wall and the scheme
        # exactly volume-conserving.
        mask = self.grid.mask
        object.__setattr__(self, "_face_x", mask[:, :-1] & mask[:, 1:])
        object.__setattr__(self, "_face_y", mask[:-1, :] & mask[1:, :])

    def _continuity_tendency(
        self, h: np.ndarray, u: np.ndarray, v: np.ndarray, eta_filled: np.ndarray
    ) -> np.ndarray:
        """deta/dt from finite-volume mass fluxes plus conservative diffusion.

        Face transports use the mean of the two adjacent cells and vanish on
        coast faces, so the sum of ``deta/dt`` over wet cells is exactly
        zero: total layer volume is conserved to round-off (the paper's PE
        model shares this property; it matters for multi-week ESSE runs).
        """
        dx, dy = self.grid.dx, self.grid.dy
        flux_x = 0.5 * (
            h[..., :, :-1] * u[..., :, :-1] + h[..., :, 1:] * u[..., :, 1:]
        )
        flux_x = np.where(self._face_x, flux_x, 0.0)
        flux_y = 0.5 * (
            h[..., :-1, :] * v[..., :-1, :] + h[..., 1:, :] * v[..., 1:, :]
        )
        flux_y = np.where(self._face_y, flux_y, 0.0)
        # Conservative interface-height diffusion on the same faces.
        if self.eta_diffusivity > 0.0:
            flux_x = flux_x - np.where(
                self._face_x,
                self.eta_diffusivity
                * (eta_filled[..., :, 1:] - eta_filled[..., :, :-1])
                / dx,
                0.0,
            )
            flux_y = flux_y - np.where(
                self._face_y,
                self.eta_diffusivity
                * (eta_filled[..., 1:, :] - eta_filled[..., :-1, :])
                / dy,
                0.0,
            )
        deta = np.zeros_like(h)
        deta[..., :, :-1] -= flux_x / dx
        deta[..., :, 1:] += flux_x / dx
        deta[..., :-1, :] -= flux_y / dy
        deta[..., 1:, :] += flux_y / dy
        return deta

    @property
    def gravity_wave_speed(self) -> float:
        """Internal gravity-wave speed sqrt(g' h0), m/s."""
        return float(np.sqrt(self.g_reduced * self.h0))

    def max_stable_dt(self, safety: float = 0.5) -> float:
        """CFL-limited time step (s) for the gravity-wave speed."""
        dmin = min(self.grid.dx, self.grid.dy)
        return safety * dmin / self.gravity_wave_speed

    def step_dynamics(
        self,
        u: np.ndarray,
        v: np.ndarray,
        eta: np.ndarray,
        tau_x: np.ndarray,
        tau_y: np.ndarray,
        dt: float,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Advance (u, v, eta) one step of ``dt`` seconds.

        All fields may carry arbitrary leading batch dimensions ahead of
        the trailing ``(ny, nx)`` axes -- a whole ``(N, ny, nx)`` ensemble
        steps in one call, and every operator (stencils, masks, sponge)
        broadcasts over the batch axis bit-identically to stepping the
        members one at a time (the vectorized engine relies on this).

        The scheme is the standard stable combination for shallow-water
        dynamics on a collocated grid:

        - *forward-backward* (Mesinger) gravity-wave coupling -- eta is
          stepped first, the pressure gradient then uses the *new* eta,
          which is neutral for Courant numbers below 1 (here ~0.3);
        - *exact semi-implicit rotation* for the Coriolis terms, which is
          unconditionally stable and energy-neutral;
        - forward (explicit) advection, viscosity, drag and wind, whose
          weak explicit instability is dominated by the Laplacian damping.

        Returns
        -------
        u, v, eta, deta_dt:
            Updated fields plus the interface tendency actually applied
            (m/s), which drives thermocline heave in the tracers.
        """
        grid = self.grid
        dx, dy = grid.dx, grid.dy
        mask = grid.mask
        eta_filled = self.fill_land(eta)
        h = np.maximum(self.h0 + eta, 0.1 * self.h0)  # guard against outcrop

        # 1. continuity, forward step: exact finite-volume fluxes
        deta_dt = self._continuity_tendency(h, u, v, eta_filled)
        deta_dt = np.where(mask, deta_dt, 0.0)
        eta_new = eta + dt * deta_dt

        # 2. momentum: explicit advection/viscosity/drag/wind, backward
        #    pressure gradient from the (land-filled) new interface height
        eta_new_filled = self.fill_land(eta_new)
        du = (
            -u * ddx(u, dx)
            - v * ddy(u, dy)
            - self.g_reduced * ddx(eta_new_filled, dx)
            - self.bottom_drag * u
            + self.viscosity * laplacian(u, dx, dy)
            + tau_x / (RHO0 * h)
        )
        dv = (
            -u * ddx(v, dx)
            - v * ddy(v, dy)
            - self.g_reduced * ddy(eta_new_filled, dy)
            - self.bottom_drag * v
            + self.viscosity * laplacian(v, dx, dy)
            + tau_y / (RHO0 * h)
        )
        u_star = u + dt * np.where(mask, du, 0.0)
        v_star = v + dt * np.where(mask, dv, 0.0)

        # 3. Coriolis: exact inertial rotation of (u*, v*)
        angle = grid.coriolis * dt
        cos_a, sin_a = np.cos(angle), np.sin(angle)
        u_new = cos_a * u_star + sin_a * v_star
        v_new = -sin_a * u_star + cos_a * v_star

        return u_new, v_new, eta_new, deta_dt

    def sponge_factors(self, dt: float, width: int = 5, tau_edge: float = 10800.0) -> np.ndarray:
        """Per-step damping factors of a smooth open-boundary sponge.

        A cosine-shaped relaxation toward rest over ``width`` cells at the
        west/south/north rims (the east rim is coast).  The relaxation time
        grows from ``tau_edge`` at the outermost cell to infinity at the
        sponge's inner edge; abrupt damping would itself create reflections
        and destabilize the pressure gradient, so the profile must be smooth.
        """
        ny, nx = self.grid.shape2d
        strength = np.zeros((ny, nx))

        ramp = 0.5 * (1.0 + np.cos(np.pi * np.arange(width) / width))
        for k in range(min(width, nx)):
            strength[:, k] = np.maximum(strength[:, k], ramp[k])
        for k in range(min(width, ny)):
            strength[k, :] = np.maximum(strength[k, :], ramp[k])
            strength[ny - 1 - k, :] = np.maximum(strength[ny - 1 - k, :], ramp[k])
        return np.exp(-dt * strength / tau_edge)

    def enforce_boundaries(
        self,
        u: np.ndarray,
        v: np.ndarray,
        eta: np.ndarray,
        sponge: np.ndarray | None = None,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Zero fields on land and apply the open-boundary sponge.

        ``sponge`` is the precomputed factor field from
        :meth:`sponge_factors`; passing None skips the sponge (used by
        process-level tests).
        """
        mask = self.grid.mask
        u = np.where(mask, u, 0.0)
        v = np.where(mask, v, 0.0)
        eta = np.where(mask, eta, 0.0)
        if sponge is not None:
            u = u * sponge
            v = v * sponge
            eta = eta * sponge
        return u, v, eta
