"""Stochastic model-error (Wiener) forcing.

Paper Sec 3.1: the ocean model is deterministic-stochastic, ``dx = M(x,t)
dt + d(eta)`` with ``eta ~ N(0, Q(t))`` white in time after state
augmentation.  Discretely, each step adds ``sqrt(dt) * q * w`` where ``w``
is a spatially correlated unit-variance field: white in time, smooth in
space, the standard Euler-Maruyama treatment of the Wiener increment.

Each ensemble member owns an independent generator keyed by its
perturbation index (see :mod:`repro.util.rng`), so members are reproducible
regardless of scheduling order.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.ocean.grid import OceanGrid
from repro.util.randomfields import GaussianRandomField2D
from repro.util.rng import SeedSequenceStream


def _default_forcing_rng() -> np.random.Generator:
    """Deterministic fallback stream for forcing built without an rng."""
    return SeedSequenceStream(0).rng("ocean", "stochastic-forcing")


@dataclass
class StochasticForcing:
    """Per-member stochastic forcing amplitudes.

    Parameters
    ----------
    grid:
        Ocean grid.
    momentum_amplitude:
        Std-dev of the momentum noise in (m/s^2) * sqrt(s); forces u and v.
    eta_amplitude:
        Std-dev of interface-height noise in m * sqrt(s)^-1... scaled by
        sqrt(dt) at each step.
    tracer_amplitude:
        Std-dev of temperature noise (deg C / sqrt(s)); salinity noise is
        scaled to 0.1x in psu.
    length_scale_cells:
        Spatial correlation length of the noise in grid cells.
    rng:
        Member-specific generator (key it by perturbation index via
        :mod:`repro.util.rng`); defaults to a deterministic stream.
    """

    grid: OceanGrid
    momentum_amplitude: float = 2.0e-7
    eta_amplitude: float = 2.0e-5
    tracer_amplitude: float = 2.0e-6
    length_scale_cells: float = 4.0
    rng: np.random.Generator = field(default_factory=_default_forcing_rng)

    def __post_init__(self):
        for name in ("momentum_amplitude", "eta_amplitude", "tracer_amplitude"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be >= 0")
        self._field = GaussianRandomField2D(
            self.grid.shape2d, self.length_scale_cells, rng=self.rng
        )

    def is_active(self) -> bool:
        """True when any noise amplitude is non-zero."""
        return (
            self.momentum_amplitude > 0
            or self.eta_amplitude > 0
            or self.tracer_amplitude > 0
        )

    def momentum_increment(self, dt: float) -> tuple[np.ndarray, np.ndarray]:
        """Wiener increments for (u, v) over a step of ``dt`` seconds."""
        scale = self.momentum_amplitude * np.sqrt(dt) * dt
        du = scale * self._field.sample()
        dv = scale * self._field.sample()
        return self.grid.apply_mask(du), self.grid.apply_mask(dv)

    def eta_increment(self, dt: float) -> np.ndarray:
        """Wiener increment for the interface height over ``dt`` seconds."""
        incr = self.eta_amplitude * np.sqrt(dt) * self._field.sample()
        return self.grid.apply_mask(incr)

    def tracer_increments(self, dt: float) -> tuple[np.ndarray, np.ndarray]:
        """Wiener increments for (T, S), shape ``(nz, ny, nx)``.

        Noise decays with depth (mixed-layer/thermocline errors dominate)
        and salinity errors are taken as one tenth of temperature errors in
        their respective units, a typical hydrographic error ratio.
        """
        nz = self.grid.nz
        z = np.asarray(self.grid.z_levels)
        depth_decay = np.exp(-z / max(z[-1] * 0.5, 1.0))[:, None, None]
        scale = self.tracer_amplitude * np.sqrt(dt)
        d_temp = scale * self._field.sample_many(nz) * depth_decay
        d_salt = 0.1 * scale * self._field.sample_many(nz) * depth_decay
        return self.grid.apply_mask(d_temp), self.grid.apply_mask(d_salt)

    @classmethod
    def quiet(cls, grid: OceanGrid) -> "StochasticForcing":
        """A zero-amplitude forcing (deterministic central forecast)."""
        return cls(
            grid,
            momentum_amplitude=0.0,
            eta_amplitude=0.0,
            tracer_amplitude=0.0,
        )


@dataclass
class BatchedStochasticForcing:
    """Vectorized Wiener forcing for a whole ensemble batch.

    The increments it produces for member ``i`` are *bit-identical* to a
    :class:`StochasticForcing` built with ``rngs[i]``: white noise is
    drawn per member, in the same per-member order as the serial path
    (u, v for momentum; one field for eta; nz temperature then nz
    salinity fields for tracers), then the Gaussian spectral filter runs
    once over the stacked batch
    (:meth:`~repro.util.randomfields.GaussianRandomField2D.filter_white`
    is bit-identical with or without leading batch axes).  Only the FFT
    and the elementwise scaling are batched, so the batched ensemble
    engine reproduces the serial trajectories exactly.

    Parameters
    ----------
    grid:
        Ocean grid.
    rngs:
        One generator per ensemble member, in batch order (key them by
        perturbation index via :func:`repro.util.rng.member_rng`).
    momentum_amplitude, eta_amplitude, tracer_amplitude, length_scale_cells:
        As for :class:`StochasticForcing` (same defaults).
    """

    grid: OceanGrid
    rngs: list
    momentum_amplitude: float = 2.0e-7
    eta_amplitude: float = 2.0e-5
    tracer_amplitude: float = 2.0e-6
    length_scale_cells: float = 4.0

    def __post_init__(self):
        if not self.rngs:
            raise ValueError("need at least one member generator")
        for name in ("momentum_amplitude", "eta_amplitude", "tracer_amplitude"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be >= 0")
        # The field is used only as a spectral filter (filter_white); its
        # internal generator is never drawn from.
        self._field = GaussianRandomField2D(
            self.grid.shape2d, self.length_scale_cells
        )

    @property
    def count(self) -> int:
        """Number of ensemble members in the batch."""
        return len(self.rngs)

    def is_active(self) -> bool:
        """True when any noise amplitude is non-zero."""
        return (
            self.momentum_amplitude > 0
            or self.eta_amplitude > 0
            or self.tracer_amplitude > 0
        )

    def momentum_increment(self, dt: float) -> tuple[np.ndarray, np.ndarray]:
        """Wiener increments for (u, v), each of shape ``(N, ny, nx)``."""
        shape = self.grid.shape2d
        du_white = np.empty((self.count, *shape))
        dv_white = np.empty((self.count, *shape))
        # Per-member draw order matches StochasticForcing: u then v.
        for i, rng in enumerate(self.rngs):
            du_white[i] = rng.standard_normal(shape)
            dv_white[i] = rng.standard_normal(shape)
        scale = self.momentum_amplitude * np.sqrt(dt) * dt
        du = scale * self._field.filter_white(du_white)
        dv = scale * self._field.filter_white(dv_white)
        return self.grid.apply_mask(du), self.grid.apply_mask(dv)

    def eta_increment(self, dt: float) -> np.ndarray:
        """Wiener increment for the interface height, shape ``(N, ny, nx)``."""
        shape = self.grid.shape2d
        white = np.empty((self.count, *shape))
        for i, rng in enumerate(self.rngs):
            white[i] = rng.standard_normal(shape)
        incr = self.eta_amplitude * np.sqrt(dt) * self._field.filter_white(white)
        return self.grid.apply_mask(incr)

    def tracer_increments(self, dt: float) -> tuple[np.ndarray, np.ndarray]:
        """Wiener increments for (T, S), shape ``(N, nz, ny, nx)``."""
        nz = self.grid.nz
        shape = self.grid.shape2d
        z = np.asarray(self.grid.z_levels)
        depth_decay = np.exp(-z / max(z[-1] * 0.5, 1.0))[:, None, None]
        temp_white = np.empty((self.count, nz, *shape))
        salt_white = np.empty((self.count, nz, *shape))
        # Per member: the nz temperature fields, then the nz salinity
        # fields -- the same generator consumption as two sample_many
        # calls on the serial path.
        for i, rng in enumerate(self.rngs):
            temp_white[i] = rng.standard_normal((nz, *shape))
            salt_white[i] = rng.standard_normal((nz, *shape))
        scale = self.tracer_amplitude * np.sqrt(dt)
        d_temp = scale * self._field.filter_white(temp_white) * depth_decay
        d_salt = 0.1 * scale * self._field.filter_white(salt_white) * depth_decay
        return self.grid.apply_mask(d_temp), self.grid.apply_mask(d_salt)
