"""The PE-model stand-in: shallow-water dynamics + tracer stack.

:class:`PEModel` plays the role of HOPS/`pemodel` in the paper's workflow:
given an initial :class:`ModelState` it integrates the deterministic-
stochastic ocean equations forward.  One model run *is* one many-task
singleton; the ESSE layer never looks inside.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from repro.core.state import FieldLayout, FieldSpec
from repro.ocean.bathymetry import monterey_grid
from repro.ocean.dynamics import ShallowWaterDynamics
from repro.ocean.forcing import AtmosphericForcing
from repro.ocean.grid import OceanGrid
from repro.ocean.stochastic import StochasticForcing
from repro.ocean.tracers import TracerDynamics, climatological_profile


@dataclass
class ModelState:
    """Prognostic model state at one instant.

    Attributes
    ----------
    u, v:
        Layer velocity (m/s), shape ``(ny, nx)``.
    eta:
        Interface displacement (m), shape ``(ny, nx)``.
    temp, salt:
        Tracer stacks (deg C, psu), shape ``(nz, ny, nx)``.
    time:
        Model time in seconds since the experiment origin.
    """

    u: np.ndarray
    v: np.ndarray
    eta: np.ndarray
    temp: np.ndarray
    salt: np.ndarray
    time: float = 0.0

    def copy(self) -> "ModelState":
        """Deep copy (fields are copied, time preserved)."""
        return ModelState(
            u=self.u.copy(),
            v=self.v.copy(),
            eta=self.eta.copy(),
            temp=self.temp.copy(),
            salt=self.salt.copy(),
            time=self.time,
        )

    def validate(self, grid: OceanGrid) -> None:
        """Raise ValueError when any field has the wrong shape or NaNs."""
        expected = {
            "u": grid.shape2d,
            "v": grid.shape2d,
            "eta": grid.shape2d,
            "temp": grid.shape3d,
            "salt": grid.shape3d,
        }
        for name, shape in expected.items():
            arr = getattr(self, name)
            if arr.shape != shape:
                raise ValueError(f"{name}: expected shape {shape}, got {arr.shape}")
            if not np.all(np.isfinite(arr[..., grid.mask])):
                raise ValueError(f"{name}: non-finite values over ocean points")


@dataclass
class EnsembleState:
    """A whole ensemble's prognostic state, batched along a leading axis.

    The batched twin of :class:`ModelState`: member ``i`` of the batch is
    the state ``(u[i], v[i], eta[i], temp[i], salt[i])``.  All members
    share one model time (ESSE ensembles are synchronous by
    construction: every member forecasts the same window).

    Attributes
    ----------
    u, v, eta:
        Batched 2-D fields, shape ``(N, ny, nx)``.
    temp, salt:
        Batched tracer stacks, shape ``(N, nz, ny, nx)``.
    time:
        Shared model time in seconds.
    """

    u: np.ndarray
    v: np.ndarray
    eta: np.ndarray
    temp: np.ndarray
    salt: np.ndarray
    time: float = 0.0

    @property
    def count(self) -> int:
        """Number of members in the batch."""
        return int(self.u.shape[0])

    @classmethod
    def from_states(cls, states: list[ModelState]) -> "EnsembleState":
        """Stack per-member states (which must share one time) into a batch."""
        if not states:
            raise ValueError("need at least one member state")
        times = {float(s.time) for s in states}
        if len(times) > 1:
            raise ValueError(f"members disagree on model time: {sorted(times)}")
        return cls(
            u=np.stack([s.u for s in states]),
            v=np.stack([s.v for s in states]),
            eta=np.stack([s.eta for s in states]),
            temp=np.stack([s.temp for s in states]),
            salt=np.stack([s.salt for s in states]),
            time=states[0].time,
        )

    def member(self, position: int) -> ModelState:
        """Extract one member as a standalone :class:`ModelState` (copies)."""
        return ModelState(
            u=self.u[position].copy(),
            v=self.v[position].copy(),
            eta=self.eta[position].copy(),
            temp=self.temp[position].copy(),
            salt=self.salt[position].copy(),
            time=self.time,
        )

    def copy(self) -> "EnsembleState":
        """Deep copy (fields are copied, time preserved)."""
        return EnsembleState(
            u=self.u.copy(),
            v=self.v.copy(),
            eta=self.eta.copy(),
            temp=self.temp.copy(),
            salt=self.salt.copy(),
            time=self.time,
        )


def state_layout(grid: OceanGrid) -> FieldLayout:
    """The ESSE packing of a :class:`ModelState`.

    Normalization scales are typical mesoscale error magnitudes (0.1 m/s
    velocity, 2 m interface, 0.5 deg C, 0.05 psu) so the multivariate
    covariance is non-dimensional, as required before the ESSE SVD.
    """
    return FieldLayout(
        [
            FieldSpec("u", grid.shape2d, scale=0.1),
            FieldSpec("v", grid.shape2d, scale=0.1),
            FieldSpec("eta", grid.shape2d, scale=2.0),
            FieldSpec("temp", grid.shape3d, scale=0.5),
            FieldSpec("salt", grid.shape3d, scale=0.05),
        ]
    )


@dataclass(frozen=True)
class ModelConfig:
    """Numerical configuration of a :class:`PEModel` run."""

    dt: float = 400.0
    viscosity: float = 120.0
    diffusivity: float = 60.0
    h0: float = 150.0
    g_reduced: float = 0.03
    check_interval: int = 50  # steps between finite-value checks

    def __post_init__(self):
        if self.dt <= 0:
            raise ValueError("dt must be positive")
        if self.check_interval < 1:
            raise ValueError("check_interval must be >= 1")


class PEModel:
    """Deterministic-stochastic ocean model over one grid.

    Parameters
    ----------
    grid:
        Ocean grid; defaults to the synthetic Monterey domain.
    config:
        Numerical parameters.
    forcing:
        Atmospheric forcing; defaults to the AOSN-II-like wind/heat product.
    noise:
        Stochastic model-error forcing; defaults to quiet (deterministic).
        Each ensemble member passes its own seeded forcing.
    """

    def __init__(
        self,
        grid: OceanGrid | None = None,
        config: ModelConfig | None = None,
        forcing: AtmosphericForcing | None = None,
        noise: StochasticForcing | None = None,
    ):
        self.grid = grid if grid is not None else monterey_grid()
        self.config = config if config is not None else ModelConfig()
        self.forcing = (
            forcing if forcing is not None else AtmosphericForcing(self.grid)
        )
        self.noise = noise if noise is not None else StochasticForcing.quiet(self.grid)
        self.dynamics = ShallowWaterDynamics(
            self.grid,
            h0=self.config.h0,
            g_reduced=self.config.g_reduced,
            viscosity=self.config.viscosity,
        )
        self.tracers = TracerDynamics(self.grid, diffusivity=self.config.diffusivity)
        self._sponge = self.dynamics.sponge_factors(self.config.dt)
        max_dt = self.dynamics.max_stable_dt(safety=0.9)
        if self.config.dt > max_dt:
            raise ValueError(
                f"dt={self.config.dt} s exceeds the CFL limit {max_dt:.1f} s"
            )
        self.layout = state_layout(self.grid)

    # -- state construction ----------------------------------------------

    def rest_state(self) -> ModelState:
        """State at rest with climatological stratification."""
        grid = self.grid
        t_prof, s_prof = climatological_profile(np.asarray(grid.z_levels))
        temp = grid.apply_mask(
            np.broadcast_to(t_prof[:, None, None], grid.shape3d).copy()
        )
        salt = grid.apply_mask(
            np.broadcast_to(s_prof[:, None, None], grid.shape3d).copy()
        )
        zeros = np.zeros(grid.shape2d)
        return ModelState(
            u=zeros.copy(), v=zeros.copy(), eta=zeros.copy(), temp=temp, salt=salt
        )

    def spun_up_state(self, days: float = 5.0) -> ModelState:
        """Rest state integrated for ``days`` to develop upwelling structure."""
        state = self.rest_state()
        return self.run(state, duration=days * 86400.0)

    # -- vector interface (used by ESSE) ----------------------------------

    def to_vector(self, state: ModelState) -> np.ndarray:
        """Pack a state into the augmented ESSE vector."""
        return self.layout.pack(
            {
                "u": state.u,
                "v": state.v,
                "eta": state.eta,
                "temp": state.temp,
                "salt": state.salt,
            }
        )

    def from_vector(self, vector: np.ndarray, time: float = 0.0) -> ModelState:
        """Unpack an ESSE vector into a (masked) model state."""
        fields = self.layout.unpack(vector)
        state = ModelState(time=time, **fields)
        state.u = self.grid.apply_mask(state.u)
        state.v = self.grid.apply_mask(state.v)
        state.eta = self.grid.apply_mask(state.eta)
        state.temp = self.grid.apply_mask(state.temp)
        state.salt = self.grid.apply_mask(state.salt)
        return state

    def ensemble_to_matrix(self, ensemble: EnsembleState) -> np.ndarray:
        """Pack a batch into an ``(state_dim, N)`` ESSE column matrix.

        Column ``j`` is bit-identical to ``to_vector(ensemble.member(j))``.
        """
        return self.layout.pack_many(  # shape: (state_dim, n_members) # dtype: float64
            {
                "u": ensemble.u,
                "v": ensemble.v,
                "eta": ensemble.eta,
                "temp": ensemble.temp,
                "salt": ensemble.salt,
            }
        )

    def ensemble_from_matrix(
        self, matrix: np.ndarray, time: float = 0.0
    ) -> EnsembleState:
        """Unpack an ``(state_dim, N)`` column matrix into a (masked) batch."""
        matrix = np.asarray(matrix)  # shape: (state_dim, n_members)
        fields = self.layout.unpack_many(matrix)
        ens = EnsembleState(time=time, **fields)
        ens.u = self.grid.apply_mask(ens.u)
        ens.v = self.grid.apply_mask(ens.v)
        ens.eta = self.grid.apply_mask(ens.eta)
        ens.temp = self.grid.apply_mask(ens.temp)
        ens.salt = self.grid.apply_mask(ens.salt)
        return ens

    # -- time stepping -----------------------------------------------------

    def step(self, state: ModelState) -> ModelState:
        """One forward-backward step of length ``config.dt`` + Wiener forcing.

        Dynamics use the stable forward-backward/semi-implicit scheme (see
        :meth:`ShallowWaterDynamics.step_dynamics`); tracers use forward
        Euler, whose explicit advection is stabilized by the lateral
        diffusivity at the advective Courant numbers this model runs at.
        """
        dt = self.config.dt
        tau_x, tau_y = self.forcing.wind_stress(state.time)
        heat = self.forcing.heat_flux(state.time)

        u, v, eta, deta_dt = self.dynamics.step_dynamics(
            state.u, state.v, state.eta, tau_x, tau_y, dt
        )
        dT, dS = self.tracers.tendencies(
            state.temp, state.salt, state.u, state.v, deta_dt, heat
        )
        temp = state.temp + dt * dT
        salt = state.salt + dt * dS

        if self.noise.is_active():
            du_n, dv_n = self.noise.momentum_increment(dt)
            u += du_n
            v += dv_n
            eta += self.noise.eta_increment(dt)
            dT_n, dS_n = self.noise.tracer_increments(dt)
            temp += dT_n
            salt += dS_n

        u, v, eta = self.dynamics.enforce_boundaries(u, v, eta, sponge=self._sponge)
        return ModelState(u=u, v=v, eta=eta, temp=temp, salt=salt, time=state.time + dt)

    def run(
        self,
        state: ModelState,
        duration: float,
        callback=None,
    ) -> ModelState:
        """Integrate for ``duration`` seconds (rounded up to whole steps).

        Parameters
        ----------
        state:
            Initial condition (not modified).
        duration:
            Integration length in seconds; must be >= 0.
        callback:
            Optional ``callback(step_index, state)`` invoked after each step
            (used for trajectory capture and observation sampling).

        Raises
        ------
        FloatingPointError
            If the integration blows up (non-finite fields); ESSE treats
            this as a failed ensemble member, which the workflow tolerates.
        """
        if duration < 0:
            raise ValueError("duration must be >= 0")
        n_steps = int(np.ceil(duration / self.config.dt))
        current = state.copy()
        # Blow-ups are detected below and reported as FloatingPointError
        # (a tolerated member failure in ESSE); the transient inf/nan
        # arithmetic on the way there is expected, not a warning.
        with np.errstate(over="ignore", invalid="ignore"):
            return self._run_steps(current, n_steps, callback)

    def _run_steps(self, current: ModelState, n_steps: int, callback) -> ModelState:
        for k in range(n_steps):
            current = self.step(current)
            if (k + 1) % self.config.check_interval == 0 or k == n_steps - 1:
                wet = self.grid.mask
                if not (
                    np.all(np.isfinite(current.u[wet]))
                    and np.all(np.isfinite(current.temp[..., wet]))
                ):
                    raise FloatingPointError(
                        f"model blow-up at t={current.time:.0f} s (step {k + 1})"
                    )
            if callback is not None:
                callback(k, current)
        return current

    # -- batched (vectorized) time stepping --------------------------------

    def step_ensemble(self, ensemble: EnsembleState, noise=None) -> EnsembleState:
        """One forward-backward step of a whole ensemble batch.

        The same operator sequence as :meth:`step` applied to batched
        ``(N, ...)`` fields: every stencil, mask and sponge broadcasts
        over the member axis, so member ``i`` of the result is
        bit-identical to stepping ``ensemble.member(i)`` serially with
        the matching per-member forcing.

        Parameters
        ----------
        ensemble:
            The batch to advance (not modified).
        noise:
            Optional
            :class:`~repro.ocean.stochastic.BatchedStochasticForcing`
            whose member count matches the batch; None steps the
            deterministic dynamics only (the model's own per-member
            ``self.noise`` is *not* used here -- batched runs always pass
            their forcing explicitly).
        """
        dt = self.config.dt
        tau_x, tau_y = self.forcing.wind_stress(ensemble.time)
        heat = self.forcing.heat_flux(ensemble.time)

        u, v, eta, deta_dt = self.dynamics.step_dynamics(
            ensemble.u, ensemble.v, ensemble.eta, tau_x, tau_y, dt
        )
        dT, dS = self.tracers.tendencies(
            ensemble.temp, ensemble.salt, ensemble.u, ensemble.v, deta_dt, heat
        )
        temp = ensemble.temp + dt * dT  # shape: (n_members, ny, nx)
        salt = ensemble.salt + dt * dS  # shape: (n_members, ny, nx)

        if noise is not None and noise.is_active():
            if noise.count != ensemble.count:
                raise ValueError(
                    f"forcing batch size {noise.count} != ensemble "
                    f"{ensemble.count}"
                )
            du_n, dv_n = noise.momentum_increment(dt)
            u += du_n
            v += dv_n
            eta += noise.eta_increment(dt)
            dT_n, dS_n = noise.tracer_increments(dt)
            temp += dT_n
            salt += dS_n

        u, v, eta = self.dynamics.enforce_boundaries(u, v, eta, sponge=self._sponge)
        return EnsembleState(
            u=u, v=v, eta=eta, temp=temp, salt=salt, time=ensemble.time + dt
        )

    def run_ensemble(
        self,
        ensemble: EnsembleState,
        duration: float,
        noise=None,
        callback=None,
    ) -> tuple[EnsembleState, dict[int, str]]:
        """Integrate a whole batch for ``duration`` seconds.

        The batched twin of :meth:`run` with per-member failure
        isolation: at every ``check_interval`` a per-member finiteness
        check runs over the wet points, and a member that blows up is
        recorded (with the same error string :meth:`run` would raise for
        it) and zeroed out -- the surviving members continue unperturbed,
        because no operator mixes members across the batch axis.

        Parameters
        ----------
        ensemble:
            Initial batch (not modified).
        duration:
            Integration length in seconds; must be >= 0.
        noise:
            Optional batched stochastic forcing (see :meth:`step_ensemble`).
        callback:
            Optional ``callback(step_index, ensemble)`` after each step.

        Returns
        -------
        (final, failed):
            The final batch and a mapping of batch *position* -> error
            message for members that blew up (their slices in ``final``
            are zeroed and meaningless).
        """
        if duration < 0:
            raise ValueError("duration must be >= 0")
        n_steps = int(np.ceil(duration / self.config.dt))
        current = ensemble.copy()
        failed: dict[int, str] = {}
        wet = self.grid.mask
        # As in run(): transient inf/nan arithmetic on the way to a
        # detected blow-up is expected, not a warning.
        with np.errstate(over="ignore", invalid="ignore"):
            for k in range(n_steps):
                current = self.step_ensemble(current, noise=noise)
                if (k + 1) % self.config.check_interval == 0 or k == n_steps - 1:
                    finite = np.isfinite(current.u[:, wet]).all(axis=1) & np.isfinite(
                        current.temp[:, :, wet]
                    ).all(axis=(1, 2))
                    for pos in np.flatnonzero(~finite):
                        pos = int(pos)
                        if pos in failed:
                            continue
                        failed[pos] = (
                            "FloatingPointError: model blow-up at "
                            f"t={current.time:.0f} s (step {k + 1})"
                        )
                        # Zero the lost member so its garbage cannot slow
                        # the remaining arithmetic; survivors are
                        # untouched (no cross-member operator exists).
                        current.u[pos] = 0.0
                        current.v[pos] = 0.0
                        current.eta[pos] = 0.0
                        current.temp[pos] = 0.0
                        current.salt[pos] = 0.0
                if callback is not None:
                    callback(k, current)
        return current, failed

    def with_noise(self, noise: StochasticForcing) -> "PEModel":
        """A clone of this model using the given stochastic forcing."""
        return PEModel(
            grid=self.grid, config=self.config, forcing=self.forcing, noise=noise
        )
