"""A lightweight biological tracer: one-way coupled phytoplankton.

The paper's title is *multidisciplinary* ocean science, and its
introduction lists "carbon and biogeochemical cycles; ecosystem dynamics"
among the DA applications; the covariance dimension explicitly counts
"biochemical/physical tracer variables" (Sec 4.1).  This module supplies
the smallest defensible representative: a phytoplankton concentration
``P`` (mg chl / m^3) driven one-way by the physical trajectory --

    dP/dt = mu(light, nutrient) P - m P^2 + advection + diffusion,

where light decays with depth and the nutrient proxy is upwelling: uplift
of the interface (eta < 0) imports nutrients, so the model reproduces the
classic Monterey pattern of coastal-upwelling-fed blooms.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.ocean.dynamics import ddx, ddy, laplacian
from repro.ocean.grid import OceanGrid
from repro.ocean.masking import LandFiller
from repro.ocean.model import ModelState, PEModel


@dataclass(frozen=True)
class BioParameters:
    """Phytoplankton model parameters.

    Parameters
    ----------
    max_growth_per_day:
        Light/nutrient-saturated growth rate (1/day).
    mortality_per_day:
        Quadratic loss coefficient (1/day per mg chl m^-3).
    light_efolding_depth:
        Euphotic-depth scale (m).
    nutrient_upwelling_gain:
        Nutrient-limitation relief per metre of interface uplift.
    diffusivity:
        Lateral eddy diffusivity (m^2/s).
    background:
        Seed concentration (mg chl / m^3).
    """

    max_growth_per_day: float = 0.8
    mortality_per_day: float = 0.15
    light_efolding_depth: float = 25.0
    nutrient_upwelling_gain: float = 0.8
    diffusivity: float = 60.0
    background: float = 0.2

    def __post_init__(self):
        if self.max_growth_per_day <= 0 or self.mortality_per_day <= 0:
            raise ValueError("growth and mortality rates must be positive")
        if self.light_efolding_depth <= 0:
            raise ValueError("light_efolding_depth must be positive")
        if self.background <= 0:
            raise ValueError("background concentration must be positive")


class PhytoplanktonModel:
    """Evolves the phytoplankton stack along a physical model trajectory.

    The coupling is one-way (physics -> biology), matching how the paper's
    interdisciplinary runs feed ocean fields to downstream models; the
    tracer rides the same grid and velocity structure as temperature.

    Parameters
    ----------
    physics:
        The physical model supplying grid, velocity structure and dt.
    params:
        Biological parameters.
    """

    def __init__(self, physics: PEModel, params: BioParameters | None = None):
        self.physics = physics
        self.grid: OceanGrid = physics.grid
        self.params = params if params is not None else BioParameters()
        z = np.asarray(self.grid.z_levels)
        self._light = np.exp(-z / self.params.light_efolding_depth)[:, None, None]
        self._vel_structure = physics.tracers._vel_structure
        self._fill = LandFiller(self.grid.mask)

    def initial_field(self) -> np.ndarray:
        """Uniform background concentration over the euphotic zone."""
        field = self.params.background * np.broadcast_to(
            self._light, self.grid.shape3d
        ).copy()
        return self.grid.apply_mask(field, fill=0.0)

    def step(
        self,
        phyto: np.ndarray,
        state: ModelState,
        deta_dt: np.ndarray | None = None,
    ) -> np.ndarray:
        """One forward-Euler step of length ``physics.config.dt``.

        Parameters
        ----------
        phyto:
            Current concentration, shape ``(nz, ny, nx)``.
        state:
            Physical state at the same instant (velocity and eta).
        deta_dt:
            Optional interface tendency (m/s); if omitted the nutrient
            proxy uses the standing displacement ``-eta`` alone.
        """
        p = self.params
        grid = self.grid
        dt = self.physics.config.dt
        dx, dy = grid.dx, grid.dy

        filled = self._fill(phyto)
        u3 = state.u[None, :, :] * self._vel_structure
        v3 = state.v[None, :, :] * self._vel_structure
        adv = -u3 * ddx(filled, dx) - v3 * ddy(filled, dy)
        diff = p.diffusivity * laplacian(filled, dx, dy)

        # nutrient proxy: standing uplift plus (optionally) active upwelling
        uplift = np.clip(-state.eta, 0.0, None)
        if deta_dt is not None:
            uplift = uplift + np.clip(-deta_dt, 0.0, None) * 3600.0
        nutrient = np.clip(
            0.2 + p.nutrient_upwelling_gain * uplift, 0.0, 1.0
        )[None, :, :]
        growth_rate = (
            p.max_growth_per_day / 86400.0 * self._light * nutrient
        )
        mortality = p.mortality_per_day / 86400.0 * phyto
        reaction = (growth_rate - mortality) * phyto

        out = phyto + dt * (adv + diff + reaction)
        out = np.clip(out, 0.0, None)  # concentrations stay non-negative
        return grid.apply_mask(out, fill=0.0)

    def run_along(
        self,
        initial_state: ModelState,
        duration: float,
        phyto0: np.ndarray | None = None,
    ) -> tuple[np.ndarray, ModelState]:
        """Integrate physics and biology together for ``duration`` seconds.

        Returns the final (phytoplankton, physical state) pair.
        """
        phyto = self.initial_field() if phyto0 is None else np.array(phyto0)
        if phyto.shape != self.grid.shape3d:
            raise ValueError(
                f"phyto shape {phyto.shape} != grid {self.grid.shape3d}"
            )
        holder = {"phyto": phyto}

        def follow(_step, state):
            holder["phyto"] = self.step(holder["phyto"], state)

        final_state = self.physics.run(initial_state, duration, callback=follow)
        return holder["phyto"], final_state

    def surface_chlorophyll(self, phyto: np.ndarray) -> np.ndarray:
        """The satellite-visible surface layer, shape ``(ny, nx)``."""
        return phyto[0]
