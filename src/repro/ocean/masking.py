"""Coastline (land-mask) handling for collocated-grid stencils.

Centred stencils reach across the coastline.  For quantities with a
zero-gradient (free-slip / no-flux) wall condition -- interface height and
tracers -- the land values next to the coast must mirror the adjacent ocean
values; leaving them at 0 imposes a spurious Dirichlet condition that both
distorts the physics (e.g. lateral diffusion "cooling" the coast toward a
0 degC wall) and destabilizes the pressure gradient.  :class:`LandFiller`
precomputes the coastal stencil once and fills land cells bordering ocean
with the mean of their wet 4-neighbours.
"""

from __future__ import annotations

import numpy as np


class LandFiller:
    """Fill land cells adjacent to the ocean with neighbouring wet values.

    Parameters
    ----------
    mask:
        Boolean ``(ny, nx)``; True over ocean.
    """

    def __init__(self, mask: np.ndarray):
        mask = np.asarray(mask, dtype=bool)
        if mask.ndim != 2:
            raise ValueError(f"mask must be 2-D, got shape {mask.shape}")
        self.mask = mask
        wet = mask.astype(float)
        count = np.zeros_like(wet)
        count[1:, :] += wet[:-1, :]
        count[:-1, :] += wet[1:, :]
        count[:, 1:] += wet[:, :-1]
        count[:, :-1] += wet[:, 1:]
        self._count = count
        self._fillable = (~mask) & (count > 0)

    def __call__(self, fld: np.ndarray) -> np.ndarray:
        """Return a copy of ``fld`` with coastal land cells filled.

        Accepts any array whose trailing two dimensions match the mask
        (2-D fields or 3-D tracer stacks).
        """
        fld = np.asarray(fld)
        if fld.shape[-2:] != self.mask.shape:
            raise ValueError(
                f"field shape {fld.shape} incompatible with mask {self.mask.shape}"
            )
        masked = np.where(self.mask, fld, 0.0)
        neigh_sum = np.zeros_like(masked)
        neigh_sum[..., 1:, :] += masked[..., :-1, :]
        neigh_sum[..., :-1, :] += masked[..., 1:, :]
        neigh_sum[..., :, 1:] += masked[..., :, :-1]
        neigh_sum[..., :, :-1] += masked[..., :, 1:]
        out = np.array(fld, dtype=float, copy=True)
        fillable = self._fillable
        if fld.ndim == 2:
            out[fillable] = neigh_sum[fillable] / self._count[fillable]
        else:
            out[..., fillable] = neigh_sum[..., fillable] / self._count[fillable]
        return out
