"""Temperature / salinity tracer dynamics.

Tracers live on ``nz`` depth levels.  Each level is advected by the layer
velocity scaled with a depth-structure function (surface-intensified flow),
diffused laterally, relaxed weakly toward climatology, heated at the
surface, and heaved vertically by interface displacements: a negative
``eta`` (thermocline uplift, i.e. upwelling) lifts cold water, exactly the
signal that dominates Monterey Bay SST and its ESSE uncertainty (paper
Figs 5-6).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.ocean.dynamics import ddx, ddy, laplacian
from repro.ocean.grid import OceanGrid
from repro.ocean.masking import LandFiller


def climatological_profile(
    z_levels: np.ndarray | tuple[float, ...],
    surface_temp: float = 15.0,
    deep_temp: float = 7.0,
    thermocline_depth: float = 60.0,
    thermocline_width: float = 45.0,
    surface_salt: float = 33.4,
    deep_salt: float = 34.2,
) -> tuple[np.ndarray, np.ndarray]:
    """Background (T(z), S(z)) profiles for central California.

    A tanh thermocline between ``surface_temp`` and ``deep_temp`` centred at
    ``thermocline_depth``; salinity increases monotonically with depth.
    """
    z = np.asarray(z_levels, dtype=float)
    shape_fn = 0.5 * (1.0 + np.tanh((z - thermocline_depth) / thermocline_width))
    temp = surface_temp + (deep_temp - surface_temp) * shape_fn
    salt = surface_salt + (deep_salt - surface_salt) * shape_fn
    return temp, salt


@dataclass
class TracerDynamics:
    """Tendency operator for the (T, S) tracer stack.

    Parameters
    ----------
    grid:
        Ocean grid.
    diffusivity:
        Lateral eddy diffusivity (m^2/s).
    relaxation_time:
        e-folding time (s) of the relaxation toward climatology; weak, it
        keeps the twin-experiment fields bounded over weeks.
    velocity_decay_depth:
        e-folding depth (m) of the velocity structure function.
    heave_gain:
        deg C of temperature change per metre of interface displacement per
        unit of the vertical structure function (thermocline-heave coupling).
    heat_capacity_depth:
        Effective mixed-layer depth (m) converting surface heat flux to a
        surface-level temperature tendency.
    """

    grid: OceanGrid
    diffusivity: float = 60.0
    relaxation_time: float = 30.0 * 86400.0
    velocity_decay_depth: float = 120.0
    heave_gain: float = 0.02
    heat_capacity_depth: float = 25.0

    clim_temp: np.ndarray = field(init=False, repr=False)
    clim_salt: np.ndarray = field(init=False, repr=False)

    def __post_init__(self):
        if self.diffusivity < 0:
            raise ValueError("diffusivity must be non-negative")
        if self.relaxation_time <= 0:
            raise ValueError("relaxation_time must be positive")
        z = np.asarray(self.grid.z_levels)
        t_prof, s_prof = climatological_profile(z)
        self.clim_temp = np.broadcast_to(
            t_prof[:, None, None], self.grid.shape3d
        ).copy()
        self.clim_salt = np.broadcast_to(
            s_prof[:, None, None], self.grid.shape3d
        ).copy()
        self._vel_structure = np.exp(-z / self.velocity_decay_depth)[:, None, None]
        # Thermocline heave is strongest where dT/dz is largest.
        dtdz = np.gradient(t_prof, z)
        norm = np.max(np.abs(dtdz))
        self._heave_structure = (
            (np.abs(dtdz) / norm) if norm > 0 else np.zeros_like(z)
        )[:, None, None]
        self._fill_land = LandFiller(self.grid.mask)

    def tendencies(
        self,
        temp: np.ndarray,
        salt: np.ndarray,
        u: np.ndarray,
        v: np.ndarray,
        deta_dt: np.ndarray,
        heat_flux: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Right-hand sides (dT/dt, dS/dt) over ``(nz, ny, nx)``.

        Parameters
        ----------
        temp, salt:
            Current tracer stacks; an optional leading batch axis
            (``(N, nz, ny, nx)``) vectorizes the tendency over a whole
            ensemble, bit-identically to per-member evaluation.
        u, v:
            Layer velocity (2-D, or batched ``(N, ny, nx)``); scaled by
            the depth structure per level.
        deta_dt:
            Interface-height tendency (m/s); drives thermocline heave.
        heat_flux:
            Net surface heat flux (W/m^2), applied to the top level.
        """
        grid = self.grid
        dx, dy = grid.dx, grid.dy
        u3 = u[..., None, :, :] * self._vel_structure
        v3 = v[..., None, :, :] * self._vel_structure

        def advect_diffuse(c: np.ndarray, clim: np.ndarray) -> np.ndarray:
            # Land-filled tracer: zero-gradient at the coast, so diffusion
            # and advection see a no-flux wall, not a 0-valued one.
            c_filled = self._fill_land(c)
            adv = -u3 * ddx(c_filled, dx) - v3 * ddy(c_filled, dy)
            diff = self.diffusivity * laplacian(c_filled, dx, dy)
            relax = (clim - c) / self.relaxation_time
            return adv + diff + relax

        d_temp = advect_diffuse(temp, self.clim_temp)
        d_salt = advect_diffuse(salt, self.clim_salt)

        # Thermocline heave: uplift (deta/dt < 0) cools, depression warms.
        heave = self.heave_gain * deta_dt[..., None, :, :] * self._heave_structure
        d_temp = d_temp + heave * 3.5  # deg C per m of displacement rate
        d_salt = d_salt - heave * 0.3  # upwelled water is saltier

        # Surface heating on the top level.
        rho_cp = 1025.0 * 3990.0
        d_temp[..., 0, :, :] += heat_flux / (rho_cp * self.heat_capacity_depth)

        mask = grid.mask
        d_temp = np.where(mask, d_temp, 0.0)
        d_salt = np.where(mask, d_salt, 0.0)
        return d_temp, d_salt
