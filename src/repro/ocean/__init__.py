"""Ocean-model substrate standing in for HOPS.

The paper runs its ESSE ensembles with the Harvard Ocean Prediction System,
a Fortran primitive-equation (PE) model.  ESSE itself only requires a
nonlinear, stochastically forced field model with a large state vector and
mesoscale variability; this package provides one at laptop scale:

- a 1.5-layer reduced-gravity shallow-water model (:mod:`~repro.ocean.dynamics`)
  over a synthetic Monterey-Bay-like domain (:mod:`~repro.ocean.bathymetry`),
- multi-level temperature/salinity tracers advected by the layer flow with
  thermocline-heave coupling (:mod:`~repro.ocean.tracers`),
- wind/heat forcing with synoptic variability (:mod:`~repro.ocean.forcing`),
- Wiener model-error forcing, white in time and correlated in space
  (:mod:`~repro.ocean.stochastic`),

assembled into :class:`~repro.ocean.model.PEModel`.
"""

from repro.ocean.grid import OceanGrid, demo_grid
from repro.ocean.bathymetry import (
    SyntheticBathymetry,
    monterey_bathymetry,
    monterey_grid,
)
from repro.ocean.forcing import AtmosphericForcing, upwelling_wind_stress
from repro.ocean.stochastic import StochasticForcing
from repro.ocean.dynamics import ShallowWaterDynamics
from repro.ocean.tracers import TracerDynamics, climatological_profile
from repro.ocean.model import PEModel, ModelState, ModelConfig, state_layout

__all__ = [
    "OceanGrid",
    "demo_grid",
    "SyntheticBathymetry",
    "monterey_bathymetry",
    "monterey_grid",
    "AtmosphericForcing",
    "upwelling_wind_stress",
    "StochasticForcing",
    "ShallowWaterDynamics",
    "TracerDynamics",
    "climatological_profile",
    "PEModel",
    "ModelState",
    "ModelConfig",
    "state_layout",
]
