"""Synthetic Monterey-Bay-like bathymetry and coastline.

The AOSN-II experiment (paper Sec 6) ran over Monterey Bay off central
California: a north-south coastline on the *east* edge of the domain, a
crescent-shaped bay cut into it, and a deep submarine canyon running from
the bay mouth out to the open Pacific.  We synthesize that geometry
analytically; the exact shape only needs to provide (a) a coast for
boundary effects, (b) an along-shore upwelling wind response and (c) enough
structure that uncertainty fields (Figs 5-6) show realistic spatial
patterns.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.ocean.grid import OceanGrid


@dataclass(frozen=True)
class SyntheticBathymetry:
    """Water depth and land mask over a grid.

    Attributes
    ----------
    depth:
        Water depth (m, positive) over ``(ny, nx)``; zero over land.
    mask:
        True over ocean.
    """

    depth: np.ndarray
    mask: np.ndarray

    def __post_init__(self):
        depth = np.asarray(self.depth, dtype=float)
        mask = np.asarray(self.mask, dtype=bool)
        if depth.shape != mask.shape:
            raise ValueError("depth and mask shapes differ")
        if np.any(depth < 0):
            raise ValueError("depth must be non-negative")
        object.__setattr__(self, "depth", depth)
        object.__setattr__(self, "mask", mask)

    @property
    def max_depth(self) -> float:
        """Deepest point (m)."""
        return float(self.depth.max())


def monterey_bathymetry(
    nx: int = 42,
    ny: int = 36,
    coast_fraction: float = 0.78,
    bay_center_fraction: float = 0.55,
    bay_radius_fraction: float = 0.16,
    canyon_depth: float = 1200.0,
    shelf_depth: float = 120.0,
) -> SyntheticBathymetry:
    """Build the synthetic Monterey Bay geometry.

    Parameters
    ----------
    nx, ny:
        Grid size.
    coast_fraction:
        Fraction of the x-extent that is ocean; the coastline sits near
        ``x = coast_fraction * Lx`` with a bay carved eastward of it.
    bay_center_fraction:
        Northing of the bay centre as a fraction of the y-extent.
    bay_radius_fraction:
        Bay radius as a fraction of the y-extent.
    canyon_depth:
        Maximum canyon depth (m).
    shelf_depth:
        Depth of the continental shelf at the coast (m).

    Returns
    -------
    SyntheticBathymetry
    """
    if not 0.3 <= coast_fraction <= 0.95:
        raise ValueError(f"coast_fraction out of range: {coast_fraction}")
    xf = np.linspace(0.0, 1.0, nx)[None, :]
    yf = np.linspace(0.0, 1.0, ny)[:, None]

    # Coastline: mostly straight, with a semicircular bay indentation.
    coast_x = np.full((ny, 1), coast_fraction)
    bay = bay_radius_fraction * np.sqrt(
        np.clip(1.0 - ((yf - bay_center_fraction) / bay_radius_fraction) ** 2, 0.0, None)
    )
    coast_x = coast_x + 0.8 * bay  # bay pushes the waterline eastward

    mask = xf < coast_x
    # Close the domain: the outermost ring is a wall, so the west/south/
    # north edges are handled by the same free-slip coastline machinery as
    # the coast itself (with a sponge just inside emulating radiation).
    mask[0, :] = False
    mask[-1, :] = False
    mask[:, 0] = False
    mask[:, -1] = False

    # Depth: a continental shelf plateau at the coast, then an exponential
    # drop-off toward the abyss, plus a canyon thalweg entering at the bay
    # centre latitude (Monterey canyon cuts through the shelf).
    dist_off = np.clip(coast_x - xf, 0.0, None)
    shelf_width = 0.10  # fraction of the x-extent kept at shelf depth
    beyond = np.clip(dist_off - shelf_width, 0.0, None)
    depth = shelf_depth + (3500.0 - shelf_depth) * (1.0 - np.exp(-beyond / 0.22))
    canyon = canyon_depth * np.exp(
        -(((yf - bay_center_fraction) / 0.05) ** 2)
    ) * np.exp(-((dist_off - 0.05) / 0.18) ** 2)
    depth = depth + canyon
    depth = np.where(mask, depth, 0.0)
    return SyntheticBathymetry(depth=depth, mask=mask)


def monterey_grid(
    nx: int = 42,
    ny: int = 36,
    nz: int = 10,
    dx: float = 3000.0,
    dy: float = 3000.0,
    max_level_depth: float = 400.0,
) -> OceanGrid:
    """An :class:`OceanGrid` over the synthetic Monterey domain.

    Depth levels are stretched: fine near the surface (mixed layer and
    thermocline, where Figs 5-6 live) and coarser below.
    """
    bathy = monterey_bathymetry(nx=nx, ny=ny)
    # Stretched levels: z_k = max_depth * (k/nz)^1.7 + 5 m surface offset.
    frac = (np.arange(nz) + 0.5) / nz
    z = 5.0 + (max_level_depth - 5.0) * frac**1.7
    return OceanGrid(
        nx=nx, ny=ny, dx=dx, dy=dy, z_levels=tuple(z), mask=bathy.mask
    )
