"""Scalar and field diagnostics for model states and ensembles."""

from __future__ import annotations

import numpy as np

from repro.ocean.grid import OceanGrid
from repro.ocean.model import ModelState


def kinetic_energy(grid: OceanGrid, state: ModelState) -> float:
    """Area-mean kinetic energy of the layer flow (m^2/s^2)."""
    wet = grid.mask
    ke = 0.5 * (state.u[wet] ** 2 + state.v[wet] ** 2)
    return float(np.mean(ke)) if ke.size else 0.0


def total_volume_anomaly(grid: OceanGrid, state: ModelState) -> float:
    """Domain integral of eta (m^3) -- conserved up to sponge damping."""
    wet = grid.mask
    return float(np.sum(state.eta[wet]) * grid.dx * grid.dy)


def sea_surface_temperature(state: ModelState) -> np.ndarray:
    """SST: the top tracer level, shape ``(ny, nx)``."""
    return state.temp[0]


def temperature_at_depth(grid: OceanGrid, state: ModelState, depth: float) -> np.ndarray:
    """Temperature at the level nearest ``depth`` metres, shape ``(ny, nx)``."""
    return state.temp[grid.level_index(depth)]


def max_current_speed(grid: OceanGrid, state: ModelState) -> float:
    """Maximum layer speed over ocean points (m/s)."""
    wet = grid.mask
    speed = np.sqrt(state.u[wet] ** 2 + state.v[wet] ** 2)
    return float(speed.max()) if speed.size else 0.0


def cfl_number(grid: OceanGrid, state: ModelState, dt: float, wave_speed: float) -> float:
    """Advective+gravity-wave CFL number for step ``dt``."""
    dmin = min(grid.dx, grid.dy)
    return (max_current_speed(grid, state) + wave_speed) * dt / dmin


def ensemble_std(fields: np.ndarray) -> np.ndarray:
    """Pointwise ensemble standard deviation.

    Parameters
    ----------
    fields:
        Stack of member fields, shape ``(n_members, ...)``; needs >= 2
        members.

    Returns
    -------
    Std-dev field of shape ``fields.shape[1:]`` (ddof=1, the unbiased
    estimator the paper's Figs 5-6 report).
    """
    fields = np.asarray(fields)
    if fields.ndim < 2 or fields.shape[0] < 2:
        raise ValueError("need a stack of at least 2 member fields")
    return np.std(fields, axis=0, ddof=1)
