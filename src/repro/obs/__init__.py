"""Synthetic observations standing in for the AOSN-II measurement suite.

The paper assimilates "various ocean measurements (CTD, AUVs, gliders and
SST data)" collected during AOSN-II.  We reproduce the *structure* of that
data stream with synthetic instruments sampling a twin-experiment truth run:

- :class:`~repro.obs.instruments.CTDStation` -- full (T, S) profiles at
  fixed stations,
- :class:`~repro.obs.instruments.AUVTrack` -- constant-depth temperature
  sections along waypoint tracks,
- :class:`~repro.obs.instruments.GliderTransect` -- sawtooth profiling
  along a transect,
- :class:`~repro.obs.instruments.SSTSwath` -- satellite SST over a
  subsampled swath,

all reduced to a sparse linear measurement operator ``H`` with Gaussian
noise covariance ``R`` (paper Eq. B1b) by
:class:`~repro.obs.operators.ObservationOperator`.
"""

from repro.obs.operators import Observation, ObservationOperator
from repro.obs.instruments import (
    AUVTrack,
    CTDStation,
    GliderTransect,
    Instrument,
    SSTSwath,
)
from repro.obs.network import ObservationBatch, ObservationNetwork, aosn2_network
from repro.obs.adaptive import (
    AdaptiveSampler,
    SamplingSuggestion,
    suggest_sampling_locations,
)

__all__ = [
    "Observation",
    "ObservationOperator",
    "Instrument",
    "CTDStation",
    "AUVTrack",
    "GliderTransect",
    "SSTSwath",
    "ObservationBatch",
    "ObservationNetwork",
    "aosn2_network",
    "AdaptiveSampler",
    "SamplingSuggestion",
    "suggest_sampling_locations",
]
