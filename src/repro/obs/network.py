"""Observation networks: batching instrument data over periods T_k.

Paper Fig 1 (top row): "new observations are made available in batches
during periods T_k, from the start of the experiment (T_0) up to the final
time (T_f)".  :class:`ObservationNetwork` owns a set of instruments and
produces one :class:`ObservationBatch` per period by sampling a
twin-experiment truth state.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.state import FieldLayout
from repro.obs.instruments import (
    AUVTrack,
    CTDStation,
    GliderTransect,
    Instrument,
    SSTSwath,
)
from repro.obs.operators import Observation, ObservationOperator
from repro.ocean.grid import OceanGrid
from repro.ocean.model import ModelState
from repro.util.rng import SeedSequenceStream


@dataclass(frozen=True)
class ObservationBatch:
    """All observations that became available during one period T_k."""

    period_index: int
    time: float
    operator: ObservationOperator

    @property
    def size(self) -> int:
        """Number of scalar observations in the batch."""
        return self.operator.size


class ObservationNetwork:
    """A fixed instrument suite sampled repeatedly over an experiment.

    Parameters
    ----------
    grid:
        Ocean grid shared by model and instruments.
    layout:
        State-vector layout observations index into.
    instruments:
        The instrument suite; must be non-empty.
    rng:
        Generator for measurement noise; thread one from your
        experiment's root seed (see :mod:`repro.util.rng`).  The default
        is a deterministic keyed stream off the zero root seed, so twin
        experiments repeat bit-identically even when no rng is passed.
    """

    def __init__(
        self,
        grid: OceanGrid,
        layout: FieldLayout,
        instruments: list[Instrument],
        rng: np.random.Generator | None = None,
    ):
        if not instruments:
            raise ValueError("network needs at least one instrument")
        self.grid = grid
        self.layout = layout
        self.instruments = tuple(instruments)
        self.rng = (
            rng
            if rng is not None
            else SeedSequenceStream(0).rng("obs", "network-noise")
        )
        self._period_count = 0

    def observe(self, truth: ModelState, time: float | None = None) -> ObservationBatch:
        """Sample all instruments against a truth state -> one batch.

        Raises
        ------
        RuntimeError
            If every instrument point fell on land (empty batch).
        """
        observations: list[Observation] = []
        for instrument in self.instruments:
            observations.extend(instrument.observe(self.grid, truth, self.rng))
        if not observations:
            raise RuntimeError("observation batch is empty (all points on land?)")
        batch = ObservationBatch(
            period_index=self._period_count,
            time=truth.time if time is None else time,
            operator=ObservationOperator(self.layout, observations),
        )
        self._period_count += 1
        return batch


def aosn2_network(
    grid: OceanGrid,
    layout: FieldLayout,
    rng: np.random.Generator | None = None,
) -> ObservationNetwork:
    """An AOSN-II-like instrument suite scaled to the given grid.

    Two CTD stations over the shelf, one AUV box survey in the bay, two
    glider transects running offshore, and a cloudy SST swath -- the
    qualitative mix the paper assimilated in real time.
    """
    lx = grid.nx * grid.dx
    ly = grid.ny * grid.dy
    instruments: list[Instrument] = [
        CTDStation(x=0.30 * lx, y=0.40 * ly),
        CTDStation(x=0.45 * lx, y=0.62 * ly),
        AUVTrack(
            waypoints=[
                (0.55 * lx, 0.50 * ly),
                (0.65 * lx, 0.50 * ly),
                (0.65 * lx, 0.60 * ly),
                (0.55 * lx, 0.60 * ly),
            ],
            depth=30.0,
        ),
        GliderTransect(start=(0.15 * lx, 0.30 * ly), end=(0.60 * lx, 0.45 * ly)),
        GliderTransect(start=(0.15 * lx, 0.70 * ly), end=(0.60 * lx, 0.60 * ly)),
        SSTSwath(decimation=3, coverage=0.75),
    ]
    return ObservationNetwork(grid, layout, instruments, rng=rng)
