"""Adaptive sampling: uncertainty-guided observation placement.

Paper Sec 7: "Another area where MTC would be most valuable is the
intelligent coordination of autonomous ocean sampling networks.  To
achieve optimal and adaptive sampling ..." -- during AOSN-II the ESSE
system was used in real time to "provide suggestions for adaptive
sampling" (Sec 6).

The classic criterion is implemented here: place the next observations
where the forecast error subspace predicts the largest (remaining)
variance, greedily, with a posterior-variance update after each pick so
the selected points do not cluster on one uncertainty lobe.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.state import FieldLayout
from repro.core.subspace import ErrorSubspace
from repro.obs.instruments import Instrument
from repro.ocean.grid import OceanGrid


@dataclass(frozen=True)
class SamplingSuggestion:
    """One suggested observation location."""

    field: str
    level: int
    j: int
    i: int
    predicted_variance: float


def suggest_sampling_locations(
    subspace: ErrorSubspace,
    layout: FieldLayout,
    grid: OceanGrid,
    field: str = "temp",
    level: int = 0,
    count: int = 5,
    noise_std: float = 0.05,
) -> list[SamplingSuggestion]:
    """Greedy variance-reduction placement of ``count`` observations.

    At each step the wet point with the largest current subspace variance
    of ``field`` at ``level`` is selected, then the subspace variance is
    conditioned on a hypothetical observation there (scalar Kalman update
    in mode space) before the next pick -- so later picks account for the
    information the earlier ones will already bring.

    Parameters
    ----------
    subspace:
        Forecast error subspace (normalized coordinates).
    layout, grid:
        State layout and grid (for masking and indexing).
    field, level:
        Observed field and depth level.
    count:
        Number of suggestions.
    noise_std:
        Assumed instrument noise (physical units) for the conditioning.

    Returns
    -------
    Suggestions in pick order (most informative first).
    """
    if count < 1:
        raise ValueError("count must be >= 1")
    spec = layout.spec(field)
    if len(spec.shape) == 3:
        if not 0 <= level < spec.shape[0]:
            raise ValueError(f"level {level} out of range for field {field!r}")
        ny, nx = spec.shape[1:]
        level_offset = level * ny * nx
    elif len(spec.shape) == 2:
        if level != 0:
            raise ValueError(f"2-D field {field!r} has no levels")
        ny, nx = spec.shape
        level_offset = 0
    else:
        raise ValueError(f"field {field!r} must be 2-D or 3-D")
    if (ny, nx) != grid.shape2d:
        raise ValueError("field shape does not match the grid")

    base = layout.slice_of(field).start + level_offset
    scale = spec.scale
    noise_var_norm = (noise_std / scale) ** 2

    # Work on the (n_wet, p) block of modes at this level, in normalized
    # units; condition the mode covariance S after each pick.
    wet_j, wet_i = np.nonzero(grid.mask)
    flat = base + wet_j * nx + wet_i
    modes_here = subspace.modes[flat, :]  # (n_wet, p)
    s_cov = np.diag(subspace.variances).astype(float)

    suggestions: list[SamplingSuggestion] = []
    taken: set[int] = set()
    for _ in range(min(count, wet_j.size)):
        variance = np.einsum("ip,pq,iq->i", modes_here, s_cov, modes_here)
        order = np.argsort(variance)[::-1]
        pick = next((k for k in order if k not in taken), None)
        if pick is None:
            break
        taken.add(int(pick))
        suggestions.append(
            SamplingSuggestion(
                field=field,
                level=level,
                j=int(wet_j[pick]),
                i=int(wet_i[pick]),
                predicted_variance=float(variance[pick]) * scale**2,
            )
        )
        # scalar conditioning: S <- S - S h h^T S / (h^T S h + r)
        h = modes_here[pick, :]
        sh = s_cov @ h
        denom = float(h @ sh) + noise_var_norm
        if denom > 0:
            s_cov = s_cov - np.outer(sh, sh) / denom
    return suggestions


class AdaptiveSampler(Instrument):
    """An instrument that samples at ESSE-suggested locations.

    Built from the *current forecast subspace*; sampling the truth at the
    suggested points closes the adaptive-observation loop of Sec 6
    ("provide suggestions for adaptive sampling").
    """

    name = "adaptive"

    def __init__(
        self,
        suggestions: list[SamplingSuggestion],
        noise_std: float = 0.05,
    ):
        if not suggestions:
            raise ValueError("need at least one suggestion")
        self.suggestions = tuple(suggestions)
        self._noise_std = float(noise_std)

    def sample_points(self, grid: OceanGrid) -> list[tuple[str, int, int, int]]:
        """The suggested high-uncertainty points, verbatim."""
        return [(s.field, s.level, s.j, s.i) for s in self.suggestions]

    def noise_std_for(self, fieldname: str) -> float:
        """Uniform noise std-dev for all adaptive samples."""
        return self._noise_std
