"""Synthetic instrument models: CTD stations, AUVs, gliders, satellite SST.

Each instrument turns a *true* model state into a list of noisy
:class:`~repro.obs.operators.Observation` samples, mimicking the AOSN-II
measurement suite.  Instruments are deterministic in *where* they sample
(given their configuration) and stochastic only in the measurement noise,
which is drawn from the supplied generator -- so twin experiments are fully
reproducible.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field

import numpy as np

from repro.obs.operators import Observation
from repro.ocean.grid import OceanGrid
from repro.ocean.model import ModelState


class Instrument(ABC):
    """Base class: produce noisy point samples of a true state."""

    name: str = "generic"

    @abstractmethod
    def sample_points(self, grid: OceanGrid) -> list[tuple[str, int, int, int]]:
        """The (field, level, j, i) tuples this instrument samples."""

    def noise_std_for(self, fieldname: str) -> float:
        """Measurement-error std-dev for a field (override per instrument)."""
        return {"temp": 0.05, "salt": 0.02}.get(fieldname, 0.05)

    def observe(
        self,
        grid: OceanGrid,
        truth: ModelState,
        rng: np.random.Generator,
    ) -> list[Observation]:
        """Noisy observations of ``truth`` at this instrument's points."""
        fields = {"temp": truth.temp, "salt": truth.salt, "eta": truth.eta}
        out: list[Observation] = []
        for fieldname, level, j, i in self.sample_points(grid):
            if not grid.mask[j, i]:
                continue  # instrument over land: skip silently
            arr = fields[fieldname]
            true_val = arr[level, j, i] if arr.ndim == 3 else arr[j, i]
            std = self.noise_std_for(fieldname)
            out.append(
                Observation(
                    field=fieldname,
                    level=level,
                    j=j,
                    i=i,
                    value=float(true_val + std * rng.standard_normal()),
                    noise_std=std,
                    instrument=self.name,
                )
            )
        return out


@dataclass
class CTDStation(Instrument):
    """A ship CTD cast: full-depth (T, S) profile at a fixed position.

    Parameters
    ----------
    x, y:
        Station position in metres.
    """

    x: float
    y: float
    name: str = "ctd"

    def sample_points(self, grid: OceanGrid) -> list[tuple[str, int, int, int]]:
        """Full-depth (T, S) sample points at the station's grid cell."""
        j, i = grid.nearest_point(self.x, self.y)
        pts = []
        for k in range(grid.nz):
            pts.append(("temp", k, j, i))
            pts.append(("salt", k, j, i))
        return pts

    def noise_std_for(self, fieldname: str) -> float:
        """Measurement noise std-dev; CTDs are the suite's most accurate."""
        return {"temp": 0.02, "salt": 0.01}[fieldname]


@dataclass
class AUVTrack(Instrument):
    """An AUV running at constant depth through a list of waypoints.

    Temperature is sampled every ``sample_spacing`` metres along the legs.
    """

    waypoints: list[tuple[float, float]]
    depth: float = 30.0
    sample_spacing: float = 3000.0
    name: str = "auv"

    def sample_points(self, grid: OceanGrid) -> list[tuple[str, int, int, int]]:
        """Temperature points along the legs at the AUV's running depth."""
        if len(self.waypoints) < 2:
            raise ValueError("AUV track needs at least two waypoints")
        level = grid.level_index(self.depth)
        pts: list[tuple[str, int, int, int]] = []
        seen: set[tuple[int, int]] = set()
        for (x0, y0), (x1, y1) in zip(self.waypoints[:-1], self.waypoints[1:]):
            leg = float(np.hypot(x1 - x0, y1 - y0))
            n = max(int(leg / self.sample_spacing), 1)
            for s in np.linspace(0.0, 1.0, n + 1):
                j, i = grid.nearest_point(x0 + s * (x1 - x0), y0 + s * (y1 - y0))
                if (j, i) not in seen:
                    seen.add((j, i))
                    pts.append(("temp", level, j, i))
        return pts

    def noise_std_for(self, fieldname: str) -> float:
        """Measurement noise std-dev for AUV temperature samples."""
        return 0.05


@dataclass
class GliderTransect(Instrument):
    """A glider sawtooth: profiles at stations along a straight transect.

    At each of ``n_profiles`` equally spaced surfacing points the glider
    yields a (T, S) profile down to ``max_depth``.
    """

    start: tuple[float, float]
    end: tuple[float, float]
    n_profiles: int = 5
    max_depth: float = 200.0
    name: str = "glider"

    def sample_points(self, grid: OceanGrid) -> list[tuple[str, int, int, int]]:
        """(T, S) profile points at the transect's surfacing stations."""
        if self.n_profiles < 1:
            raise ValueError("glider needs at least one profile")
        levels = [k for k, z in enumerate(grid.z_levels) if z <= self.max_depth]
        pts: list[tuple[str, int, int, int]] = []
        for s in np.linspace(0.0, 1.0, self.n_profiles):
            x = self.start[0] + s * (self.end[0] - self.start[0])
            y = self.start[1] + s * (self.end[1] - self.start[1])
            j, i = grid.nearest_point(x, y)
            for k in levels:
                pts.append(("temp", k, j, i))
                pts.append(("salt", k, j, i))
        return pts

    def noise_std_for(self, fieldname: str) -> float:
        """Measurement noise std-dev for glider (T, S) profiles."""
        return {"temp": 0.05, "salt": 0.02}[fieldname]


@dataclass
class SSTSwath(Instrument):
    """Satellite SST: the surface temperature level on a decimated grid.

    Parameters
    ----------
    decimation:
        Sample every ``decimation``-th point in each direction.
    coverage:
        Fraction of the swath retained (cloud masking); points are dropped
        deterministically by a hash of their indices so coverage does not
        depend on the caller's RNG state.
    """

    decimation: int = 2
    coverage: float = 0.8
    name: str = "sst"

    def __post_init__(self):
        if self.decimation < 1:
            raise ValueError("decimation must be >= 1")
        if not 0.0 < self.coverage <= 1.0:
            raise ValueError("coverage must be in (0, 1]")

    def sample_points(self, grid: OceanGrid) -> list[tuple[str, int, int, int]]:
        """Decimated surface-temperature points minus the cloud mask."""
        pts: list[tuple[str, int, int, int]] = []
        for j in range(0, grid.ny, self.decimation):
            for i in range(0, grid.nx, self.decimation):
                # Deterministic pseudo-random cloud mask.
                h = ((j * 2654435761 + i * 40503) % 1000) / 1000.0
                if h < self.coverage:
                    pts.append(("temp", 0, j, i))
        return pts

    def noise_std_for(self, fieldname: str) -> float:
        """Measurement noise std-dev; satellite SST is the noisiest."""
        return 0.3
