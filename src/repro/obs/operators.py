"""Sparse linear measurement operators H and noise models R.

An observation samples one scalar entry of the packed state vector
(field, level, grid point) with Gaussian noise.  The operator is stored as
an index vector, so applying ``H`` to a state or to a matrix of subspace
modes is a fancy-indexing gather -- O(p) per observation instead of a dense
``(p, n)`` matrix-vector product, which is what makes assimilating
O(10^4-10^5) observations into an O(10^5-10^7) state feasible (the
dimension regime quoted in paper Sec 2).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.state import FieldLayout


@dataclass(frozen=True)
class Observation:
    """One scalar measurement of a state-vector entry.

    Attributes
    ----------
    field:
        Name of the observed field in the layout (e.g. ``"temp"``).
    level:
        Depth-level index for 3-D fields; must be 0 for 2-D fields.
    j, i:
        Grid indices of the sample.
    value:
        Measured value (same units as the field).
    noise_std:
        Measurement-error standard deviation (>0).
    instrument:
        Free-form tag ("ctd", "auv", "glider", "sst"); used in diagnostics.
    """

    field: str
    level: int
    j: int
    i: int
    value: float
    noise_std: float
    instrument: str = "generic"

    def __post_init__(self):
        if self.noise_std <= 0:
            raise ValueError(f"noise_std must be > 0, got {self.noise_std}")
        if self.level < 0 or self.j < 0 or self.i < 0:
            raise ValueError("observation indices must be non-negative")


class ObservationOperator:
    """The (H, R, y) triple for one batch of observations.

    Parameters
    ----------
    layout:
        State-vector layout the observations index into.
    observations:
        Non-empty list of :class:`Observation`.

    Notes
    -----
    ``R`` is diagonal (measurement errors white across instruments, paper
    Sec 3.1), stored as the vector of variances.
    """

    def __init__(self, layout: FieldLayout, observations: list[Observation]):
        if not observations:
            raise ValueError("need at least one observation")
        self.layout = layout
        self.observations = tuple(observations)
        indices = np.empty(len(observations), dtype=np.intp)
        for k, obs in enumerate(observations):
            spec = layout.spec(obs.field)
            if len(spec.shape) == 1:
                if obs.level != 0 or obs.j != 0:
                    raise ValueError(
                        f"1-D field {obs.field!r} observed with level/j != 0"
                    )
                if obs.i >= spec.shape[0]:
                    raise ValueError(f"observation off-grid: {obs}")
                flat = obs.i
            elif len(spec.shape) == 2:
                if obs.level != 0:
                    raise ValueError(
                        f"2-D field {obs.field!r} observed with level={obs.level}"
                    )
                ny, nx = spec.shape
                if obs.j >= ny or obs.i >= nx:
                    raise ValueError(f"observation off-grid: {obs}")
                flat = obs.j * nx + obs.i
            elif len(spec.shape) == 3:
                nz, ny, nx = spec.shape
                if obs.level >= nz or obs.j >= ny or obs.i >= nx:
                    raise ValueError(f"observation off-grid: {obs}")
                flat = (obs.level * ny + obs.j) * nx + obs.i
            else:
                raise ValueError(
                    f"field {obs.field!r} has unsupported rank {len(spec.shape)}"
                )
            indices[k] = layout.slice_of(obs.field).start + flat
        self._indices = indices
        self.values = np.array([o.value for o in observations])
        self.noise_var = np.array([o.noise_std**2 for o in observations])

    @property
    def size(self) -> int:
        """Number of scalar observations."""
        return len(self.observations)

    @property
    def state_indices(self) -> np.ndarray:
        """Read-only indices into the packed state vector."""
        view = self._indices.view()
        view.flags.writeable = False
        return view

    def observe(self, state_vector: np.ndarray) -> np.ndarray:
        """Apply H: sample the state at the observation points."""
        state_vector = np.asarray(state_vector)
        if state_vector.shape != (self.layout.size,):
            raise ValueError(
                f"state vector shape {state_vector.shape} != ({self.layout.size},)"
            )
        return state_vector[self._indices]

    def observe_modes(self, modes: np.ndarray) -> np.ndarray:
        """Apply H to subspace modes: ``(n, p) -> (m, p)`` gather."""
        modes = np.asarray(modes)
        if modes.ndim != 2 or modes.shape[0] != self.layout.size:
            raise ValueError(
                f"modes must be ({self.layout.size}, p), got {modes.shape}"
            )
        return modes[self._indices, :]

    def innovation(self, state_vector: np.ndarray) -> np.ndarray:
        """Data-minus-forecast residual ``d = y - H x``."""
        return self.values - self.observe(state_vector)

    def perturbed_values(self, rng: np.random.Generator) -> np.ndarray:
        """Values plus a fresh draw of observation noise.

        Used by the ensemble update so posterior members carry consistent
        observation-error statistics (perturbed-observations analysis).
        """
        return self.values + rng.standard_normal(self.size) * np.sqrt(self.noise_var)

    def by_instrument(self) -> dict[str, int]:
        """Observation counts per instrument tag (diagnostics)."""
        counts: dict[str, int] = {}
        for obs in self.observations:
            counts[obs.instrument] = counts.get(obs.instrument, 0) + 1
        return counts
