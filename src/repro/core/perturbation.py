"""Initial-condition perturbations from the error subspace.

Paper Sec 3.1: "ESSE proceeds to generate an ensemble of model integrations
whose initial conditions are perturbed with randomly weighted combinations
of the error modes", and Sec 6: "A white noise of an amplitude proportional
to the estimated ... errors is added to this random combination, in part to
represent the errors truncated by the error subspace."

Perturbations are keyed by (root seed, member index) so they are identical
no matter which host runs the member or in which order members complete --
the property the paper's per-index bookkeeping relies on.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.state import FieldLayout
from repro.core.subspace import ErrorSubspace
from repro.util.linalg import thin_svd
from repro.util.randomfields import GaussianRandomField2D
from repro.util.rng import member_rng


@dataclass(frozen=True)
class PerturbationGenerator:
    """Draws member initial conditions around a mean state.

    Parameters
    ----------
    layout:
        State layout (for normalization).
    subspace:
        Error subspace supplying the dominant perturbation directions.
    root_seed:
        Experiment seed; members derive their streams from it.
    residual_fraction:
        Amplitude of the truncated-error white noise, as a fraction of the
        smallest retained mode's sigma (0 disables the residual).
    """

    layout: FieldLayout
    subspace: ErrorSubspace
    root_seed: int
    residual_fraction: float = 0.3

    def __post_init__(self):
        if self.subspace.state_dim != self.layout.size:
            raise ValueError(
                f"subspace dimension {self.subspace.state_dim} != layout size "
                f"{self.layout.size}"
            )
        if self.residual_fraction < 0:
            raise ValueError("residual_fraction must be >= 0")
        # Paper Sec 6: the truncated-error white noise has "an amplitude
        # proportional to the estimated ... errors" -- i.e. pointwise: the
        # residual std at each state entry is a fraction of the subspace's
        # own pointwise error std there.
        pointwise = np.sqrt(np.clip(self.subspace.variance_field(), 0.0, None))
        object.__setattr__(
            self, "_residual_std", self.residual_fraction * pointwise
        )

    def perturbation(self, member_index: int) -> np.ndarray:
        """The physical-space perturbation of one member, shape ``(n,)``."""
        rng = member_rng(self.root_seed, member_index, purpose="pert")
        coeffs = rng.standard_normal(self.subspace.rank) * self.subspace.sigmas
        normalized = self.subspace.modes @ coeffs
        if self.residual_fraction > 0 and self.subspace.rank > 0:
            normalized = normalized + self._residual_std * rng.standard_normal(
                self.layout.size
            )
        return self.layout.denormalize(normalized)

    def member_state(self, mean: np.ndarray, member_index: int) -> np.ndarray:
        """Mean state plus this member's perturbation."""
        mean = np.asarray(mean)
        if mean.shape != (self.layout.size,):
            raise ValueError(f"mean shape {mean.shape} != ({self.layout.size},)")
        return mean + self.perturbation(member_index)


def synthetic_initial_subspace(
    layout: FieldLayout,
    shape2d: tuple[int, int],
    nz: int,
    rank: int = 30,
    n_samples: int | None = None,
    length_scale_cells: float = 5.0,
    field_amplitudes: dict[str, float] | None = None,
    seed: int = 0,
) -> ErrorSubspace:
    """Build an initial error subspace from correlated random fields.

    In the paper the initial subspace comes from a posterior error nowcast
    of the previous assimilation cycle; for cold starts (and twin
    experiments) we synthesize one: draw smooth random perturbation states,
    normalize, and take the dominant SVD modes.

    Parameters
    ----------
    layout:
        State layout; every field in it is perturbed.
    shape2d:
        Horizontal grid shape ``(ny, nx)`` shared by all fields.
    nz:
        Number of levels of 3-D fields in the layout.
    rank:
        Number of retained modes.
    n_samples:
        Random draws used for the estimate (default ``2 * rank``).
    length_scale_cells:
        Horizontal correlation length of the perturbations.
    field_amplitudes:
        Physical perturbation std-dev per field name; defaults to
        mesoscale-analysis errors (0.05 m/s, 0.5 m, 0.4 degC, 0.04 psu).
    seed:
        Seed for the construction.
    """
    if rank < 1:
        raise ValueError("rank must be >= 1")
    n_samples = 2 * rank if n_samples is None else n_samples
    if n_samples < rank:
        raise ValueError(f"n_samples={n_samples} < rank={rank}")
    amplitudes = {
        "u": 0.05,
        "v": 0.05,
        "eta": 0.5,
        "temp": 0.4,
        "salt": 0.04,
    }
    if field_amplitudes:
        amplitudes.update(field_amplitudes)

    rng = np.random.default_rng(seed)
    grf = GaussianRandomField2D(shape2d, length_scale_cells, rng=rng)
    z_decay = np.exp(-np.arange(nz) / max(nz / 2.0, 1.0))

    columns = np.empty((layout.size, n_samples))
    for s in range(n_samples):
        fields: dict[str, np.ndarray] = {}
        for spec in layout.specs:
            amp = amplitudes.get(spec.name, spec.scale)
            if len(spec.shape) == 2:
                fields[spec.name] = amp * grf.sample()
            else:
                stack = grf.sample_many(spec.shape[0])
                fields[spec.name] = amp * stack * z_decay[: spec.shape[0], None, None]
        columns[:, s] = layout.normalize(layout.pack(fields))

    u, sig, _ = thin_svd(columns / np.sqrt(n_samples - 1))
    keep = min(rank, sig.size)
    return ErrorSubspace(modes=u[:, :keep], sigmas=sig[:keep], n_samples=n_samples)
