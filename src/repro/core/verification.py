"""Forecast verification metrics.

The forecaster's Fig 1 tasks include the *study* of candidate forecasts;
this module provides the standard deterministic and probabilistic scores
used to do that for ensemble systems like ESSE:

- deterministic: RMSE, bias, anomaly correlation;
- ensemble calibration: spread-skill ratio and the rank histogram (a
  reliable ensemble ranks the truth uniformly among its members);
- probabilistic: the continuous ranked probability score (CRPS), in the
  standard ensemble (fair-weather) estimator
  ``CRPS = mean|X - y| - 0.5 mean|X - X'|``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


def rmse(forecast: np.ndarray, truth: np.ndarray) -> float:
    """Root-mean-square error over all elements."""
    forecast, truth = _aligned(forecast, truth)
    return float(np.sqrt(np.mean((forecast - truth) ** 2)))


def bias(forecast: np.ndarray, truth: np.ndarray) -> float:
    """Mean error (forecast minus truth)."""
    forecast, truth = _aligned(forecast, truth)
    return float(np.mean(forecast - truth))


def anomaly_correlation(
    forecast: np.ndarray, truth: np.ndarray, climatology: np.ndarray
) -> float:
    """Centered anomaly correlation coefficient against a climatology."""
    forecast, truth = _aligned(forecast, truth)
    clim = np.asarray(climatology, dtype=float)
    if clim.shape != forecast.shape:
        raise ValueError("climatology shape mismatch")
    fa = (forecast - clim).ravel()
    ta = (truth - clim).ravel()
    fa = fa - fa.mean()
    ta = ta - ta.mean()
    denom = np.linalg.norm(fa) * np.linalg.norm(ta)
    if denom == 0:
        raise ValueError("zero anomaly variance: correlation undefined")
    return float(fa @ ta / denom)


def spread_skill_ratio(members: np.ndarray, truth: np.ndarray) -> float:
    """Ensemble spread / ensemble-mean RMSE (1 = well calibrated).

    Parameters
    ----------
    members:
        Ensemble stack ``(N, ...)`` with N >= 2.
    truth:
        Verifying field, shape ``members.shape[1:]``.
    """
    members, truth = _ensemble_aligned(members, truth)
    mean = members.mean(axis=0)
    skill = np.sqrt(np.mean((mean - truth) ** 2))
    spread = np.sqrt(np.mean(members.var(axis=0, ddof=1)))
    if skill == 0:
        raise ValueError("zero ensemble-mean error: ratio undefined")
    return float(spread / skill)


def rank_histogram(members: np.ndarray, truth: np.ndarray) -> np.ndarray:
    """Counts of the truth's rank among sorted members (N+1 bins).

    A flat histogram indicates a reliable ensemble; U-shape means
    under-dispersion, dome-shape over-dispersion.
    """
    members, truth = _ensemble_aligned(members, truth)
    n = members.shape[0]
    flat_members = members.reshape(n, -1)
    flat_truth = truth.ravel()
    ranks = np.sum(flat_members < flat_truth[None, :], axis=0)
    return np.bincount(ranks, minlength=n + 1)


def crps(members: np.ndarray, truth: np.ndarray) -> float:
    """Ensemble CRPS, averaged over all verification points.

    ``CRPS = E|X - y| - 0.5 E|X - X'|`` with X, X' independent member
    draws; smaller is better, and for a single member it reduces to the
    mean absolute error.
    """
    members, truth = _ensemble_aligned(members, truth, allow_single=True)
    n = members.shape[0]
    flat = members.reshape(n, -1)
    y = truth.ravel()[None, :]
    term1 = np.mean(np.abs(flat - y))
    if n == 1:
        return float(term1)
    # pairwise member spread, O(N^2 * m) but N is ensemble-sized
    diffs = np.abs(flat[:, None, :] - flat[None, :, :])
    term2 = 0.5 * diffs.mean()
    return float(term1 - term2)


@dataclass(frozen=True)
class VerificationReport:
    """All scores for one (ensemble, truth) pair."""

    rmse: float
    bias: float
    spread_skill: float
    crps: float
    n_members: int

    def render(self) -> str:
        """One-line summary."""
        return (
            f"N={self.n_members}: RMSE {self.rmse:.4f}, bias {self.bias:+.4f}, "
            f"spread/skill {self.spread_skill:.2f}, CRPS {self.crps:.4f}"
        )


def verify_ensemble(members: np.ndarray, truth: np.ndarray) -> VerificationReport:
    """Convenience: the full report for one ensemble and truth."""
    members, truth = _ensemble_aligned(members, truth)
    mean = members.mean(axis=0)
    return VerificationReport(
        rmse=rmse(mean, truth),
        bias=bias(mean, truth),
        spread_skill=spread_skill_ratio(members, truth),
        crps=crps(members, truth),
        n_members=members.shape[0],
    )


# -- helpers -------------------------------------------------------------------


def _aligned(a: np.ndarray, b: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    if a.shape != b.shape:
        raise ValueError(f"shape mismatch: {a.shape} vs {b.shape}")
    if a.size == 0:
        raise ValueError("empty fields")
    return a, b


def _ensemble_aligned(
    members: np.ndarray, truth: np.ndarray, allow_single: bool = False
) -> tuple[np.ndarray, np.ndarray]:
    members = np.asarray(members, dtype=float)
    truth = np.asarray(truth, dtype=float)
    minimum = 1 if allow_single else 2
    if members.ndim < 1 or members.shape[0] < minimum:
        raise ValueError(f"need an ensemble of >= {minimum} members")
    if members.shape[1:] != truth.shape:
        raise ValueError(
            f"member shape {members.shape[1:]} != truth shape {truth.shape}"
        )
    return members, truth
