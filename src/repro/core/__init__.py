"""ESSE core: error subspaces, ensembles, convergence and assimilation."""

from repro.core.state import FieldLayout, FieldSpec
from repro.core.subspace import ErrorSubspace, IncrementalSubspaceEstimator
from repro.core.covariance import AnomalyAccumulator, AnomalyView
from repro.core.convergence import ConvergenceCriterion, similarity_coefficient
from repro.core.perturbation import (
    PerturbationGenerator,
    synthetic_initial_subspace,
)
from repro.core.assimilation import (
    AnalysisResult,
    ESSEAnalysis,
    TiledESSEAnalysis,
    TileUpdate,
    run_tiles_serial,
)
from repro.core.localization import (
    AdaptiveInflation,
    CutoffTaper,
    GaspariCohnTaper,
    MultiplicativeInflation,
    make_inflation,
    make_taper,
)
from repro.core.taskmodel import DegradedEnsembleWarning
from repro.core.tiling import Tile, TileDecomposition
from repro.core.ensemble import EnsembleRunner, MemberResult
from repro.core.driver import ESSEConfig, ESSEDriver, ForecastResult
from repro.core.smoother import ESSESmoother, SmootherResult
from repro.core.verification import (
    VerificationReport,
    anomaly_correlation,
    bias,
    crps,
    rank_histogram,
    rmse,
    spread_skill_ratio,
    verify_ensemble,
)

__all__ = [
    "FieldLayout",
    "FieldSpec",
    "ErrorSubspace",
    "IncrementalSubspaceEstimator",
    "AnomalyAccumulator",
    "AnomalyView",
    "ConvergenceCriterion",
    "similarity_coefficient",
    "PerturbationGenerator",
    "synthetic_initial_subspace",
    "AnalysisResult",
    "ESSEAnalysis",
    "TiledESSEAnalysis",
    "TileUpdate",
    "run_tiles_serial",
    "AdaptiveInflation",
    "CutoffTaper",
    "GaspariCohnTaper",
    "MultiplicativeInflation",
    "make_inflation",
    "make_taper",
    "DegradedEnsembleWarning",
    "Tile",
    "TileDecomposition",
    "EnsembleRunner",
    "MemberResult",
    "ESSEConfig",
    "ESSEDriver",
    "ForecastResult",
    "ESSESmoother",
    "SmootherResult",
    "VerificationReport",
    "anomaly_correlation",
    "bias",
    "crps",
    "rank_histogram",
    "rmse",
    "spread_skill_ratio",
    "verify_ensemble",
]
