"""Error subspaces: the central ESSE data structure.

An error subspace is a rank-p factorization of the (normalized) error
covariance,

    P ≈ E diag(sigma^2) E^T,

with ``E`` an ``(n, p)`` matrix of orthonormal *error modes* and ``sigma``
the per-mode standard deviations.  ESSE "is based on a characterization and
prediction of the largest uncertainties ... carried out by evolving an
error subspace of variable size" (paper abstract): p changes in time as the
convergence criterion dictates.

All subspaces here live in *normalized* (non-dimensional) state
coordinates -- see :meth:`repro.core.state.FieldLayout.normalize` -- so the
SVD treats velocity, interface and tracer errors on a common footing.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.util.linalg import (
    svd_rank_update,
    thin_svd,
    truncated_svd,
    warm_randomized_svd,
)


@dataclass(frozen=True)
class ErrorSubspace:
    """A rank-p error subspace (normalized coordinates).

    Attributes
    ----------
    modes:
        Orthonormal columns, shape ``(n, p)``.
    sigmas:
        Per-mode standard deviations, shape ``(p,)``, descending, >= 0.
    n_samples:
        Number of ensemble members that produced the estimate (0 for
        prescribed subspaces).
    """

    modes: np.ndarray
    sigmas: np.ndarray
    n_samples: int = 0

    def __post_init__(self):
        modes = np.asarray(self.modes, dtype=np.float64)
        sigmas = np.asarray(self.sigmas, dtype=np.float64)
        if modes.ndim != 2:
            raise ValueError(f"modes must be 2-D, got shape {modes.shape}")
        if sigmas.ndim != 1 or sigmas.size != modes.shape[1]:
            raise ValueError(
                f"sigmas shape {sigmas.shape} does not match {modes.shape[1]} modes"
            )
        if np.any(sigmas < 0):
            raise ValueError("sigmas must be non-negative")
        if np.any(np.diff(sigmas) > 1e-12):
            raise ValueError("sigmas must be sorted descending")
        object.__setattr__(self, "modes", modes)
        object.__setattr__(self, "sigmas", sigmas)

    # -- basic properties -------------------------------------------------

    @property
    def rank(self) -> int:
        """Subspace dimension p."""
        return self.modes.shape[1]

    @property
    def state_dim(self) -> int:
        """State dimension n."""
        return self.modes.shape[0]

    @property
    def variances(self) -> np.ndarray:
        """Per-mode variances sigma^2."""
        return self.sigmas**2

    @property
    def total_variance(self) -> float:
        """tr(P) within the subspace."""
        return float(np.sum(self.sigmas**2))

    # -- covariance actions ------------------------------------------------

    def covariance_action(self, vector: np.ndarray) -> np.ndarray:
        """Apply ``P = E diag(s^2) E^T`` to a vector without forming P."""
        vector = np.asarray(vector)
        if vector.shape != (self.state_dim,):
            raise ValueError(
                f"vector shape {vector.shape} != ({self.state_dim},)"
            )
        return self.modes @ (self.variances * (self.modes.T @ vector))

    def variance_field(self) -> np.ndarray:
        """Pointwise variance diag(P), shape ``(n,)``.

        This is what the paper's Figs 5-6 map (as standard deviations).
        """
        return np.einsum("ij,j,ij->i", self.modes, self.variances, self.modes)

    def sample_coefficients(
        self, count: int, rng: np.random.Generator
    ) -> np.ndarray:
        """Draw ``count`` coefficient vectors ~ N(0, diag(sigma^2)).

        Shape ``(count, p)``; ``modes @ coeffs[j]`` is one state perturbation.
        """
        if count < 0:
            raise ValueError("count must be >= 0")
        return rng.standard_normal((count, self.rank)) * self.sigmas[None, :]

    def truncate(self, rank: int | None = None, energy: float | None = None) -> "ErrorSubspace":
        """A lower-rank copy keeping the dominant modes."""
        if rank is None and energy is None:
            raise ValueError("pass rank= or energy=")
        keep = self.rank
        if energy is not None:
            if not 0.0 < energy <= 1.0:
                raise ValueError("energy must be in (0, 1]")
            power = np.cumsum(self.variances)
            total = power[-1] if power.size else 0.0
            keep = 1 if total == 0 else int(np.searchsorted(power, energy * total) + 1)
        if rank is not None:
            keep = min(keep, max(int(rank), 1))
        keep = min(keep, self.rank)
        return ErrorSubspace(
            modes=self.modes[:, :keep],
            sigmas=self.sigmas[:keep],
            n_samples=self.n_samples,
        )

    # -- persistence ---------------------------------------------------------

    def save(self, path: str | Path) -> None:
        """Write the subspace to an ``.npz`` file."""
        np.savez_compressed(
            path, modes=self.modes, sigmas=self.sigmas, n_samples=self.n_samples
        )

    @classmethod
    def load(cls, path: str | Path) -> "ErrorSubspace":
        """Read a subspace written by :meth:`save`."""
        with np.load(path) as data:
            return cls(
                modes=data["modes"],
                sigmas=data["sigmas"],
                n_samples=int(data["n_samples"]),
            )

    # -- constructors ----------------------------------------------------------

    @classmethod
    def from_anomalies(
        cls,
        anomalies: np.ndarray,
        rank: int | None = None,
        energy: float | None = None,
        rtol: float = 1e-10,
        method: str = "lapack",
        rng: np.random.Generator | None = None,
    ) -> "ErrorSubspace":
        """Estimate a subspace from an ``(n, N)`` matrix of scaled anomalies.

        The columns must already include the ``1/sqrt(N-1)`` factor (see
        :class:`repro.core.covariance.AnomalyAccumulator`), so the singular
        values are directly the error standard deviations.

        Parameters
        ----------
        method:
            ``"lapack"`` (exact thin SVD) or ``"randomized"`` (sketching;
            the scalable answer to the paper's large-N SVD concern --
            requires ``rank``).
        rng:
            Sketch generator for the randomized method.
        """
        anomalies = np.asarray(anomalies)
        if anomalies.ndim != 2:
            raise ValueError("anomalies must be (n, N)")
        n_cols = anomalies.shape[1]
        if n_cols < 2:
            raise ValueError("need at least 2 anomaly columns")
        if method == "lapack":
            u, s, _ = truncated_svd(anomalies, rank=rank, energy=energy, rtol=rtol)
        elif method == "randomized":
            if rank is None:
                raise ValueError("randomized SVD requires an explicit rank")
            from repro.util.linalg import randomized_svd

            u, s, _ = randomized_svd(anomalies, rank=rank, rng=rng)
            if energy is not None:
                power = np.cumsum(s**2)
                keep = int(np.searchsorted(power, energy * power[-1]) + 1)
                u, s = u[:, :keep], s[:keep]
        else:
            raise ValueError(f"unknown SVD method {method!r}")
        return cls(modes=u, sigmas=s, n_samples=n_cols)


class IncrementalSubspaceEstimator:
    """Warm-started subspace estimation over a growing column stream.

    The differ->SVD hot path re-estimated the error subspace from
    scratch at every checkpoint -- ``O(n N^2)`` each time, "a lot of
    memory and time, especially for large N" (paper Sec 4.1).  This
    estimator instead carries the previous checkpoint's factorization
    and folds in only the columns that arrived since:

    - **rank update** (:func:`repro.util.linalg.svd_rank_update`) when
      the batch of new columns is small: ``O(n (p + k)^2)``, exact up to
      the energy already discarded by truncation;
    - **warm-started sketch**
      (:func:`repro.util.linalg.warm_randomized_svd`) when the batch is
      large: the previous basis seeds the range finder, so one power
      iteration replaces a full dense SVD;
    - **exact fallback** (:func:`repro.util.linalg.truncated_svd`)
      whenever the *accuracy guard* trips: the estimator tracks the
      energy its carried factorization has discarded since the last
      exact factorization; when that exceeds ``guard_tol`` times the
      energy the carry retains, the next update recomputes from scratch
      instead of compounding drift.

    The guard is a *drift backstop*, not a per-checkpoint error bound:
    a stationary noise floor (which truncation discards by design, and
    which any rigorous cheap bound would flag) does not trip it at the
    default setting.  The accuracy contract is empirical and
    test-enforced (``docs/COVFILE_PROTOCOL.md``): on decaying spectra
    the retained singular values match :func:`~repro.util.linalg.thin_svd`
    to a relative 1e-6; with a heavy noise floor the documented
    tolerance is 1e-2 of the leading singular value (typically ~1e-3),
    tightened by carrying a larger ``rank_buffer``.

    Columns are *raw* (unscaled) anomalies; pass the snapshot's
    ``1/sqrt(N-1)`` factor as ``scale`` and it is applied to the singular
    values only -- this is why the incremental path works at all: the
    scaled matrix changes in every column as N grows, the raw matrix
    only ever grows on the right.

    Parameters
    ----------
    rank:
        Final subspace rank cap (as in :meth:`ErrorSubspace.from_anomalies`).
    energy:
        Retained-variance fraction cut applied to the final subspace.
    rank_buffer:
        Extra modes carried internally beyond ``rank`` so truncation
        error stays below the guard (working rank = rank + rank_buffer).
    guard_tol:
        Maximum tolerated ratio of energy discarded (since the last
        exact factorization) to energy retained before an exact
        recompute; ``inf`` disables the backstop (see
        ``docs/COVFILE_PROTOCOL.md``).
    warm_batch_factor:
        Batches larger than ``warm_batch_factor * working_rank`` use the
        warm-started sketch instead of the rank update.
    rng:
        Sketch generator for the warm-started randomized path.
    """

    def __init__(
        self,
        rank: int | None = None,
        energy: float | None = None,
        rank_buffer: int = 16,
        guard_tol: float = 1.0,
        warm_batch_factor: float = 4.0,
        rng: np.random.Generator | None = None,
    ):
        if rank is not None and rank < 1:
            raise ValueError(f"rank must be >= 1, got {rank}")
        if rank_buffer < 0:
            raise ValueError("rank_buffer must be >= 0")
        if guard_tol < 0.0:
            raise ValueError(f"guard_tol must be >= 0, got {guard_tol}")
        if warm_batch_factor <= 0:
            raise ValueError("warm_batch_factor must be > 0")
        self.rank = rank
        self.energy = energy
        self.rank_buffer = int(rank_buffer)
        self.guard_tol = float(guard_tol)
        self.warm_batch_factor = float(warm_batch_factor)
        self.rng = rng
        self._u: np.ndarray | None = None
        self._s: np.ndarray | None = None
        self._count = 0
        self._frob2 = 0.0  # exact running ||A_raw||_F^2 over all columns seen
        self._discarded = 0.0  # energy shed since the last exact factorization
        self.last_path: str | None = None  # "exact" | "update" | "warm" | "guard"

    # -- internals ---------------------------------------------------------

    def _working_rank(self, count: int) -> int:
        cap = count if self.rank is None else self.rank + self.rank_buffer
        return max(1, min(cap, count))

    def _guard_tripped(self) -> bool:
        if self._s is None:
            return False
        retained = float(np.sum(self._s**2))
        if retained <= 0.0:
            return self._discarded > 0.0
        return self._discarded > self.guard_tol * retained

    def _exact(self, columns: np.ndarray, keep: int) -> None:
        u, s, _ = thin_svd(columns)
        self._u, self._s = u[:, :keep], s[:keep]
        # The tail cut here is the unavoidable working-rank truncation,
        # not drift: the guard meters what accumulates on top of it.
        self._discarded = 0.0

    # -- the one public operation ------------------------------------------

    def update(
        self, columns: np.ndarray, count: int | None = None, scale: float = 1.0
    ) -> ErrorSubspace:
        """Fold the columns newly appended since the last call; return the subspace.

        Parameters
        ----------
        columns:
            Raw anomaly matrix ``(n, count)``.  Must be append-only with
            respect to the previous call: the first ``count_prev``
            columns are assumed bit-identical to what was already folded
            in (the accumulator/column-store contract).  A shrinking or
            reshaped stream triggers a from-scratch recompute.
        count:
            Number of valid columns (defaults to ``columns.shape[1]``).
        scale:
            Factor applied to the singular values (``1/sqrt(count-1)``
            for covariance normalization).
        """
        columns = np.asarray(columns)
        if columns.ndim != 2:
            raise ValueError(f"columns must be 2-D, got shape {columns.shape}")
        if count is None:
            count = columns.shape[1]
        if count < 2 or count > columns.shape[1]:
            raise ValueError(
                f"count {count} invalid for columns of shape {columns.shape}"
            )
        keep = self._working_rank(count)
        restart = (
            self._u is None
            or count < self._count
            or self._u.shape[0] != columns.shape[0]
        )
        if restart:
            self._frob2 = float(np.einsum("ij,ij->", columns[:, :count],
                                          columns[:, :count]))
            self._exact(columns[:, :count], keep)
            self.last_path = "exact"
        else:
            new = columns[:, self._count : count]
            if new.shape[1]:
                self._frob2 += float(np.einsum("ij,ij->", new, new))
            if self._guard_tripped():
                self._exact(columns[:, :count], keep)
                self.last_path = "guard"
            elif new.shape[1] == 0:
                self.last_path = "update"
            elif new.shape[1] > self.warm_batch_factor * keep:
                u, s, _ = warm_randomized_svd(
                    columns[:, :count], keep, basis=self._u, rng=self.rng
                )
                self._u, self._s = u, s
                # A warm sketch refactorizes the full matrix, so carried
                # drift does not compound through it; its own error is
                # bounded by oversampling + power iteration and checked
                # against thin_svd in the tests.
                self._discarded = 0.0
                self.last_path = "warm"
            else:
                u, s = svd_rank_update(self._u, self._s, new)
                self._discarded += float(np.sum(s[keep:] ** 2))
                self._u, self._s = u[:, :keep], s[:keep]
                self.last_path = "update"
        self._count = count
        u, s = self._u, self._s * scale
        # Final rank/energy cut, mirroring truncated_svd's composition.
        final = s.size
        if self.energy is not None:
            power = np.cumsum(s**2)
            total = power[-1] if power.size else 0.0
            final = 1 if total == 0 else int(np.searchsorted(power, self.energy * total) + 1)
        if self.rank is not None:
            final = min(final, self.rank)
        final = max(1, min(final, s.size))
        return ErrorSubspace(modes=u[:, :final], sigmas=s[:final], n_samples=count)

    def reset(self) -> None:
        """Forget the carried factorization (new forecast cycle)."""
        self._u = None
        self._s = None
        self._count = 0
        self._frob2 = 0.0
        self._discarded = 0.0
        self.last_path = None
