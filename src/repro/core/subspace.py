"""Error subspaces: the central ESSE data structure.

An error subspace is a rank-p factorization of the (normalized) error
covariance,

    P ≈ E diag(sigma^2) E^T,

with ``E`` an ``(n, p)`` matrix of orthonormal *error modes* and ``sigma``
the per-mode standard deviations.  ESSE "is based on a characterization and
prediction of the largest uncertainties ... carried out by evolving an
error subspace of variable size" (paper abstract): p changes in time as the
convergence criterion dictates.

All subspaces here live in *normalized* (non-dimensional) state
coordinates -- see :meth:`repro.core.state.FieldLayout.normalize` -- so the
SVD treats velocity, interface and tracer errors on a common footing.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.util.linalg import thin_svd, truncated_svd


@dataclass(frozen=True)
class ErrorSubspace:
    """A rank-p error subspace (normalized coordinates).

    Attributes
    ----------
    modes:
        Orthonormal columns, shape ``(n, p)``.
    sigmas:
        Per-mode standard deviations, shape ``(p,)``, descending, >= 0.
    n_samples:
        Number of ensemble members that produced the estimate (0 for
        prescribed subspaces).
    """

    modes: np.ndarray
    sigmas: np.ndarray
    n_samples: int = 0

    def __post_init__(self):
        modes = np.asarray(self.modes, dtype=np.float64)
        sigmas = np.asarray(self.sigmas, dtype=np.float64)
        if modes.ndim != 2:
            raise ValueError(f"modes must be 2-D, got shape {modes.shape}")
        if sigmas.ndim != 1 or sigmas.size != modes.shape[1]:
            raise ValueError(
                f"sigmas shape {sigmas.shape} does not match {modes.shape[1]} modes"
            )
        if np.any(sigmas < 0):
            raise ValueError("sigmas must be non-negative")
        if np.any(np.diff(sigmas) > 1e-12):
            raise ValueError("sigmas must be sorted descending")
        object.__setattr__(self, "modes", modes)
        object.__setattr__(self, "sigmas", sigmas)

    # -- basic properties -------------------------------------------------

    @property
    def rank(self) -> int:
        """Subspace dimension p."""
        return self.modes.shape[1]

    @property
    def state_dim(self) -> int:
        """State dimension n."""
        return self.modes.shape[0]

    @property
    def variances(self) -> np.ndarray:
        """Per-mode variances sigma^2."""
        return self.sigmas**2

    @property
    def total_variance(self) -> float:
        """tr(P) within the subspace."""
        return float(np.sum(self.sigmas**2))

    # -- covariance actions ------------------------------------------------

    def covariance_action(self, vector: np.ndarray) -> np.ndarray:
        """Apply ``P = E diag(s^2) E^T`` to a vector without forming P."""
        vector = np.asarray(vector)
        if vector.shape != (self.state_dim,):
            raise ValueError(
                f"vector shape {vector.shape} != ({self.state_dim},)"
            )
        return self.modes @ (self.variances * (self.modes.T @ vector))

    def variance_field(self) -> np.ndarray:
        """Pointwise variance diag(P), shape ``(n,)``.

        This is what the paper's Figs 5-6 map (as standard deviations).
        """
        return np.einsum("ij,j,ij->i", self.modes, self.variances, self.modes)

    def sample_coefficients(
        self, count: int, rng: np.random.Generator
    ) -> np.ndarray:
        """Draw ``count`` coefficient vectors ~ N(0, diag(sigma^2)).

        Shape ``(count, p)``; ``modes @ coeffs[j]`` is one state perturbation.
        """
        if count < 0:
            raise ValueError("count must be >= 0")
        return rng.standard_normal((count, self.rank)) * self.sigmas[None, :]

    def truncate(self, rank: int | None = None, energy: float | None = None) -> "ErrorSubspace":
        """A lower-rank copy keeping the dominant modes."""
        if rank is None and energy is None:
            raise ValueError("pass rank= or energy=")
        keep = self.rank
        if energy is not None:
            if not 0.0 < energy <= 1.0:
                raise ValueError("energy must be in (0, 1]")
            power = np.cumsum(self.variances)
            total = power[-1] if power.size else 0.0
            keep = 1 if total == 0 else int(np.searchsorted(power, energy * total) + 1)
        if rank is not None:
            keep = min(keep, max(int(rank), 1))
        keep = min(keep, self.rank)
        return ErrorSubspace(
            modes=self.modes[:, :keep],
            sigmas=self.sigmas[:keep],
            n_samples=self.n_samples,
        )

    # -- persistence ---------------------------------------------------------

    def save(self, path: str | Path) -> None:
        """Write the subspace to an ``.npz`` file."""
        np.savez_compressed(
            path, modes=self.modes, sigmas=self.sigmas, n_samples=self.n_samples
        )

    @classmethod
    def load(cls, path: str | Path) -> "ErrorSubspace":
        """Read a subspace written by :meth:`save`."""
        with np.load(path) as data:
            return cls(
                modes=data["modes"],
                sigmas=data["sigmas"],
                n_samples=int(data["n_samples"]),
            )

    # -- constructors ----------------------------------------------------------

    @classmethod
    def from_anomalies(
        cls,
        anomalies: np.ndarray,
        rank: int | None = None,
        energy: float | None = None,
        rtol: float = 1e-10,
        method: str = "lapack",
        rng: np.random.Generator | None = None,
    ) -> "ErrorSubspace":
        """Estimate a subspace from an ``(n, N)`` matrix of scaled anomalies.

        The columns must already include the ``1/sqrt(N-1)`` factor (see
        :class:`repro.core.covariance.AnomalyAccumulator`), so the singular
        values are directly the error standard deviations.

        Parameters
        ----------
        method:
            ``"lapack"`` (exact thin SVD) or ``"randomized"`` (sketching;
            the scalable answer to the paper's large-N SVD concern --
            requires ``rank``).
        rng:
            Sketch generator for the randomized method.
        """
        anomalies = np.asarray(anomalies)
        if anomalies.ndim != 2:
            raise ValueError("anomalies must be (n, N)")
        n_cols = anomalies.shape[1]
        if n_cols < 2:
            raise ValueError("need at least 2 anomaly columns")
        if method == "lapack":
            u, s, _ = truncated_svd(anomalies, rank=rank, energy=energy, rtol=rtol)
        elif method == "randomized":
            if rank is None:
                raise ValueError("randomized SVD requires an explicit rank")
            from repro.util.linalg import randomized_svd

            u, s, _ = randomized_svd(anomalies, rank=rank, rng=rng)
            if energy is not None:
                power = np.cumsum(s**2)
                keep = int(np.searchsorted(power, energy * power[-1]) + 1)
                u, s = u[:, :keep], s[:keep]
        else:
            raise ValueError(f"unknown SVD method {method!r}")
        return cls(modes=u, sigmas=s, n_samples=n_cols)
