"""Subspace convergence criterion.

Paper Sec 3.1: "A convergence criterion compares error subspaces of
different sizes.  Hence the dimensions of the ensemble and error subspace
vary in time in accord with data and dynamics."

Following the similarity-coefficient construction of Lermusiaux & Robinson
(1999), two weighted subspaces ``(E1, s1)`` and ``(E2, s2)`` are compared
through the nuclear norm of the weighted overlap,

    rho = || diag(s1) E1^T E2 diag(s2) ||_*  /  (||s1||_2 ||s2||_2),

which is 1 exactly when the subspaces span the same space *and* weight it
with proportional spectra, and decreases toward 0 as dominant directions
disagree.  (von Neumann's trace inequality bounds the numerator by the
product of Frobenius norms, so rho is always in [0, 1].)
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.linalg

from repro.core.subspace import ErrorSubspace


def similarity_coefficient(a: ErrorSubspace, b: ErrorSubspace) -> float:
    """The weighted subspace similarity rho in [0, 1]."""
    if a.state_dim != b.state_dim:
        raise ValueError(
            f"subspaces live in different state spaces: {a.state_dim} vs {b.state_dim}"
        )
    if a.rank == 0 or b.rank == 0:
        raise ValueError("cannot compare empty subspaces")
    overlap = (a.sigmas[:, None] * (a.modes.T @ b.modes)) * b.sigmas[None, :]
    nuclear = float(np.sum(scipy.linalg.svd(overlap, compute_uv=False)))
    denom = float(np.linalg.norm(a.sigmas) * np.linalg.norm(b.sigmas))
    if denom == 0.0:
        raise ValueError("cannot compare zero-variance subspaces")
    return min(nuclear / denom, 1.0)


@dataclass
class ConvergenceCriterion:
    """Sequential convergence test over growing ensembles.

    Parameters
    ----------
    tolerance:
        Declare convergence when rho(previous, current) >= tolerance.
    min_checks:
        Require at least this many successive comparisons before
        convergence can be declared (guards against a lucky first pair).

    Notes
    -----
    The criterion is stateful: feed it each successive subspace estimate
    with :meth:`update`; it records the similarity trace, which the
    benchmarks plot against ensemble size (the paper's Fig 2 convergence
    loop).
    """

    tolerance: float = 0.97
    min_checks: int = 1

    def __post_init__(self):
        if not 0.0 < self.tolerance <= 1.0:
            raise ValueError(f"tolerance must be in (0, 1], got {self.tolerance}")
        if self.min_checks < 1:
            raise ValueError("min_checks must be >= 1")
        self._previous: ErrorSubspace | None = None
        self.history: list[tuple[int, float]] = []

    @property
    def converged(self) -> bool:
        """Whether the last :meth:`update` declared convergence."""
        if len(self.history) < self.min_checks:
            return False
        return all(
            rho >= self.tolerance for _, rho in self.history[-self.min_checks :]
        )

    def update(
        self, subspace: ErrorSubspace, count: int | None = None
    ) -> float | None:
        """Compare against the previous estimate; returns rho (None first time).

        Parameters
        ----------
        subspace:
            The new estimate.
        count:
            Ensemble size to record in the history (defaults to
            ``subspace.n_samples``).  The parallel SVD worker passes the
            snapshot count explicitly so that history entries name the
            published ensemble size even when one snapshot satisfies
            several growth checkpoints at once.
        """
        rho = None
        if self._previous is not None:
            rho = similarity_coefficient(self._previous, subspace)
            self.history.append(
                (subspace.n_samples if count is None else int(count), rho)
            )
        self._previous = subspace
        return rho

    def reset(self) -> None:
        """Forget all history (new forecast cycle)."""
        self._previous = None
        self.history.clear()
