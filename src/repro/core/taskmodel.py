"""Shared task-execution vocabulary for the execution layers.

Table 1 of the paper gives the single-task CPU times on the local
cluster's Opteron 250 reference node; both execution layers consume
them -- the sched simulator to calibrate its clusters and Grid/EC2
site models, and the workflow DAG analysis as default task durations.
They live in ``core`` (not ``sched``) so that ``workflow`` and ``sched``
can both read them without importing each other: this module replaced
the last ``workflow -> sched`` edge, making the package DAG (REP005)
cycle-free.  :class:`DegradedEnsembleWarning` lives here for the same
reason: both the workflow task pools and the core tiled analysis raise
it, and ``core`` must not import ``workflow``.
"""

from __future__ import annotations


class DegradedEnsembleWarning(UserWarning):
    """Tasks were lost terminally; statistics come from survivors only.

    Ensemble methods are sensitive to member loss in high dimensions, so
    degradation is surfaced loudly rather than absorbed silently -- see
    ``docs/FAILURE_MODEL.md`` for the semantics.  Raised by the member
    pool (lost forecast members) and by the tiled analysis (tiles that
    keep their prior after retries are exhausted).
    """


#: Measured single-task reference times on the local Opteron 250 (Table 1).
REFERENCE_PERT_SECONDS = 6.21
REFERENCE_PEMODEL_SECONDS = 1531.33
#: Acoustic singletons executed "for approximately 3 minutes" (Sec 5.2.1).
REFERENCE_ACOUSTIC_SECONDS = 180.0


def reference_task_times() -> dict[str, float]:
    """Reference CPU seconds per task kind on the local cluster."""
    return {
        "pert": REFERENCE_PERT_SECONDS,
        "pemodel": REFERENCE_PEMODEL_SECONDS,
        "acoustic": REFERENCE_ACOUSTIC_SECONDS,
    }
