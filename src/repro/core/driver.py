"""The ESSE driver: the full Fig 2 algorithm in one place.

One forecast-and-assimilation cycle is:

1. perturb the mean state with the current error subspace (Sec 3.1 i),
2. run the stochastic forecast ensemble in stages (ii),
3. continuously accumulate member-minus-central anomalies (iii),
4. SVD the anomaly matrix and test subspace convergence, enlarging the
   ensemble N -> N2 -> ... up to Nmax or until the forecast deadline (iv),
5. assimilate the observation batch with the converged subspace (v).

This module is the *algorithmic* implementation with a pluggable parallel
mapper; :mod:`repro.workflow` re-expresses the same steps as the paper's
serial (Fig 3) and many-task (Fig 4) file-based workflows.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.core.assimilation import AnalysisResult, ESSEAnalysis
from repro.core.convergence import ConvergenceCriterion
from repro.core.covariance import AnomalyAccumulator
from repro.core.ensemble import EnsembleRunner, MemberResult
from typing import TYPE_CHECKING

from repro.core.perturbation import PerturbationGenerator
from repro.core.subspace import ErrorSubspace
from repro.telemetry.spans import NULL_RECORDER

if TYPE_CHECKING:  # avoid core <-> obs/ocean import cycles; hints only
    from repro.obs.operators import ObservationOperator
    from repro.ocean.model import ModelState, PEModel


@dataclass(frozen=True)
class ESSEConfig:
    """Tuning of one ESSE cycle.

    Parameters
    ----------
    initial_ensemble_size:
        First-stage ensemble size N.
    growth_factor:
        Stage growth N -> ceil(N * growth_factor) (paper: "increase N to
        N2, up to some maximal value Nmax").
    max_ensemble_size:
        Nmax: hard ceiling on members.
    convergence_tolerance:
        Similarity-coefficient threshold for convergence.
    max_subspace_rank:
        Cap on retained error modes.
    svd_energy:
        Retained variance fraction in each SVD snapshot.
    deadline_seconds:
        Tmax: wall-clock budget for the ensemble stage (None = unlimited);
        "until the time Tmax available for the forecast expires" (Sec 4).
    inflation:
        Covariance inflation handed to the analysis.
    svd_method:
        ``"lapack"`` (exact) or ``"randomized"`` (sketching; scales to the
        paper's 1000-10000-member ensembles).
    svd_warm_start:
        Reuse the previous checkpoint's factorization for each new SVD
        (:class:`~repro.core.subspace.IncrementalSubspaceEstimator`):
        each checkpoint costs ``O(n N k_new)`` instead of a full
        recompute.  Drift is backstopped by ``svd_guard_tol``.
    svd_rank_buffer:
        Extra modes the incremental estimator carries beyond
        ``max_subspace_rank`` to keep truncation error small between
        exact refreshes.
    svd_guard_tol:
        Discarded-to-retained energy ratio that triggers the estimator's
        exact recompute fallback (a drift backstop; see
        ``docs/COVFILE_PROTOCOL.md`` for the accuracy contract).
    """

    initial_ensemble_size: int = 16
    growth_factor: float = 2.0
    max_ensemble_size: int = 128
    convergence_tolerance: float = 0.97
    max_subspace_rank: int = 60
    svd_energy: float = 0.999
    deadline_seconds: float | None = None
    inflation: float = 1.0
    svd_method: str = "lapack"
    svd_warm_start: bool = True
    svd_rank_buffer: int = 16
    svd_guard_tol: float = 1.0

    def __post_init__(self):
        if self.initial_ensemble_size < 2:
            raise ValueError("initial ensemble size must be >= 2")
        if self.growth_factor <= 1.0:
            raise ValueError("growth_factor must exceed 1")
        if self.max_ensemble_size < self.initial_ensemble_size:
            raise ValueError("max_ensemble_size < initial_ensemble_size")
        if self.max_subspace_rank < 1:
            raise ValueError("max_subspace_rank must be >= 1")
        if self.svd_method not in ("lapack", "randomized"):
            raise ValueError(f"unknown svd_method {self.svd_method!r}")
        if self.svd_rank_buffer < 0:
            raise ValueError("svd_rank_buffer must be >= 0")
        if self.svd_guard_tol < 0.0:
            raise ValueError("svd_guard_tol must be >= 0")

    def subspace_estimator(self, rng: np.random.Generator | None = None):
        """Build the warm-started estimator this config describes.

        Returns None when ``svd_warm_start`` is off, or when
        ``svd_method="randomized"`` was explicitly requested (a cold
        sketch per checkpoint is its own documented trade-off; warm
        starting accelerates the exact path).  Callers fall back to the
        from-scratch :meth:`ErrorSubspace.from_anomalies` path.
        """
        if not self.svd_warm_start or self.svd_method == "randomized":
            return None
        from repro.core.subspace import IncrementalSubspaceEstimator

        return IncrementalSubspaceEstimator(
            rank=self.max_subspace_rank,
            energy=self.svd_energy,
            rank_buffer=self.svd_rank_buffer,
            guard_tol=self.svd_guard_tol,
            rng=rng,
        )

    def stage_sizes(self) -> list[int]:
        """Cumulative ensemble sizes of the growth stages (N, N2, ..., Nmax)."""
        sizes = [self.initial_ensemble_size]
        while sizes[-1] < self.max_ensemble_size:
            nxt = min(
                int(np.ceil(sizes[-1] * self.growth_factor)),
                self.max_ensemble_size,
            )
            sizes.append(nxt)
        return sizes


@dataclass
class ForecastResult:
    """Outcome of the ensemble/convergence stage."""

    central: ModelState
    subspace: ErrorSubspace
    ensemble_size: int
    failed_members: tuple[int, ...]
    convergence_history: tuple[tuple[int, float], ...]
    converged: bool
    member_forecasts: np.ndarray  # (N_ok, n) physical units
    member_ids: tuple[int, ...]
    wall_seconds: float = 0.0

    @property
    def failure_count(self) -> int:
        """Members that crashed or timed out (tolerated)."""
        return len(self.failed_members)


class ESSEDriver:
    """Runs ESSE forecast/assimilation cycles on a PE model.

    Parameters
    ----------
    model:
        Base (deterministic) model.
    config:
        ESSE tuning.
    root_seed:
        Experiment seed (member perturbations and model noise derive from
        it).
    telemetry:
        A :class:`~repro.telemetry.spans.TraceRecorder` that receives
        stage/SVD/assimilation spans and supplies the clock for the Tmax
        deadline check.  The default records nothing.
    analysis:
        The analysis backend :meth:`assimilate` uses: any object with the
        ``update(mean, subspace, operator) -> AnalysisResult`` contract,
        e.g. a :class:`~repro.core.assimilation.TiledESSEAnalysis`.  The
        default is the global :class:`ESSEAnalysis` with the config's
        inflation (see ``config.py``'s ``assimilation`` section for
        declarative backend selection).
    """

    def __init__(
        self,
        model: PEModel,
        config: ESSEConfig | None = None,
        root_seed: int = 0,
        telemetry=None,
        analysis=None,
    ):
        self.model = model
        self.config = config if config is not None else ESSEConfig()
        self.root_seed = int(root_seed)
        self.telemetry = telemetry if telemetry is not None else NULL_RECORDER
        self.analysis = (
            analysis
            if analysis is not None
            else ESSEAnalysis(model.layout, inflation=self.config.inflation)
        )

    # -- forecast stage -----------------------------------------------------

    def forecast(
        self,
        mean_state: ModelState,
        subspace: ErrorSubspace,
        duration: float,
        mapper: Callable | None = None,
        stochastic: bool = True,
    ) -> ForecastResult:
        """Ensemble uncertainty forecast with adaptive sizing (Fig 2 i-iv).

        Parameters
        ----------
        mean_state:
            Current estimate of the ocean state.
        subspace:
            Error subspace describing current uncertainty.
        duration:
            Forecast horizon (s).
        mapper:
            Optional parallel ``map(fn, iterable)`` used for member runs.
        stochastic:
            Disable to run a deterministic (no model-error) ensemble.
        """
        clock = self.telemetry.clock
        started = clock()
        cfg = self.config
        perturber = PerturbationGenerator(
            self.model.layout, subspace, root_seed=self.root_seed
        )
        runner = EnsembleRunner(
            self.model, perturber, duration, self.root_seed, stochastic=stochastic
        )
        failed: list[int] = []
        forecasts: list[np.ndarray] = []
        ids: list[int] = []
        next_index = 0
        current = None
        with self.telemetry.span("driver.forecast") as forecast_span:
            with self.telemetry.span("central_forecast"):
                central = runner.central_forecast(mean_state)
            accumulator = AnomalyAccumulator(
                self.model.layout, self.model.to_vector(central)
            )
            criterion = ConvergenceCriterion(tolerance=cfg.convergence_tolerance)
            estimator = cfg.subspace_estimator(
                rng=np.random.default_rng(self.root_seed)
            )
            for stage_target in cfg.stage_sizes():
                batch = range(next_index, stage_target)
                next_index = stage_target
                with self.telemetry.span("driver.stage", size=len(batch)):
                    results = runner.run_members(mean_state, batch, mapper=mapper)
                for res in results:
                    if res.ok:
                        accumulator.add_member(res.member_index, res.forecast)
                        forecasts.append(res.forecast)
                        ids.append(res.member_index)
                    else:
                        failed.append(res.member_index)
                if accumulator.count < 2:
                    continue
                with self.telemetry.span(
                    "driver.svd", count=accumulator.count
                ) as svd_span:
                    if estimator is not None:
                        view = accumulator.view()
                        current = estimator.update(
                            view.columns, view.count, view.scale
                        )
                        svd_span.set(path=estimator.last_path)
                    else:
                        current = ErrorSubspace.from_anomalies(
                            accumulator.matrix(),
                            rank=cfg.max_subspace_rank,
                            energy=cfg.svd_energy,
                            method=cfg.svd_method,
                            rng=np.random.default_rng(self.root_seed),
                        )
                    rho = criterion.update(current)
                    svd_span.set(rank=current.rank)
                self.telemetry.event(
                    "convergence_check",
                    count=accumulator.count,
                    rho=rho,
                    converged=criterion.converged,
                )
                if criterion.converged:
                    break
                if (
                    cfg.deadline_seconds is not None
                    and clock() - started > cfg.deadline_seconds
                ):
                    break
            forecast_span.set(
                ensemble_size=accumulator.count, converged=criterion.converged
            )
        if current is None:
            raise RuntimeError(
                f"too few surviving members ({accumulator.count}) for a subspace"
            )
        return ForecastResult(
            central=central,
            subspace=current,
            ensemble_size=accumulator.count,
            failed_members=tuple(failed),
            convergence_history=tuple(criterion.history),
            converged=criterion.converged,
            member_forecasts=np.array(forecasts),
            member_ids=tuple(ids),
            wall_seconds=clock() - started,
        )

    # -- analysis stage ----------------------------------------------------

    def assimilate(
        self,
        forecast: ForecastResult,
        operator: ObservationOperator,
    ) -> AnalysisResult:
        """Fig 2 step (v): assimilate one observation batch."""
        with self.telemetry.span(
            "driver.assimilate",
            rank=forecast.subspace.rank,
            backend=type(self.analysis).__name__,
        ):
            return self.analysis.update(
                self.model.to_vector(forecast.central), forecast.subspace, operator
            )

    def cycle(
        self,
        mean_state: ModelState,
        subspace: ErrorSubspace,
        duration: float,
        operator: ObservationOperator,
        mapper: Callable | None = None,
    ) -> tuple[ModelState, ErrorSubspace, ForecastResult, AnalysisResult]:
        """One full forecast + assimilation cycle.

        Returns
        -------
        (analysis_state, posterior_subspace, forecast_result, analysis_result)
        """
        fc = self.forecast(mean_state, subspace, duration, mapper=mapper)
        an = self.assimilate(fc, operator)
        analysis_state = self.model.from_vector(an.mean, time=fc.central.time)
        return analysis_state, an.subspace, fc, an
