"""Distance-based covariance localization and inflation for the ESSE analysis.

A global Kalman update lets every observation touch every state entry,
which both costs O(n p^2) per analysis and lets sampling noise in the
far-field covariances produce spurious increments.  The LETKF line of
work (Ott et al.; see PAPERS.md) fixes both with *domain localization*:
each region assimilates only nearby observations, with the observation
error variance divided by a distance taper so remote data are smoothly
down-weighted ("R-localization").  This module supplies the pieces the
tiled analysis (:class:`repro.core.assimilation.TiledESSEAnalysis`)
composes:

- taper functions (:class:`GaspariCohnTaper`, :class:`CutoffTaper`) with
  distances measured in grid cells,
- per-region observation selection (:func:`select_observations`),
- covariance inflation models (:class:`MultiplicativeInflation`,
  :class:`AdaptiveInflation`) that compensate the sampling error of a
  finite ensemble.

Everything here is pure numpy on small arrays; nothing draws random
numbers or reads clocks.
"""

from __future__ import annotations

import numpy as np


class GaspariCohnTaper:
    """The Gaspari & Cohn (1999) fifth-order piecewise-rational taper.

    The standard compactly supported correlation function used for
    covariance localization: it is 1 at zero distance, decays like a
    Gaussian of comparable width, and is *exactly* zero beyond the
    support radius -- which is what makes observation selection a hard
    cut rather than a heuristic.

    Parameters
    ----------
    radius:
        Support radius in grid cells: ``weight(d) == 0`` for
        ``d >= radius``.  The polynomial's half-width parameter is
        ``c = radius / 2``.
    """

    def __init__(self, radius: float):
        if radius <= 0:
            raise ValueError(f"taper radius must be positive, got {radius}")
        self.radius = float(radius)

    def __call__(self, distances: np.ndarray) -> np.ndarray:
        """Taper weights in [0, 1] for distances in grid cells."""
        d = np.asarray(distances, dtype=np.float64)
        c = self.radius / 2.0
        r = d / c
        out = np.zeros_like(r)
        near = r <= 1.0
        far = (r > 1.0) & (r < 2.0)
        rn = r[near]
        out[near] = (
            -0.25 * rn**5 + 0.5 * rn**4 + 0.625 * rn**3 - (5.0 / 3.0) * rn**2 + 1.0
        )
        rf = r[far]
        out[far] = (
            (1.0 / 12.0) * rf**5
            - 0.5 * rf**4
            + 0.625 * rf**3
            + (5.0 / 3.0) * rf**2
            - 5.0 * rf
            + 4.0
            - (2.0 / 3.0) / rf
        )
        return np.clip(out, 0.0, 1.0)


class CutoffTaper:
    """Hard 0/1 localization: weight 1 inside ``radius``, 0 at and beyond.

    The cheapest taper; equivalent to plain observation selection with no
    distance weighting.  Useful as a baseline and for tests where the
    smooth taper would obscure seam behaviour.
    """

    def __init__(self, radius: float):
        if radius <= 0:
            raise ValueError(f"taper radius must be positive, got {radius}")
        self.radius = float(radius)

    def __call__(self, distances: np.ndarray) -> np.ndarray:
        """Taper weights: 1 where ``d < radius``, else 0."""
        d = np.asarray(distances, dtype=np.float64)
        return np.where(d < self.radius, 1.0, 0.0)


def make_taper(name: str, radius: float):
    """Build a taper by config name: ``gaspari_cohn``, ``cutoff`` or ``none``.

    Returns None for ``"none"`` (no localization: every observation
    reaches every tile with unit weight).
    """
    if name == "none":
        return None
    if name == "gaspari_cohn":
        return GaspariCohnTaper(radius)
    if name == "cutoff":
        return CutoffTaper(radius)
    raise ValueError(
        f"unknown taper {name!r} (have: gaspari_cohn, cutoff, none)"
    )


def observation_coords(operator) -> np.ndarray:
    """Horizontal grid coordinates ``(m, 2)`` of an operator's observations.

    Column 0 is the ``j`` (row) index, column 1 the ``i`` (column) index.
    Depth levels are ignored: localization here is horizontal only, the
    standard LETKF simplification for strongly stratified flows.
    """
    return np.array(
        [(obs.j, obs.i) for obs in operator.observations], dtype=np.float64
    ).reshape(len(operator.observations), 2)


def select_observations(
    distances: np.ndarray,
    taper=None,
    cutoff: float | None = None,
    min_weight: float = 1e-10,
) -> tuple[np.ndarray, np.ndarray]:
    """Select the observations a region assimilates, with their weights.

    Parameters
    ----------
    distances:
        Distance from each observation to the region, in grid cells.
    taper:
        Optional taper callable; observations keep their taper weight and
        those at (numerically) zero weight are dropped.
    cutoff:
        Optional hard maximum distance applied on top of (or instead of)
        the taper; with neither taper nor cutoff every observation is
        selected at weight 1.
    min_weight:
        Weights below this are treated as zero (a Gaspari-Cohn weight of
        1e-12 would otherwise inflate the local R by 1e12).

    Returns
    -------
    ``(indices, weights)``: selected observation indices (ascending) and
    their R-localization weights in (0, 1].  The local observation error
    variance is ``noise_var[indices] / weights``.
    """
    d = np.asarray(distances, dtype=np.float64)
    if taper is None:
        weights = np.ones_like(d)
        keep = weights > min_weight
    else:
        radius = getattr(taper, "radius", None)
        if radius is not None:
            # Compactly supported taper: evaluate the polynomial only
            # inside the support instead of over the whole batch (the
            # dense-observation hot path; see bench_localized_update).
            inside = d < radius
            weights = np.zeros_like(d)
            weights[inside] = taper(d[inside])
        else:
            weights = taper(d)
        keep = weights > min_weight
    if cutoff is not None:
        keep &= d <= cutoff
    indices = np.flatnonzero(keep)
    return indices, weights[indices]


class MultiplicativeInflation:
    """Fixed multiplicative inflation of the prior mode amplitudes.

    The classic compensation for ensemble sampling error: prior sigmas
    are scaled by a constant ``factor >= 1`` before the update.
    ``factor == 1`` disables inflation.
    """

    def __init__(self, factor: float = 1.0):
        if factor < 1.0:
            raise ValueError(f"inflation factor must be >= 1, got {factor}")
        self._factor = float(factor)

    def factor(
        self,
        innovation: np.ndarray,
        hde: np.ndarray,
        variances: np.ndarray,
        noise_var: np.ndarray,
    ) -> float:
        """The (constant) sigma scale factor for one region's update."""
        return self._factor


class AdaptiveInflation:
    """Innovation-consistency inflation (Anderson/Desroziers style).

    For a statistically consistent filter the innovation magnitude
    satisfies ``E[d^T d] = tr(H P H^T) + tr(R)``.  When the ensemble is
    overconfident the left side exceeds the right; the variance scale

        lambda^2 = (d^T d - tr(R)) / tr(H P H^T)

    restores consistency.  The returned *sigma* factor is ``lambda``
    clipped to ``[min_factor, max_factor]`` -- clipping keeps one noisy
    observation batch from blowing up (or, with ``min_factor >= 1``,
    deflating) the subspace.

    Parameters
    ----------
    min_factor:
        Lower clip for the sigma factor (default 1: never deflate).
    max_factor:
        Upper clip for the sigma factor.
    """

    def __init__(self, min_factor: float = 1.0, max_factor: float = 2.0):
        if min_factor <= 0:
            raise ValueError(f"min_factor must be positive, got {min_factor}")
        if max_factor < min_factor:
            raise ValueError("max_factor must be >= min_factor")
        self.min_factor = float(min_factor)
        self.max_factor = float(max_factor)

    def factor(
        self,
        innovation: np.ndarray,
        hde: np.ndarray,
        variances: np.ndarray,
        noise_var: np.ndarray,
    ) -> float:
        """Sigma scale factor from one region's innovation statistics."""
        innovation = np.asarray(innovation, dtype=np.float64)
        expected_signal = float(np.sum(hde**2 * variances[None, :]))
        if expected_signal <= 0.0 or innovation.size == 0:
            return self.min_factor
        excess = float(innovation @ innovation) - float(np.sum(noise_var))
        lam2 = excess / expected_signal
        lam = np.sqrt(max(lam2, 0.0))
        return float(np.clip(lam, self.min_factor, self.max_factor))


def make_inflation(
    name: str,
    factor: float = 1.0,
    min_factor: float = 1.0,
    max_factor: float = 2.0,
):
    """Build an inflation model by config name.

    ``"multiplicative"`` uses the constant ``factor``;
    ``"adaptive"`` estimates the factor per region from the innovation,
    clipped to ``[min_factor, max_factor]``.
    """
    if name == "multiplicative":
        return MultiplicativeInflation(factor)
    if name == "adaptive":
        return AdaptiveInflation(min_factor=min_factor, max_factor=max_factor)
    raise ValueError(
        f"unknown inflation {name!r} (have: multiplicative, adaptive)"
    )
