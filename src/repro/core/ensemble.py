"""Ensemble forecasting: member specifications and execution.

The ESSE ensemble has unusual properties (paper Sec 4): members are
identified by a *perturbation index*, may complete in any order on
heterogeneous hosts, may fail (tolerated), and the ensemble grows in stages
until the subspace converges.  :class:`EnsembleRunner` encapsulates one
member execution -- perturb, integrate, return the forecast vector -- as a
pure function of (mean state, member index), which both the in-process
driver and the many-task workflow reuse.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable

import numpy as np

from typing import TYPE_CHECKING

from repro.core.perturbation import PerturbationGenerator
from repro.util.rng import member_rng

if TYPE_CHECKING:  # avoid a core <-> ocean import cycle; hints only
    from repro.ocean.model import ModelState, PEModel


@dataclass(frozen=True)
class MemberResult:
    """Outcome of one ensemble-member forecast."""

    member_index: int
    forecast: np.ndarray | None
    error: str | None = None

    @property
    def ok(self) -> bool:
        """True when the member completed."""
        return self.forecast is not None


class EnsembleRunner:
    """Runs perturbed stochastic forecasts for one ESSE cycle.

    Parameters
    ----------
    model:
        The deterministic base model (grid/config/forcing shared by all
        members).
    perturber:
        Initial-condition perturbation generator.
    duration:
        Forecast length (s).
    root_seed:
        Experiment seed; member stochastic forcing derives from it.
    stochastic:
        Whether members run with model-error (Wiener) forcing.
    """

    def __init__(
        self,
        model: PEModel,
        perturber: PerturbationGenerator,
        duration: float,
        root_seed: int,
        stochastic: bool = True,
    ):
        if duration <= 0:
            raise ValueError("forecast duration must be positive")
        self.model = model
        self.perturber = perturber
        self.duration = float(duration)
        self.root_seed = int(root_seed)
        self.stochastic = stochastic

    def central_forecast(self, mean_state: ModelState) -> ModelState:
        """The unperturbed, noise-free central forecast."""
        return self.model.run(mean_state, self.duration)

    def run_member(self, mean_state: ModelState, member_index: int) -> MemberResult:
        """Perturb + integrate one member; failures are captured, not raised.

        "Individual ensemble members are not significant (and their results
        can be ignored if unavailable)" -- paper Sec 4 point 3.
        """
        try:
            mean_vec = self.model.to_vector(mean_state)
            perturbed = self.perturber.member_state(mean_vec, member_index)
            state0 = self.model.from_vector(perturbed, time=mean_state.time)
            if self.stochastic:
                from repro.ocean.stochastic import StochasticForcing

                noise = StochasticForcing(
                    self.model.grid,
                    rng=member_rng(self.root_seed, member_index, purpose="model"),
                )
                model = self.model.with_noise(noise)
            else:
                model = self.model
            final = model.run(state0, self.duration)
            return MemberResult(member_index, model.to_vector(final))
        except Exception as exc:
            return MemberResult(member_index, None, f"{type(exc).__name__}: {exc}")

    def run_members(
        self,
        mean_state: ModelState,
        member_indices: Iterable[int],
        mapper: Callable | None = None,
    ) -> list[MemberResult]:
        """Run a batch of members through an optional parallel mapper."""
        indices = list(member_indices)
        run_map = mapper if mapper is not None else map
        return list(run_map(lambda idx: self.run_member(mean_state, idx), indices))

    def run_members_batched(
        self,
        mean_state: ModelState,
        member_indices: Iterable[int],
    ) -> list[MemberResult]:
        """Run a batch of members in one vectorized ensemble integration.

        Perturbations and stochastic draws use exactly the per-member
        keyed streams of :meth:`run_member`, and the batched operators
        are bit-identical to per-member stepping, so each returned
        forecast vector equals the one :meth:`run_member` would produce
        for that index -- including which members fail and with what
        error (blow-ups are isolated per member, paper Sec 4 point 3).
        """
        from repro.ocean.model import EnsembleState
        from repro.ocean.stochastic import BatchedStochasticForcing

        indices = list(member_indices)
        if not indices:
            return []
        mean_vec = self.model.to_vector(mean_state)
        states = [
            self.model.from_vector(
                self.perturber.member_state(mean_vec, idx), time=mean_state.time
            )
            for idx in indices
        ]
        ensemble = EnsembleState.from_states(states)
        noise = None
        if self.stochastic:
            noise = BatchedStochasticForcing(
                self.model.grid,
                rngs=[
                    member_rng(self.root_seed, idx, purpose="model")
                    for idx in indices
                ],
            )
        final, failed = self.model.run_ensemble(
            ensemble, self.duration, noise=noise
        )
        matrix = self.model.ensemble_to_matrix(final)
        results = []
        for pos, idx in enumerate(indices):
            if pos in failed:
                results.append(MemberResult(idx, None, failed[pos]))
            else:
                results.append(MemberResult(idx, matrix[:, pos].copy()))
        return results
