"""The ESSE analysis step: a Kalman update in the error subspace.

With forecast mean ``x_f``, error subspace ``(E, sigma)`` (normalized
coordinates) and observations ``(H, R, y)``, the update is the classic
minimum-variance analysis restricted to the subspace:

    K   = D E S (H D E)^T [ (H D E) S (H D E)^T + R ]^{-1}
    x_a = x_f + K (y - H x_f)

where ``D`` is the de-normalization diagonal and ``S = diag(sigma^2)``.
The inverse is applied through the Sherman-Morrison-Woodbury identity, so
the cost is O(m p^2 + p^3) for m observations and subspace rank p -- never
an O(m^3) dense solve, which matters at the paper's m = O(10^4 - 10^5)
observation counts.

The posterior subspace comes from the eigendecomposition of the updated
p x p mode covariance -- rank never grows, and posterior variance is never
larger than the prior in any direction (a property the tests assert).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.linalg

from typing import TYPE_CHECKING

from repro.core.state import FieldLayout
from repro.core.subspace import ErrorSubspace

if TYPE_CHECKING:  # avoid a core <-> obs import cycle; used as hints only
    from repro.obs.operators import ObservationOperator


@dataclass(frozen=True)
class AnalysisResult:
    """Output of one ESSE assimilation.

    Attributes
    ----------
    mean:
        Analysis mean state (physical units), shape ``(n,)``.
    subspace:
        Posterior error subspace (normalized coordinates).
    innovation:
        Data-minus-forecast residual, shape ``(m,)``.
    analysis_residual:
        Data-minus-analysis residual, shape ``(m,)``.
    """

    mean: np.ndarray
    subspace: ErrorSubspace
    innovation: np.ndarray
    analysis_residual: np.ndarray

    @property
    def innovation_rms(self) -> float:
        """RMS of the prior residual."""
        return float(np.sqrt(np.mean(self.innovation**2)))

    @property
    def analysis_rms(self) -> float:
        """RMS of the posterior residual (should not exceed the prior's)."""
        return float(np.sqrt(np.mean(self.analysis_residual**2)))


class ESSEAnalysis:
    """Assimilates observation batches into (mean, subspace) estimates.

    Parameters
    ----------
    layout:
        State layout (normalization scales).
    inflation:
        Multiplicative sigma inflation applied to the *prior* subspace
        before the update; compensates sampling error in small ensembles
        (1.0 = none).
    """

    def __init__(self, layout: FieldLayout, inflation: float = 1.0):
        if inflation < 1.0:
            raise ValueError("inflation must be >= 1")
        self.layout = layout
        self.inflation = inflation

    # -- internals ---------------------------------------------------------

    def _observed_modes(
        self, subspace: ErrorSubspace, operator: ObservationOperator
    ) -> np.ndarray:
        """H D E: observe the de-normalized modes, shape ``(m, p)``."""
        scales = self.layout.scales[operator.state_indices]
        return operator.observe_modes(subspace.modes) * scales[:, None]

    def _solve_innovation_cov(
        self,
        hde: np.ndarray,
        variances: np.ndarray,
        noise_var: np.ndarray,
        rhs: np.ndarray,
    ) -> np.ndarray:
        """Apply ``[(HDE) S (HDE)^T + R]^{-1}`` to columns of ``rhs``.

        Woodbury with diagonal R:
        ``S_inv_rhs = R^-1 rhs - R^-1 (HDE) [S^-1 + (HDE)^T R^-1 (HDE)]^-1
        (HDE)^T R^-1 rhs``.
        """
        rhs_2d = rhs if rhs.ndim == 2 else rhs[:, None]
        r_inv = 1.0 / noise_var
        a = hde * r_inv[:, None]  # R^-1 (HDE), (m, p)
        core = np.diag(1.0 / variances) + hde.T @ a  # (p, p)
        rhs_r = rhs_2d * r_inv[:, None]
        out = rhs_r - a @ scipy.linalg.solve(core, hde.T @ rhs_r, assume_a="pos")
        return out if rhs.ndim == 2 else out[:, 0]

    # -- public API -----------------------------------------------------------

    def update(
        self,
        forecast_mean: np.ndarray,
        subspace: ErrorSubspace,
        operator: ObservationOperator,
    ) -> AnalysisResult:
        """One ESSE analysis: mean update + posterior subspace.

        Raises
        ------
        ValueError
            On dimension mismatches or an empty subspace.
        """
        forecast_mean = np.asarray(forecast_mean, dtype=np.float64)
        if forecast_mean.shape != (self.layout.size,):
            raise ValueError(
                f"forecast mean shape {forecast_mean.shape} != ({self.layout.size},)"
            )
        if subspace.rank == 0:
            raise ValueError("cannot assimilate with an empty subspace")
        # Zero-variance modes carry no uncertainty and would make S^-1
        # singular in the Woodbury core; drop them up front.
        positive = subspace.sigmas > 1e-14 * max(float(subspace.sigmas[0]), 1e-300)
        if not np.all(positive):
            if not np.any(positive):
                raise ValueError("subspace has no positive-variance modes")
            subspace = ErrorSubspace(
                modes=subspace.modes[:, positive],
                sigmas=subspace.sigmas[positive],
                n_samples=subspace.n_samples,
            )

        sigmas = subspace.sigmas * self.inflation
        variances = sigmas**2
        hde = self._observed_modes(subspace, operator)

        innovation = operator.innovation(forecast_mean)
        solved = self._solve_innovation_cov(
            hde, variances, operator.noise_var, innovation
        )
        # K d = D E S (HDE)^T solved
        coeffs = variances * (hde.T @ solved)  # (p,)
        mean_increment = self.layout.denormalize(subspace.modes @ coeffs)
        analysis_mean = forecast_mean + mean_increment

        # Posterior mode covariance: S_a = S - S (HDE)^T Sinv (HDE) S
        shd = hde * variances[None, :]  # (HDE) S, (m, p)
        middle = self._solve_innovation_cov(
            hde, variances, operator.noise_var, shd
        )  # Sinv (HDE) S
        s_post = np.diag(variances) - shd.T @ middle
        s_post = 0.5 * (s_post + s_post.T)  # symmetrize round-off
        eigvals, eigvecs = scipy.linalg.eigh(s_post)
        order = np.argsort(eigvals)[::-1]
        eigvals = np.clip(eigvals[order], 0.0, None)
        eigvecs = eigvecs[:, order]
        posterior = ErrorSubspace(
            modes=subspace.modes @ eigvecs,
            sigmas=np.sqrt(eigvals),
            n_samples=subspace.n_samples,
        )
        return AnalysisResult(
            mean=analysis_mean,
            subspace=posterior,
            innovation=innovation,
            analysis_residual=operator.innovation(analysis_mean),
        )

    def update_ensemble(
        self,
        members: np.ndarray,
        subspace: ErrorSubspace,
        operator: ObservationOperator,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Perturbed-observation update of individual members.

        Parameters
        ----------
        members:
            Member states, shape ``(N, n)`` (physical units).
        subspace:
            Prior subspace used for the gain.
        operator:
            Observation batch.
        rng:
            Noise generator for the perturbed observations.

        Returns
        -------
        Updated members, shape ``(N, n)``.
        """
        members = np.asarray(members, dtype=np.float64)
        if members.ndim != 2 or members.shape[1] != self.layout.size:
            raise ValueError(f"members must be (N, {self.layout.size})")
        positive = subspace.sigmas > 1e-14 * max(float(subspace.sigmas[0]), 1e-300)
        if not np.all(positive):
            subspace = ErrorSubspace(
                modes=subspace.modes[:, positive],
                sigmas=subspace.sigmas[positive],
                n_samples=subspace.n_samples,
            )
        sigmas = subspace.sigmas * self.inflation
        variances = sigmas**2
        hde = self._observed_modes(subspace, operator)
        out = np.empty_like(members)
        for j in range(members.shape[0]):
            y_j = operator.perturbed_values(rng)
            d_j = y_j - operator.observe(members[j])
            solved = self._solve_innovation_cov(
                hde, variances, operator.noise_var, d_j
            )
            coeffs = variances * (hde.T @ solved)
            out[j] = members[j] + self.layout.denormalize(subspace.modes @ coeffs)
        return out
