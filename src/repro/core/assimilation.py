"""The ESSE analysis step: a Kalman update in the error subspace.

With forecast mean ``x_f``, error subspace ``(E, sigma)`` (normalized
coordinates) and observations ``(H, R, y)``, the update is the classic
minimum-variance analysis restricted to the subspace:

    K   = D E S (H D E)^T [ (H D E) S (H D E)^T + R ]^{-1}
    x_a = x_f + K (y - H x_f)

where ``D`` is the de-normalization diagonal and ``S = diag(sigma^2)``.
The inverse is applied through the Sherman-Morrison-Woodbury identity, so
the cost is O(m p^2 + p^3) for m observations and subspace rank p -- never
an O(m^3) dense solve, which matters at the paper's m = O(10^4 - 10^5)
observation counts.

The posterior subspace comes from the eigendecomposition of the updated
p x p mode covariance -- rank never grows, and posterior variance is never
larger than the prior in any direction (a property the tests assert).

Two engines share that machinery: :class:`ESSEAnalysis` is the paper's
global update, and :class:`TiledESSEAnalysis` decomposes the same update
into independent grid tiles with distance-tapered observation selection
and per-tile inflation (:mod:`repro.core.localization`,
:mod:`repro.core.tiling`) -- the LETKF-style local analysis that makes
high-dimensional state vectors tractable (see ``docs/ASSIMILATION.md``).
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np
import scipy.linalg

from typing import TYPE_CHECKING

from repro.core.localization import (
    MultiplicativeInflation,
    observation_coords,
    select_observations,
)
from repro.core.state import FieldLayout
from repro.core.subspace import ErrorSubspace
from repro.core.taskmodel import DegradedEnsembleWarning
from repro.core.tiling import TileDecomposition
from repro.telemetry.spans import NULL_RECORDER

if TYPE_CHECKING:  # avoid a core <-> obs import cycle; used as hints only
    from repro.obs.operators import ObservationOperator


def _positive_variance_subspace(subspace: ErrorSubspace) -> ErrorSubspace:
    """Validated mode dropping shared by every update path.

    Zero-variance modes carry no uncertainty and would make ``S^-1``
    singular in the Woodbury core, so they are dropped up front.  An
    empty subspace, or one where *every* mode is below the variance
    floor, cannot support an analysis at all and raises instead of
    silently producing a rank-0 update.

    Raises
    ------
    ValueError
        On an empty subspace or one with no positive-variance modes.
    """
    if subspace.rank == 0:
        raise ValueError("cannot assimilate with an empty subspace")
    positive = subspace.sigmas > 1e-14 * max(float(subspace.sigmas[0]), 1e-300)
    if not np.any(positive):
        raise ValueError("subspace has no positive-variance modes")
    if np.all(positive):
        return subspace
    return ErrorSubspace(
        modes=subspace.modes[:, positive],
        sigmas=subspace.sigmas[positive],
        n_samples=subspace.n_samples,
    )


def _solve_innovation_cov_impl(
    hde: np.ndarray,
    variances: np.ndarray,
    noise_var: np.ndarray,
    rhs: np.ndarray,
) -> np.ndarray:
    """Apply ``[(HDE) S (HDE)^T + R]^{-1}`` to columns of ``rhs``.

    Woodbury with diagonal R:
    ``S_inv_rhs = R^-1 rhs - R^-1 (HDE) [S^-1 + (HDE)^T R^-1 (HDE)]^-1
    (HDE)^T R^-1 rhs``.
    """
    rhs_2d = rhs if rhs.ndim == 2 else rhs[:, None]
    r_inv = 1.0 / noise_var
    a = hde * r_inv[:, None]  # R^-1 (HDE), (m, p)
    core = np.diag(1.0 / variances) + hde.T @ a  # (p, p)
    rhs_r = rhs_2d * r_inv[:, None]
    out = rhs_r - a @ scipy.linalg.solve(core, hde.T @ rhs_r, assume_a="pos")
    return out if rhs.ndim == 2 else out[:, 0]


@dataclass(frozen=True)
class AnalysisResult:
    """Output of one ESSE assimilation.

    Attributes
    ----------
    mean:
        Analysis mean state (physical units), shape ``(n,)``.
    subspace:
        Posterior error subspace (normalized coordinates).
    innovation:
        Data-minus-forecast residual, shape ``(m,)``.
    analysis_residual:
        Data-minus-analysis residual, shape ``(m,)``.
    """

    mean: np.ndarray
    subspace: ErrorSubspace
    innovation: np.ndarray
    analysis_residual: np.ndarray

    @property
    def innovation_rms(self) -> float:
        """RMS of the prior residual."""
        return float(np.sqrt(np.mean(self.innovation**2)))

    @property
    def analysis_rms(self) -> float:
        """RMS of the posterior residual (should not exceed the prior's)."""
        return float(np.sqrt(np.mean(self.analysis_residual**2)))


class ESSEAnalysis:
    """Assimilates observation batches into (mean, subspace) estimates.

    Parameters
    ----------
    layout:
        State layout (normalization scales).
    inflation:
        Multiplicative sigma inflation applied to the *prior* subspace
        before the update; compensates sampling error in small ensembles
        (1.0 = none).
    """

    def __init__(self, layout: FieldLayout, inflation: float = 1.0):
        if inflation < 1.0:
            raise ValueError("inflation must be >= 1")
        self.layout = layout
        self.inflation = inflation

    # -- internals ---------------------------------------------------------

    def _observed_modes(
        self, subspace: ErrorSubspace, operator: ObservationOperator
    ) -> np.ndarray:
        """H D E: observe the de-normalized modes, shape ``(m, p)``."""
        scales = self.layout.scales[operator.state_indices]
        return operator.observe_modes(subspace.modes) * scales[:, None]

    def _solve_innovation_cov(
        self,
        hde: np.ndarray,
        variances: np.ndarray,
        noise_var: np.ndarray,
        rhs: np.ndarray,
    ) -> np.ndarray:
        """Apply ``[(HDE) S (HDE)^T + R]^{-1}`` to columns of ``rhs``."""
        return _solve_innovation_cov_impl(hde, variances, noise_var, rhs)

    # -- public API -----------------------------------------------------------

    def update(
        self,
        forecast_mean: np.ndarray,
        subspace: ErrorSubspace,
        operator: ObservationOperator,
    ) -> AnalysisResult:
        """One ESSE analysis: mean update + posterior subspace.

        Raises
        ------
        ValueError
            On dimension mismatches or an empty subspace.
        """
        forecast_mean = np.asarray(forecast_mean, dtype=np.float64)
        if forecast_mean.shape != (self.layout.size,):
            raise ValueError(
                f"forecast mean shape {forecast_mean.shape} != ({self.layout.size},)"
            )
        subspace = _positive_variance_subspace(subspace)

        sigmas = subspace.sigmas * self.inflation
        variances = sigmas**2
        hde = self._observed_modes(subspace, operator)

        innovation = operator.innovation(forecast_mean)
        solved = self._solve_innovation_cov(
            hde, variances, operator.noise_var, innovation
        )
        # K d = D E S (HDE)^T solved
        coeffs = variances * (hde.T @ solved)  # (p,)
        mean_increment = self.layout.denormalize(subspace.modes @ coeffs)
        analysis_mean = forecast_mean + mean_increment

        # Posterior mode covariance: S_a = S - S (HDE)^T Sinv (HDE) S
        shd = hde * variances[None, :]  # (HDE) S, (m, p)
        middle = self._solve_innovation_cov(
            hde, variances, operator.noise_var, shd
        )  # Sinv (HDE) S
        s_post = np.diag(variances) - shd.T @ middle
        s_post = 0.5 * (s_post + s_post.T)  # symmetrize round-off
        eigvals, eigvecs = scipy.linalg.eigh(s_post)
        order = np.argsort(eigvals)[::-1]
        eigvals = np.clip(eigvals[order], 0.0, None)
        eigvecs = eigvecs[:, order]
        posterior = ErrorSubspace(
            modes=subspace.modes @ eigvecs,
            sigmas=np.sqrt(eigvals),
            n_samples=subspace.n_samples,
        )
        return AnalysisResult(
            mean=analysis_mean,
            subspace=posterior,
            innovation=innovation,
            analysis_residual=operator.innovation(analysis_mean),
        )

    def update_ensemble(
        self,
        members: np.ndarray,
        subspace: ErrorSubspace,
        operator: ObservationOperator,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Perturbed-observation update of individual members.

        Parameters
        ----------
        members:
            Member states, shape ``(N, n)`` (physical units).
        subspace:
            Prior subspace used for the gain.
        operator:
            Observation batch.
        rng:
            Noise generator for the perturbed observations.

        Returns
        -------
        Updated members, shape ``(N, n)``.
        """
        members = np.asarray(members, dtype=np.float64)
        if members.ndim != 2 or members.shape[1] != self.layout.size:
            raise ValueError(f"members must be (N, {self.layout.size})")
        subspace = _positive_variance_subspace(subspace)
        sigmas = subspace.sigmas * self.inflation
        variances = sigmas**2
        hde = self._observed_modes(subspace, operator)
        # Draw the perturbed observations member-by-member so the noise
        # stream order matches the historical per-member loop exactly,
        # then push all N innovations through a single Woodbury solve
        # instead of N solves of the same system.
        perturbed = np.stack(
            [operator.perturbed_values(rng) for _ in range(members.shape[0])],
            axis=1,
        )  # (m, N)
        innovations = perturbed - operator.observe_modes(members.T)  # (m, N)
        solved = self._solve_innovation_cov(
            hde, variances, operator.noise_var, innovations
        )
        coeffs = variances[:, None] * (hde.T @ solved)  # (p, N)
        return members + self.layout.denormalize(subspace.modes @ coeffs).T


@dataclass(frozen=True)
class TileUpdate:
    """The result of one tile's local analysis.

    Attributes
    ----------
    tile_index:
        Index of the tile in the decomposition.
    kept_modes:
        Indices (into the prior mode axis) of the modes the tile's local
        update retained after the local-energy truncation, shape ``(k,)``.
    mean_increment:
        Analysis-minus-forecast increment on the tile's owned state
        entries, *normalized* coordinates, shape ``(n_t,)``.
    anomaly_block:
        Posterior anomaly rows ``(n_t, k)`` for the kept modes (prior
        anomalies contracted by the local update); rows for dropped
        modes keep their prior values.
    n_observations:
        Observations the tile assimilated (after selection).
    inflation_factor:
        Sigma inflation factor the tile's update applied.
    """

    tile_index: int
    kept_modes: np.ndarray
    mean_increment: np.ndarray
    anomaly_block: np.ndarray
    n_observations: int
    inflation_factor: float


def run_tiles_serial(tasks: Sequence[Callable[[], TileUpdate]]) -> list:
    """Default in-process tile runner: run every task in order, fail fast.

    The fault-tolerant alternative is
    :class:`repro.workflow.tilepool.TileTaskPool`, whose ``run`` method
    has the same signature but retries/replaces failing tile tasks and
    returns None for tiles whose retries were exhausted.
    """
    return [task() for task in tasks]


class TiledESSEAnalysis:
    """Localized, tiled ESSE analysis: many small updates instead of one big one.

    The horizontal grid is covered by rectangular tiles
    (:class:`~repro.core.tiling.TileDecomposition`); each tile selects
    the observations within its halo (weighted by a distance taper,
    :mod:`repro.core.localization`), runs the same Woodbury subspace
    update as :class:`ESSEAnalysis` on its *local* dominant modes, and
    the per-tile results are recombined into one seam-consistent
    posterior ``(mean, subspace)``:

    - the mean increments are disjoint scatter-writes (each tile owns its
      state entries exclusively);
    - the posterior covariance is carried as the anomaly matrix
      ``M = E diag(sigma)``; each tile replaces its owned rows by
      ``M_t W_t`` where ``W_t`` is the symmetric square root of the
      local posterior-to-prior mode-covariance ratio with eigenvalues
      clipped to ``[0, 1]`` -- a contraction, so the posterior pointwise
      variance never exceeds the prior anywhere (with unit inflation);
    - one final ``p x p`` eigensolve of ``M^T M`` refactorizes ``M`` into
      orthonormal modes and descending sigmas.

    With a single tile, no taper and default inflation this reproduces
    :meth:`ESSEAnalysis.update` (identical mean; same sigmas and
    covariance, modes up to rotation) -- the equivalence is test-enforced.

    Tile tasks are independent closures executed by ``task_runner``; the
    default runs them serially in-process, and
    :class:`repro.workflow.tilepool.TileTaskPool` runs them with the
    fault-tolerant member-pool semantics (retry with backoff, straggler
    cancel-and-replace, fault injection).  A tile whose retries are
    exhausted keeps its prior state (mean and anomalies) and raises
    :class:`~repro.core.taskmodel.DegradedEnsembleWarning`.

    Parameters
    ----------
    layout:
        State layout (normalization scales).
    grid_shape:
        Horizontal grid shape ``(ny, nx)`` shared by every field.
    tile_shape:
        Nominal tile shape ``(tile_ny, tile_nx)``.
    taper:
        Distance taper for observation selection and R-localization
        (:func:`~repro.core.localization.make_taper`); None selects by
        ``halo`` alone with unit weights.
    halo:
        Hard selection radius in grid cells applied on top of (or, with
        no taper, instead of) the taper support; None means no hard cap.
    inflation:
        Inflation model applied per tile
        (:func:`~repro.core.localization.make_inflation`); default is
        none (multiplicative factor 1).
    local_energy_floor:
        Relative floor for the per-tile mode truncation: a tile keeps the
        modes whose local energy (state block + observation footprint)
        is at least this fraction of the locally dominant mode's.  0
        keeps every mode; small values (0.01-0.05) are what make the
        tiled analysis cheaper than the global one on spatially
        localized subspaces.
    task_runner:
        ``runner(tasks) -> results`` executing the tile closures; None
        entries in the result degrade those tiles to their prior.
    telemetry:
        Span/event recorder (default records nothing).
    metrics:
        Optional :class:`~repro.telemetry.metrics.MetricsRegistry` fed
        tile counters per analysis.
    """

    def __init__(
        self,
        layout: FieldLayout,
        grid_shape: tuple[int, int],
        tile_shape: tuple[int, int] = (16, 16),
        *,
        taper=None,
        halo: float | None = None,
        inflation=None,
        local_energy_floor: float = 0.0,
        task_runner: Callable[[Sequence[Callable]], list] | None = None,
        telemetry=None,
        metrics=None,
    ):
        if not 0.0 <= local_energy_floor < 1.0:
            raise ValueError(
                f"local_energy_floor must be in [0, 1), got {local_energy_floor}"
            )
        if halo is not None and halo < 0:
            raise ValueError(f"halo must be >= 0, got {halo}")
        self.layout = layout
        self.decomposition = TileDecomposition(grid_shape, tile_shape)
        self.taper = taper
        self.halo = halo
        self.inflation = (
            inflation if inflation is not None else MultiplicativeInflation(1.0)
        )
        self.local_energy_floor = float(local_energy_floor)
        self.task_runner = task_runner if task_runner is not None else run_tiles_serial
        self.telemetry = telemetry if telemetry is not None else NULL_RECORDER
        self.metrics = metrics
        # Owned-index partition of the packed state, precomputed once
        # (also validates that every field is gridded on grid_shape).
        self._tile_indices = self.decomposition.state_indices(layout)

    # -- internals ---------------------------------------------------------

    def _make_tile_task(
        self,
        owned: np.ndarray,
        sel: np.ndarray,
        weights: np.ndarray,
        tile_index: int,
        modes: np.ndarray,
        sigmas: np.ndarray,
        hde: np.ndarray,
        noise_var: np.ndarray,
        innovation: np.ndarray,
    ) -> Callable[[], TileUpdate]:
        """One tile's local analysis as an independent, retryable closure."""

        def task() -> TileUpdate:
            hde_local = hde[sel]  # (m_t, p)
            r_local = noise_var[sel] / weights  # R-localization
            innov_local = innovation[sel]
            factor = self.inflation.factor(
                innov_local, hde_local, sigmas**2, r_local
            )
            sig_l = sigmas * factor
            var_l = sig_l**2
            e_owned = modes[owned, :]  # (n_t, p)
            # Local mode truncation: a mode matters to this tile only
            # through its energy in the owned state block or in the
            # observation footprint; the rest is what localization
            # discards, and what makes each tile's solve O(m_t p_t^2).
            score = var_l * (
                np.einsum("ij,ij->j", e_owned, e_owned)
                + np.einsum("ij,ij->j", hde_local, hde_local)
            )
            if self.local_energy_floor > 0.0:
                keep = score >= self.local_energy_floor * float(score.max())
                if not np.any(keep):
                    keep[int(np.argmax(score))] = True
                kept = np.flatnonzero(keep)
            else:
                kept = np.arange(sigmas.size)
            hde_k = hde_local[:, kept]
            var_k = var_l[kept]
            sig_k = sig_l[kept]

            # One factorization serves both the mean update and the
            # posterior covariance: solve against [d | (HDE)S] jointly
            # instead of building the Woodbury core twice.
            shd = hde_k * var_k[None, :]
            joint = _solve_innovation_cov_impl(
                hde_k, var_k, r_local,
                np.concatenate([innov_local[:, None], shd], axis=1),
            )
            solved, middle = joint[:, 0], joint[:, 1:]
            coeffs = var_k * (hde_k.T @ solved)
            increment = e_owned[:, kept] @ coeffs  # normalized coords

            # Local posterior mode covariance, then its prior-relative
            # contraction W = G^{1/2}, G = Sigma^-1 S_post Sigma^-1 with
            # eigenvalues clipped to [0, 1]: applying W to the prior
            # anomaly rows can only shrink them, which is what makes the
            # stitched posterior variance <= prior pointwise.
            s_post = np.diag(var_k) - shd.T @ middle
            s_post = 0.5 * (s_post + s_post.T)
            ratio = s_post / np.outer(sig_k, sig_k)
            eigvals, eigvecs = scipy.linalg.eigh(ratio)
            eigvals = np.clip(eigvals, 0.0, 1.0)
            contraction = (eigvecs * np.sqrt(eigvals)[None, :]) @ eigvecs.T
            anomaly = (e_owned[:, kept] * sig_k[None, :]) @ contraction
            return TileUpdate(
                tile_index=tile_index,
                kept_modes=kept,
                mean_increment=increment,
                anomaly_block=anomaly,
                n_observations=int(sel.size),
                inflation_factor=float(factor),
            )

        return task

    # -- public API --------------------------------------------------------

    def update(
        self,
        forecast_mean: np.ndarray,
        subspace: ErrorSubspace,
        operator: ObservationOperator,
    ) -> AnalysisResult:
        """One tiled ESSE analysis: local updates + seam-consistent stitch.

        Raises
        ------
        ValueError
            On dimension mismatches or an empty subspace.

        Warns
        -----
        DegradedEnsembleWarning
            When tile tasks failed terminally; those tiles keep their
            prior mean and anomalies.
        """
        forecast_mean = np.asarray(forecast_mean, dtype=np.float64)
        if forecast_mean.shape != (self.layout.size,):
            raise ValueError(
                f"forecast mean shape {forecast_mean.shape} != ({self.layout.size},)"
            )
        subspace = _positive_variance_subspace(subspace)
        modes = subspace.modes
        sigmas = subspace.sigmas
        innovation = operator.innovation(forecast_mean)
        with self.telemetry.span(
            "analysis.tiled",
            tiles=self.decomposition.n_tiles,
            rank=subspace.rank,
            obs=operator.size,
        ) as span:
            scales = self.layout.scales[operator.state_indices]
            hde = operator.observe_modes(modes) * scales[:, None]
            coords = observation_coords(operator)

            tasks: list[Callable[[], TileUpdate]] = []
            task_owned: list[np.ndarray] = []
            n_skipped = 0
            all_distances = self.decomposition.distances_to(
                coords[:, 0], coords[:, 1]
            )
            for tile, owned in zip(self.decomposition.tiles, self._tile_indices):
                sel, weights = select_observations(
                    all_distances[tile.index], taper=self.taper, cutoff=self.halo
                )
                if sel.size == 0:
                    n_skipped += 1  # no local data: the prior is the analysis
                    continue
                tasks.append(
                    self._make_tile_task(
                        owned, sel, weights, tile.index,
                        modes, sigmas, hde, operator.noise_var, innovation,
                    )
                )
                task_owned.append(owned)

            results = self.task_runner(tasks)
            if len(results) != len(tasks):
                raise RuntimeError(
                    f"task runner returned {len(results)} results "
                    f"for {len(tasks)} tile tasks"
                )

            # Stitch: disjoint scatter of mean increments and posterior
            # anomaly rows into the prior anomaly matrix M = E diag(sigma).
            anomalies = modes * sigmas[None, :]
            increment_norm = np.zeros(self.layout.size)
            n_failed = 0
            for owned, result in zip(task_owned, results):
                if result is None:
                    n_failed += 1  # degraded: this tile keeps its prior
                    continue
                increment_norm[owned] = result.mean_increment
                anomalies[np.ix_(owned, result.kept_modes)] = result.anomaly_block
            analysis_mean = forecast_mean + self.layout.denormalize(increment_norm)

            # Refactorize M into orthonormal modes / descending sigmas via
            # the p x p Gram eigensolve (rank never grows).
            gram = anomalies.T @ anomalies
            gram = 0.5 * (gram + gram.T)
            eigvals, eigvecs = scipy.linalg.eigh(gram)
            order = np.argsort(eigvals)[::-1]
            eigvals = np.clip(eigvals[order], 0.0, None)
            eigvecs = eigvecs[:, order]
            positive = eigvals > eigvals[0] * 1e-28 if eigvals.size else eigvals > 0
            eigvals = eigvals[positive]
            eigvecs = eigvecs[:, positive]
            sig_post = np.sqrt(eigvals)
            post_modes = (anomalies @ eigvecs) / sig_post[None, :]
            posterior = ErrorSubspace(
                modes=post_modes, sigmas=sig_post, n_samples=subspace.n_samples
            )

            span.set(
                updated=len(tasks) - n_failed,
                skipped=n_skipped,
                degraded=n_failed,
                posterior_rank=posterior.rank,
            )
            if self.metrics is not None:
                self.metrics.counter("analysis.tiles_updated", kind="tile").inc(
                    len(tasks) - n_failed
                )
                self.metrics.counter("analysis.tiles_skipped", kind="tile").inc(
                    n_skipped
                )
                self.metrics.counter("analysis.tiles_degraded", kind="tile").inc(
                    n_failed
                )
        if n_failed:
            warnings.warn(
                f"tiled analysis degraded: {n_failed} tile(s) kept their prior "
                "after tile-task retries were exhausted "
                "(see docs/ASSIMILATION.md)",
                DegradedEnsembleWarning,
                stacklevel=2,
            )
        return AnalysisResult(
            mean=analysis_mean,
            subspace=posterior,
            innovation=innovation,
            analysis_residual=operator.innovation(analysis_mean),
        )
