"""ESSE smoothing: correcting past states with future data.

The ESSE methodology covers "filtering and smoothing via Error Subspace
Statistical Estimation" (paper reference [16], Lermusiaux et al. 2002):
once observations at the forecast time t1 are available, the ensemble's
*cross-time* covariance lets them correct the estimate at the earlier time
t0 as well -- the statistical backbone of reanalysis.

The implementation exploits a property of this repository's ensembles:
member initial conditions are a pure function of (root seed, member
index), so the initial-time anomaly matrix can be *reconstructed exactly*
from the forecast result without having stored it -- the smoother needs no
extra I/O during the forward run, which is exactly how the paper's
file-based workflow would want it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np
import scipy.linalg

from repro.core.driver import ForecastResult
from repro.core.perturbation import PerturbationGenerator
from repro.core.state import FieldLayout
from repro.core.subspace import ErrorSubspace

if TYPE_CHECKING:
    from repro.obs.operators import ObservationOperator


@dataclass(frozen=True)
class SmootherResult:
    """Output of one smoothing update.

    Attributes
    ----------
    smoothed_initial_mean:
        Analysis of the t0 state using the t1 observations (physical
        units).
    initial_subspace:
        Posterior error subspace at t0.
    innovation_rms:
        RMS of the t1 innovation that drove the update.
    """

    smoothed_initial_mean: np.ndarray
    initial_subspace: ErrorSubspace
    innovation_rms: float


class ESSESmoother:
    """One-lag ESSE smoother over a :class:`ForecastResult`.

    Parameters
    ----------
    layout:
        State layout (normalization).
    root_seed:
        The seed the forecast's ensemble ran with (so initial member
        states can be reconstructed).
    inflation:
        Multiplicative anomaly inflation (>= 1).
    """

    def __init__(self, layout: FieldLayout, root_seed: int, inflation: float = 1.0):
        if inflation < 1.0:
            raise ValueError("inflation must be >= 1")
        self.layout = layout
        self.root_seed = int(root_seed)
        self.inflation = inflation

    def _initial_anomalies(
        self,
        initial_mean: np.ndarray,
        initial_subspace: ErrorSubspace,
        member_ids: tuple[int, ...],
    ) -> np.ndarray:
        """Reconstruct the normalized t0 anomaly matrix ``(n, N)/sqrt(N-1)``."""
        perturber = PerturbationGenerator(
            self.layout, initial_subspace, root_seed=self.root_seed
        )
        n = self.layout.size
        cols = np.empty((n, len(member_ids)))
        for c, member in enumerate(member_ids):
            cols[:, c] = self.layout.normalize(perturber.perturbation(member))
        return cols / np.sqrt(len(member_ids) - 1)

    def smooth(
        self,
        initial_mean: np.ndarray,
        initial_subspace: ErrorSubspace,
        forecast: ForecastResult,
        operator: "ObservationOperator",
    ) -> SmootherResult:
        """Update the t0 state with observations taken at forecast time t1.

        Parameters
        ----------
        initial_mean:
            The t0 mean state the forecast started from (physical units).
        initial_subspace:
            The error subspace used to perturb that state.
        forecast:
            Result of :meth:`ESSEDriver.forecast` from that state.
        operator:
            Observation batch valid at the forecast time.
        """
        initial_mean = np.asarray(initial_mean, dtype=np.float64)
        if initial_mean.shape != (self.layout.size,):
            raise ValueError(
                f"initial mean shape {initial_mean.shape} != ({self.layout.size},)"
            )
        if forecast.ensemble_size < 2:
            raise ValueError("smoothing needs an ensemble of >= 2 members")

        # normalized anomaly matrices at both times, same member order
        z0 = self._initial_anomalies(
            initial_mean, initial_subspace, forecast.member_ids
        )
        # forecast-time anomalies from the stored member states; the
        # central ModelState repacks through the layout's field names
        central_vec = self.layout.pack(
            {name: getattr(forecast.central, name) for name in self.layout.names}
        )
        n_members = forecast.member_forecasts.shape[0]
        z1 = np.empty((self.layout.size, n_members))
        for c in range(n_members):
            z1[:, c] = self.layout.normalize(
                forecast.member_forecasts[c] - central_vec
            )
        z1 /= np.sqrt(n_members - 1)
        z0 = z0 * self.inflation
        z1 = z1 * self.inflation

        # observed forecast anomalies G = H D Z1  (m, N)
        scales = self.layout.scales[operator.state_indices]
        g = operator.observe_modes(z1) * scales[:, None]
        innovation = operator.innovation(central_vec)

        # Woodbury solve of (G G^T + R) s = d in member space
        r_inv = 1.0 / operator.noise_var
        a = g * r_inv[:, None]
        core = np.eye(n_members) + g.T @ a
        s = innovation * r_inv - a @ scipy.linalg.solve(
            core, g.T @ (innovation * r_inv), assume_a="pos"
        )

        # cross-time gain: increment0 = D Z0 G^T s
        coeffs = g.T @ s  # (N,)
        smoothed = initial_mean + self.layout.denormalize(z0 @ coeffs)

        # posterior t0 covariance: Z0 (I - G^T Sinv G) Z0^T, re-SVD'd
        middle = g.T @ (
            (g * r_inv[:, None])
            - a @ scipy.linalg.solve(core, g.T @ a, assume_a="pos")
        )
        post = np.eye(n_members) - middle
        post = 0.5 * (post + post.T)
        eigvals, eigvecs = scipy.linalg.eigh(post)
        eigvals = np.clip(eigvals, 0.0, None)
        factor = z0 @ (eigvecs * np.sqrt(eigvals)[None, :])
        u, sig, _ = scipy.linalg.svd(factor, full_matrices=False)
        keep = sig > 1e-12 * (sig[0] if sig.size else 1.0)
        subspace = ErrorSubspace(
            modes=u[:, keep], sigmas=sig[keep], n_samples=n_members
        )
        return SmootherResult(
            smoothed_initial_mean=smoothed,
            initial_subspace=subspace,
            innovation_rms=float(np.sqrt(np.mean(innovation**2))),
        )
