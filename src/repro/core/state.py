"""Augmented state vectors and named-field packing.

ESSE operates on a single augmented state vector ``x`` (paper Eq. B1a)
that concatenates every prognostic field.  :class:`FieldLayout` defines a
stable packing of named, arbitrarily shaped fields into one 1-D float64
vector and back, plus per-field *normalization scales* used to
non-dimensionalize the multivariate error covariance before the SVD (so a
0.1 m interface error and a 0.5 deg C temperature error are comparable, as
in the paper's "normalized matrix").
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class FieldSpec:
    """One named field inside the packed state vector."""

    name: str
    shape: tuple[int, ...]
    scale: float = 1.0

    def __post_init__(self):
        if not self.name:
            raise ValueError("field name must be non-empty")
        if any(int(s) < 1 for s in self.shape):
            raise ValueError(f"field {self.name}: shape must be positive, got {self.shape}")
        if self.scale <= 0:
            raise ValueError(f"field {self.name}: scale must be positive")
        object.__setattr__(self, "shape", tuple(int(s) for s in self.shape))

    @property
    def size(self) -> int:
        """Number of scalar entries in the field."""
        return int(np.prod(self.shape))


class FieldLayout:
    """Packing of named fields into one state vector.

    Parameters
    ----------
    specs:
        Ordered field specifications; the packing order is their order here.

    Examples
    --------
    >>> layout = FieldLayout([FieldSpec("eta", (4, 5), scale=0.1),
    ...                       FieldSpec("temp", (3, 4, 5), scale=0.5)])
    >>> layout.size
    80
    """

    def __init__(self, specs: list[FieldSpec] | tuple[FieldSpec, ...]):
        if not specs:
            raise ValueError("layout needs at least one field")
        names = [s.name for s in specs]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate field names in layout: {names}")
        self.specs = tuple(specs)
        self._offsets: dict[str, tuple[int, int]] = {}
        offset = 0
        for spec in self.specs:
            self._offsets[spec.name] = (offset, offset + spec.size)
            offset += spec.size
        self.size = offset
        # Per-entry normalization vector, precomputed once.
        scales = np.empty(self.size)
        for spec in self.specs:
            lo, hi = self._offsets[spec.name]
            scales[lo:hi] = spec.scale
        self._scales = scales

    @property
    def names(self) -> tuple[str, ...]:
        """Field names in packing order."""
        return tuple(s.name for s in self.specs)

    def spec(self, name: str) -> FieldSpec:
        """The :class:`FieldSpec` for ``name``."""
        for s in self.specs:
            if s.name == name:
                return s
        raise KeyError(f"unknown field {name!r}; layout has {self.names}")

    def slice_of(self, name: str) -> slice:
        """The slice of the packed vector occupied by field ``name``."""
        if name not in self._offsets:
            raise KeyError(f"unknown field {name!r}; layout has {self.names}")
        lo, hi = self._offsets[name]
        return slice(lo, hi)

    def pack(self, fields: dict[str, np.ndarray]) -> np.ndarray:
        """Pack named arrays into one float64 vector.

        Raises on missing/extra fields or shape mismatch -- silent
        mispacking would corrupt every downstream covariance.
        """
        extra = set(fields) - set(self.names)
        if extra:
            raise KeyError(f"unexpected fields {sorted(extra)}")
        out = np.empty(self.size)
        for spec in self.specs:
            if spec.name not in fields:
                raise KeyError(f"missing field {spec.name!r}")
            arr = np.asarray(fields[spec.name], dtype=np.float64)
            if arr.shape != spec.shape:
                raise ValueError(
                    f"field {spec.name!r}: expected shape {spec.shape}, got {arr.shape}"
                )
            lo, hi = self._offsets[spec.name]
            out[lo:hi] = arr.ravel()
        return out

    def pack_many(self, fields: dict[str, np.ndarray]) -> np.ndarray:
        """Pack a batch of named arrays into an ``(size, N)`` column matrix.

        Each array carries a leading member axis: ``(N, *spec.shape)``.
        Column ``j`` of the result is bit-identical to
        ``pack({name: arr[j] for ...})`` -- the vectorized ensemble engine
        relies on this to hand the same columns to the covariance
        accumulator as the per-member path.
        """
        extra = set(fields) - set(self.names)
        if extra:
            raise KeyError(f"unexpected fields {sorted(extra)}")
        counts = {
            name: np.asarray(arr).shape[0] if np.asarray(arr).ndim else -1
            for name, arr in fields.items()
        }
        if len(set(counts.values())) > 1:
            raise ValueError(f"inconsistent member counts per field: {counts}")
        n_members = next(iter(counts.values()), 0)
        out = np.empty((self.size, n_members))  # shape: (size, n_members) # dtype: float64
        for spec in self.specs:
            if spec.name not in fields:
                raise KeyError(f"missing field {spec.name!r}")
            arr = np.asarray(fields[spec.name], dtype=np.float64)
            if arr.shape[1:] != spec.shape:
                raise ValueError(
                    f"field {spec.name!r}: expected per-member shape "
                    f"{spec.shape}, got {arr.shape[1:]}"
                )
            lo, hi = self._offsets[spec.name]
            out[lo:hi, :] = arr.reshape(n_members, -1).T
        return out

    def unpack_many(self, matrix: np.ndarray) -> dict[str, np.ndarray]:
        """Split an ``(size, N)`` column matrix into batched named arrays.

        Inverse of :meth:`pack_many`: each returned array has shape
        ``(N, *spec.shape)`` (contiguous copies).
        """
        matrix = np.asarray(matrix)  # shape: (size, n_members)
        if matrix.ndim != 2 or matrix.shape[0] != self.size:
            raise ValueError(
                f"expected matrix of shape ({self.size}, N), got {matrix.shape}"
            )
        n_members = matrix.shape[1]
        out = {}
        for spec in self.specs:
            lo, hi = self._offsets[spec.name]
            out[spec.name] = np.ascontiguousarray(
                matrix[lo:hi, :].T
            ).reshape(n_members, *spec.shape)
        return out

    def unpack(self, vector: np.ndarray) -> dict[str, np.ndarray]:
        """Split a packed vector back into named, shaped arrays (copies)."""
        vector = np.asarray(vector)
        if vector.shape != (self.size,):
            raise ValueError(f"expected vector of shape ({self.size},), got {vector.shape}")
        out = {}
        for spec in self.specs:
            lo, hi = self._offsets[spec.name]
            out[spec.name] = vector[lo:hi].reshape(spec.shape).copy()
        return out

    def view(self, vector: np.ndarray, name: str) -> np.ndarray:
        """A reshaped *view* of one field inside a packed vector (no copy)."""
        vector = np.asarray(vector)
        if vector.shape != (self.size,):
            raise ValueError(f"expected vector of shape ({self.size},), got {vector.shape}")
        lo, hi = self._offsets[name] if name in self._offsets else (None, None)
        if lo is None:
            raise KeyError(f"unknown field {name!r}; layout has {self.names}")
        return vector[lo:hi].reshape(self.spec(name).shape)

    # -- normalization ---------------------------------------------------

    def normalize(self, vector_or_matrix: np.ndarray) -> np.ndarray:
        """Non-dimensionalize: divide each entry by its field scale.

        Accepts a vector ``(n,)`` or a matrix ``(n, m)`` of state columns.
        """
        arr = np.asarray(vector_or_matrix, dtype=np.float64)
        if arr.shape[0] != self.size:
            raise ValueError(
                f"leading dimension {arr.shape[0]} != layout size {self.size}"
            )
        if arr.ndim == 1:
            return arr / self._scales
        return arr / self._scales[:, None]

    def denormalize(self, vector_or_matrix: np.ndarray) -> np.ndarray:
        """Inverse of :meth:`normalize`."""
        arr = np.asarray(vector_or_matrix, dtype=np.float64)
        if arr.shape[0] != self.size:
            raise ValueError(
                f"leading dimension {arr.shape[0]} != layout size {self.size}"
            )
        if arr.ndim == 1:
            return arr * self._scales
        return arr * self._scales[:, None]

    @property
    def scales(self) -> np.ndarray:
        """Read-only per-entry normalization scales."""
        view = self._scales.view()
        view.flags.writeable = False
        return view
