"""Rectangular tile decomposition of the analysis grid.

The tiled analysis (:class:`repro.core.assimilation.TiledESSEAnalysis`)
partitions the horizontal ``(ny, nx)`` grid into rectangular tiles; each
tile *owns* the state entries whose horizontal cell falls inside its
rectangle (every depth level of every field), updates them from the
observations inside the tile plus a halo, and the owned index sets are a
disjoint cover of the packed state vector -- so recombining per-tile
results never writes a state entry twice.

Distances are Euclidean in grid cells from an observation's cell to the
nearest cell of the tile rectangle (zero for observations inside the
tile), which is what the tapers in :mod:`repro.core.localization` expect.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.state import FieldLayout


@dataclass(frozen=True)
class Tile:
    """One rectangular tile ``[j0:j1, i0:i1)`` of the analysis grid."""

    index: int
    j0: int
    j1: int
    i0: int
    i1: int

    def __post_init__(self):
        if self.j0 < 0 or self.i0 < 0 or self.j1 <= self.j0 or self.i1 <= self.i0:
            raise ValueError(
                f"invalid tile bounds [{self.j0}:{self.j1}, {self.i0}:{self.i1})"
            )

    @property
    def n_cells(self) -> int:
        """Number of horizontal grid cells the tile owns."""
        return (self.j1 - self.j0) * (self.i1 - self.i0)

    def distance_to(self, jj: np.ndarray, ii: np.ndarray) -> np.ndarray:
        """Euclidean grid-cell distance from points to the tile rectangle.

        ``jj`` / ``ii`` are (arrays of) row / column coordinates; the
        distance is to the nearest *cell* of the tile (cells ``j0..j1-1``),
        zero inside it.
        """
        jj = np.asarray(jj, dtype=np.float64)
        ii = np.asarray(ii, dtype=np.float64)
        dj = np.maximum(np.maximum(self.j0 - jj, jj - (self.j1 - 1)), 0.0)
        di = np.maximum(np.maximum(self.i0 - ii, ii - (self.i1 - 1)), 0.0)
        return np.hypot(dj, di)


class TileDecomposition:
    """A disjoint cover of the ``(ny, nx)`` grid by rectangular tiles.

    Parameters
    ----------
    grid_shape:
        Horizontal grid shape ``(ny, nx)``.
    tile_shape:
        Nominal tile shape ``(tile_ny, tile_nx)``; edge tiles are
        smaller when the grid does not divide evenly.

    Examples
    --------
    >>> decomp = TileDecomposition((10, 8), (4, 4))
    >>> decomp.n_tiles
    6
    """

    def __init__(self, grid_shape: tuple[int, int], tile_shape: tuple[int, int]):
        ny, nx = (int(s) for s in grid_shape)
        tile_ny, tile_nx = (int(s) for s in tile_shape)
        if ny < 1 or nx < 1:
            raise ValueError(f"grid shape must be positive, got {grid_shape}")
        if tile_ny < 1 or tile_nx < 1:
            raise ValueError(f"tile shape must be positive, got {tile_shape}")
        self.grid_shape = (ny, nx)
        self.tile_shape = (tile_ny, tile_nx)
        tiles: list[Tile] = []
        for j0 in range(0, ny, tile_ny):
            for i0 in range(0, nx, tile_nx):
                tiles.append(
                    Tile(
                        index=len(tiles),
                        j0=j0,
                        j1=min(j0 + tile_ny, ny),
                        i0=i0,
                        i1=min(i0 + tile_nx, nx),
                    )
                )
        self.tiles = tuple(tiles)

    @property
    def n_tiles(self) -> int:
        """Number of tiles in the cover."""
        return len(self.tiles)

    def distances_to(self, jj: np.ndarray, ii: np.ndarray) -> np.ndarray:
        """Distances from points to every tile at once, shape ``(n_tiles, m)``.

        Row ``t`` equals ``tiles[t].distance_to(jj, ii)``; one vectorized
        evaluation replaces the per-tile Python loop on the analysis hot
        path (m observations x T tiles is the dominant selection cost).
        """
        jj = np.asarray(jj, dtype=np.float64)[None, :]
        ii = np.asarray(ii, dtype=np.float64)[None, :]
        j0 = np.array([[t.j0] for t in self.tiles], dtype=np.float64)
        j1 = np.array([[t.j1 - 1] for t in self.tiles], dtype=np.float64)
        i0 = np.array([[t.i0] for t in self.tiles], dtype=np.float64)
        i1 = np.array([[t.i1 - 1] for t in self.tiles], dtype=np.float64)
        dj = np.maximum(np.maximum(j0 - jj, jj - j1), 0.0)
        di = np.maximum(np.maximum(i0 - ii, ii - i1), 0.0)
        return np.hypot(dj, di)

    def cell_tile_map(self) -> np.ndarray:
        """The ``(ny, nx)`` array mapping each grid cell to its tile index."""
        out = np.empty(self.grid_shape, dtype=np.intp)
        for tile in self.tiles:
            out[tile.j0 : tile.j1, tile.i0 : tile.i1] = tile.index
        return out

    def state_indices(self, layout: FieldLayout) -> list[np.ndarray]:
        """Packed-state indices owned by each tile, in tile order.

        Every field in the layout must be gridded: a 2-D field of shape
        ``(ny, nx)`` or a 3-D field of shape ``(nz, ny, nx)``.  A tile
        owns an entry when the entry's horizontal cell is inside the
        tile, at every depth level.  The returned index arrays are
        sorted, pairwise disjoint, and together cover ``layout.size``.

        Raises
        ------
        ValueError
            If any field's trailing dimensions are not the grid shape.
        """
        ny, nx = self.grid_shape
        cell_map = self.cell_tile_map().ravel()
        parts: list[list[np.ndarray]] = [[] for _ in range(self.n_tiles)]
        offset = 0
        for spec in layout.specs:
            if len(spec.shape) == 2:
                levels = 1
            elif len(spec.shape) == 3:
                levels = spec.shape[0]
            else:
                raise ValueError(
                    f"field {spec.name!r} has rank {len(spec.shape)}; "
                    "tiling needs 2-D (ny, nx) or 3-D (nz, ny, nx) fields"
                )
            if spec.shape[-2:] != (ny, nx):
                raise ValueError(
                    f"field {spec.name!r} shape {spec.shape} does not end in "
                    f"the grid shape ({ny}, {nx})"
                )
            flat_map = np.tile(cell_map, levels)
            order = np.argsort(flat_map, kind="stable")
            bounds = np.searchsorted(flat_map[order], np.arange(self.n_tiles + 1))
            for t in range(self.n_tiles):
                parts[t].append(offset + order[bounds[t] : bounds[t + 1]])
            offset += spec.size
        return [np.sort(np.concatenate(p)) for p in parts]
