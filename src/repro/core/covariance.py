"""Incremental accumulation of the ensemble anomaly (difference) matrix.

Paper Sec 4/4.1: the "diff loop" continuously appends, to a large matrix,
the normalized difference between each finished ensemble member and the
central forecast -- out of order, as members complete on heterogeneous
hosts, with bookkeeping of which perturbation index each column came from.
:class:`AnomalyAccumulator` is that component: columns arrive keyed by
member index, order does not matter, duplicates are rejected, and the
current matrix (scaled by ``1/sqrt(N-1)``) can be snapshotted at any time
for the concurrently running SVD.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.state import FieldLayout
from repro.core.subspace import ErrorSubspace


@dataclass(frozen=True)
class AnomalyView:
    """A zero-copy, version-stamped view of the accumulated columns.

    The columns are the *raw* normalized anomalies ``x_j - x_central``
    (no ``1/sqrt(N-1)`` factor): the accumulator is append-only, so the
    raw prefix of any older view is a prefix of every newer view, which
    is what lets the differ ship only the new columns to disk and the
    SVD worker warm-start from its previous factorization.  Apply
    :attr:`scale` to singular values (or the matrix) to recover the
    covariance normalization.

    Attributes
    ----------
    columns:
        Read-only ``(n, count)`` view into the accumulator's storage.
        Valid forever: written columns are never mutated, and a storage
        reallocation (capacity growth) leaves this view on the old
        buffer.
    member_ids:
        Perturbation index of each column, arrival order.
    version:
        Monotone counter, bumped on every accumulated member.
    """

    columns: np.ndarray
    member_ids: tuple[int, ...]
    version: int

    @property
    def count(self) -> int:
        """Number of member columns in the view."""
        return int(self.columns.shape[1])

    @property
    def scale(self) -> float:
        """The ``1/sqrt(count - 1)`` covariance factor for this view."""
        if self.count < 2:
            raise RuntimeError(f"need >= 2 members for a scale, have {self.count}")
        return 1.0 / np.sqrt(self.count - 1)

    def matrix(self) -> np.ndarray:
        """The scaled anomaly matrix (materializes a copy)."""
        return self.columns * self.scale


class AnomalyAccumulator:
    """Collects normalized member-minus-central anomaly columns.

    Parameters
    ----------
    layout:
        State layout; anomalies are normalized with its field scales.
    central:
        Central (unperturbed) forecast state vector, shape ``(n,)``.
    capacity:
        Initial column capacity; grows geometrically as members arrive, so
        staged ensemble enlargement (N -> N2 -> ... Nmax) never reallocates
        per member.
    """

    def __init__(
        self,
        layout: FieldLayout,
        central: np.ndarray,
        capacity: int = 64,
    ):
        central = np.asarray(central, dtype=np.float64)
        if central.shape != (layout.size,):
            raise ValueError(
                f"central forecast shape {central.shape} != ({layout.size},)"
            )
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.layout = layout
        self.central = central.copy()
        self._columns = np.empty((layout.size, capacity))
        self._member_ids: list[int] = []
        self._index_of: dict[int, int] = {}
        self._version = 0

    # -- accumulation -------------------------------------------------------

    def add_member(self, member_index: int, forecast: np.ndarray) -> None:
        """Add one finished member's forecast (any completion order).

        Raises
        ------
        ValueError
            On duplicate member index or wrong shape -- both indicate
            workflow bookkeeping bugs and must not be silent.
        """
        if member_index in self._index_of:
            raise ValueError(f"member {member_index} already accumulated")
        forecast = np.asarray(forecast, dtype=np.float64)
        if forecast.shape != self.central.shape:
            raise ValueError(
                f"forecast shape {forecast.shape} != {self.central.shape}"
            )
        if not np.all(np.isfinite(forecast)):
            raise ValueError(f"member {member_index}: non-finite forecast")
        col = len(self._member_ids)
        if col == self._columns.shape[1]:
            grown = np.empty((self.central.size, 2 * self._columns.shape[1]))
            grown[:, :col] = self._columns[:, :col]
            self._columns = grown
        self._columns[:, col] = self.layout.normalize(forecast - self.central)
        self._index_of[member_index] = col
        self._member_ids.append(member_index)
        self._version += 1

    @property
    def count(self) -> int:
        """Number of accumulated members."""
        return len(self._member_ids)

    @property
    def member_ids(self) -> tuple[int, ...]:
        """Member indices in arrival order (the paper's bookkeeping)."""
        return tuple(self._member_ids)

    def has_member(self, member_index: int) -> bool:
        """Whether a member's anomaly is already in the matrix."""
        return member_index in self._index_of

    # -- snapshots ------------------------------------------------------------

    @property
    def version(self) -> int:
        """Monotone counter, bumped on every accumulated member."""
        return self._version

    def view(self) -> AnomalyView:
        """A zero-copy :class:`AnomalyView` of the current columns.

        No data is copied or scaled: the view aliases the accumulator's
        storage, which is safe because written columns are immutable and
        capacity growth rebinds (never resizes in place) the backing
        array.  Callers sharing the accumulator across threads must take
        the view under the same lock that guards :meth:`add_member`; the
        returned view itself may then be read without the lock.
        """
        cols = self._columns[:, : self.count]
        cols.flags.writeable = False
        return AnomalyView(
            columns=cols,
            member_ids=tuple(self._member_ids),
            version=self._version,
        )

    def matrix(self) -> np.ndarray:
        """The scaled anomaly matrix ``M`` with ``M M^T ≈ P`` (copy).

        Columns are ``(x_j - x_central) / sqrt(N - 1)`` in normalized
        coordinates, so ``thin_svd(M)`` yields error modes and std-devs
        directly.
        """
        n = self.count
        if n < 2:
            raise RuntimeError(f"need >= 2 members for an anomaly matrix, have {n}")
        return self._columns[:, :n] / np.sqrt(n - 1)

    def subspace(
        self,
        rank: int | None = None,
        energy: float | None = None,
    ) -> ErrorSubspace:
        """SVD snapshot of the current matrix -> an :class:`ErrorSubspace`."""
        return ErrorSubspace.from_anomalies(self.matrix(), rank=rank, energy=energy)

    def sample_variance_field(self) -> np.ndarray:
        """Pointwise sample variance (normalized units) without the SVD."""
        m = self.matrix()
        return np.einsum("ij,ij->i", m, m)


class MemmapAnomalyAccumulator(AnomalyAccumulator):
    """An anomaly matrix backed by an on-disk memory map.

    Paper Sec 4.1: "the covariance matrix tends to be very large
    (O((N G V)^2))" and lives on "a single machine with access to lots of
    disk space".  For state dimensions where ``n x Nmax`` float64 no
    longer fits in RAM, this variant keeps the columns in a ``.npy``
    memory map: accumulation writes columns through the page cache and
    snapshots for the SVD are read straight out of the map.

    Parameters
    ----------
    layout, central:
        As for :class:`AnomalyAccumulator`.
    path:
        Backing file (created/overwritten); ``.npy`` format, so it can be
        inspected with ``np.load(..., mmap_mode='r')`` out of process.
    max_members:
        Fixed capacity (e.g. the campaign's Nmax); the file is allocated
        once at this size -- no mid-campaign reallocation of a huge file.
    """

    def __init__(
        self,
        layout: FieldLayout,
        central: np.ndarray,
        path,
        max_members: int = 1024,
    ):
        if max_members < 2:
            raise ValueError("max_members must be >= 2")
        super().__init__(layout, central, capacity=2)
        self.path = path
        self.max_members = int(max_members)
        self._columns = np.lib.format.open_memmap(
            path, mode="w+", dtype=np.float64, shape=(layout.size, max_members)
        )

    def add_member(self, member_index: int, forecast: np.ndarray) -> None:
        """Add a member; raises when the fixed capacity is exhausted."""
        if self.count >= self.max_members:
            raise RuntimeError(
                f"memmap accumulator full ({self.max_members} members)"
            )
        super().add_member(member_index, forecast)

    def flush(self) -> None:
        """Flush dirty pages to disk (end-of-stage checkpoint)."""
        self._columns.flush()
