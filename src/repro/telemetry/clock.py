"""Injectable monotonic time sources for the telemetry subsystem.

Every component that needs "now" takes a zero-argument callable instead
of calling :func:`time.perf_counter` directly, so that

- live runs use the process monotonic clock,
- the sched simulator hands out its *virtual* clock and exports the same
  trace format as a live task-pool run, and
- tests inject a :class:`FakeClock` and make timing assertions exact.
"""

from __future__ import annotations

import time

#: The default live clock: monotonic, sub-microsecond, process-local.
MONOTONIC = time.perf_counter


class FakeClock:
    """A manually advanced clock for deterministic timing tests.

    Examples
    --------
    >>> clock = FakeClock()
    >>> clock()
    0.0
    >>> clock.advance(2.5)
    >>> clock()
    2.5
    """

    def __init__(self, start: float = 0.0):
        self._now = float(start)

    def __call__(self) -> float:
        """Current fake time (seconds)."""
        return self._now

    def advance(self, seconds: float) -> None:
        """Move the clock forward; negative steps are rejected."""
        if seconds < 0:
            raise ValueError(f"cannot move a monotonic clock backwards: {seconds}")
        self._now += seconds
