"""Telemetry: tracing spans, metrics and timeline export for the pipeline.

The paper's central artifact is a *timeline*: Figs 1 and 4 are Gantt
pictures of perturbation / PE-model / differ / SVD tasks overlapping in
the pool-of-tasks workflow, and Sec 5.3.1 notes that remote execution
"gives no easy way for the user to monitor the progress of one's jobs".
This package is the instrument for both complaints:

- :mod:`~repro.telemetry.clock` -- injectable monotonic time sources
  (live, simulated, fake);
- :mod:`~repro.telemetry.spans` -- nestable thread-safe tracing spans,
  with a zero-overhead :data:`NULL_RECORDER` as the default everywhere;
- :mod:`~repro.telemetry.metrics` -- process-local counters, gauges and
  histograms (task latency, retries, queue depth, differ I/O sweeps);
- :mod:`~repro.telemetry.events` -- one structured event schema unifying
  the workflow event log, the sched simulator's job stream and the fault
  injector;
- :mod:`~repro.telemetry.export` -- JSONL run logs, Chrome-trace JSON
  (rendered by Perfetto as the paper's Fig 4 timeline) and a
  Prometheus-style text snapshot.

See ``docs/OBSERVABILITY.md`` for naming conventions and usage.
"""

from repro.telemetry.clock import MONOTONIC, FakeClock
from repro.telemetry.events import (
    TelemetryEvent,
    from_fault_events,
    from_sanitizer_reports,
    from_sim_jobs,
    from_workflow_events,
    parse_detail,
)
from repro.telemetry.export import (
    RunLog,
    chrome_trace,
    prometheus_text,
    read_jsonl,
    validate_chrome_trace,
    write_chrome_trace,
    write_jsonl,
)
from repro.telemetry.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    reset_registry,
)
from repro.telemetry.spans import NULL_RECORDER, NullRecorder, Span, TraceRecorder

__all__ = [
    "MONOTONIC",
    "FakeClock",
    "TelemetryEvent",
    "parse_detail",
    "from_workflow_events",
    "from_fault_events",
    "from_sanitizer_reports",
    "from_sim_jobs",
    "RunLog",
    "chrome_trace",
    "write_chrome_trace",
    "validate_chrome_trace",
    "write_jsonl",
    "read_jsonl",
    "prometheus_text",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_registry",
    "reset_registry",
    "NULL_RECORDER",
    "NullRecorder",
    "Span",
    "TraceRecorder",
]
