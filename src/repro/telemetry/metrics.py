"""Process-local metrics: counters, gauges and histograms.

The registry answers the operational questions the paper raises about
many-task runs -- how many retries, how deep is the queue, what is the
latency distribution per task kind -- without any external service.
Instruments are cheap, thread-safe, and identified by a name plus an
optional label set (``registry.counter("task_retries", kind="pemodel")``),
so the same metric can be sliced per task kind the way the paper's
tables slice per singleton type.

A module-level default registry exists for convenience; tests should
either build their own :class:`MetricsRegistry` or call
:func:`reset_registry` between cases.
"""

from __future__ import annotations

import math

from repro.util.sanitizer import new_lock


def _labels_key(name: str, labels: dict) -> str:
    """Canonical instrument key: ``name{k=v,...}`` with sorted labels."""
    if not labels:
        return name
    inner = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return f"{name}{{{inner}}}"


class Counter:
    """A monotonically increasing count (retries, completions, bytes)."""

    def __init__(self, name: str, labels: dict | None = None):
        self.name = name
        self.labels = dict(labels or {})
        self._value = 0.0
        self._lock = new_lock(f"Counter({name})._lock")

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be >= 0: counters never go down)."""
        if amount < 0:
            raise ValueError(f"counter increments must be >= 0, got {amount}")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        """Current total."""
        return self._value


class Gauge:
    """A value that goes up and down (queue depth, pool size, progress)."""

    def __init__(self, name: str, labels: dict | None = None):
        self.name = name
        self.labels = dict(labels or {})
        self._value = 0.0
        self._lock = new_lock(f"Gauge({name})._lock")

    def set(self, value: float) -> None:
        """Replace the current value."""
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        """Adjust the current value by ``amount`` (may be negative)."""
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        """Current value."""
        return self._value


class Histogram:
    """A distribution of observations (task latencies, I/O sweep counts).

    Keeps raw observations (runs here are thousands of tasks, not
    billions), so percentiles are exact rather than bucket-approximated.
    """

    def __init__(self, name: str, labels: dict | None = None):
        self.name = name
        self.labels = dict(labels or {})
        self._values: list[float] = []
        self._lock = new_lock(f"Histogram({name})._lock")

    def observe(self, value: float) -> None:
        """Record one observation."""
        with self._lock:
            self._values.append(float(value))

    @property
    def count(self) -> int:
        """Number of observations."""
        return len(self._values)

    @property
    def sum(self) -> float:
        """Sum of observations."""
        with self._lock:
            return math.fsum(self._values)

    @property
    def mean(self) -> float | None:
        """Mean observation (None when empty)."""
        with self._lock:
            if not self._values:
                return None
            return math.fsum(self._values) / len(self._values)

    def percentile(self, q: float) -> float | None:
        """Exact q-th percentile (0 <= q <= 100; None when empty)."""
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"percentile must be in [0, 100], got {q}")
        with self._lock:
            if not self._values:
                return None
            ordered = sorted(self._values)
        if len(ordered) == 1:
            return ordered[0]
        pos = (q / 100.0) * (len(ordered) - 1)
        lo = int(math.floor(pos))
        hi = int(math.ceil(pos))
        if lo == hi:
            return ordered[lo]
        frac = pos - lo
        return ordered[lo] * (1 - frac) + ordered[hi] * frac


class MetricsRegistry:
    """Get-or-create home for all instruments of one process/run."""

    def __init__(self):
        self._lock = new_lock("MetricsRegistry._lock")
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    def _get(self, store: dict, cls, name: str, labels: dict):
        key = _labels_key(name, labels)
        with self._lock:
            instrument = store.get(key)
            if instrument is None:
                instrument = store[key] = cls(name, labels)
        return instrument

    def counter(self, name: str, **labels) -> Counter:
        """The counter for ``name`` + labels (created on first use)."""
        return self._get(self._counters, Counter, name, labels)

    def gauge(self, name: str, **labels) -> Gauge:
        """The gauge for ``name`` + labels (created on first use)."""
        return self._get(self._gauges, Gauge, name, labels)

    def histogram(self, name: str, **labels) -> Histogram:
        """The histogram for ``name`` + labels (created on first use)."""
        return self._get(self._histograms, Histogram, name, labels)

    def snapshot(self) -> dict:
        """Plain-data view of every instrument (JSON-serialisable).

        Histograms are summarised as count/sum/mean/p50/p90/p95/p99/max so
        the snapshot stays bounded regardless of observation volume (and
        the serving-latency tail is readable straight off the snapshot).
        """
        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            histograms = dict(self._histograms)
        return {
            "counters": {k: c.value for k, c in counters.items()},
            "gauges": {k: g.value for k, g in gauges.items()},
            "histograms": {
                k: {
                    "count": h.count,
                    "sum": h.sum,
                    "mean": h.mean,
                    "p50": h.percentile(50),
                    "p90": h.percentile(90),
                    "p95": h.percentile(95),
                    "p99": h.percentile(99),
                    "max": h.percentile(100),
                }
                for k, h in histograms.items()
            },
        }

    def reset(self) -> None:
        """Drop every instrument (test isolation between cases)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()


#: Default process-local registry for code that does not thread one through.
_DEFAULT = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-local default registry."""
    return _DEFAULT


def reset_registry() -> None:
    """Reset the default registry (call between tests)."""
    _DEFAULT.reset()
