"""Exporters: JSONL run logs, Chrome trace JSON, Prometheus text.

Three sinks for the same recorded telemetry:

- :func:`write_jsonl` / :func:`read_jsonl` -- the durable run log, one
  self-describing JSON object per line; :mod:`tools.trace_summary` reads
  this format back for latency tables.
- :func:`chrome_trace` / :func:`write_chrome_trace` -- the Trace Event
  Format consumed by ``chrome://tracing`` and https://ui.perfetto.dev, so
  a task-pool run renders as the paper's Fig 4 Gantt timeline with one
  track per thread (or per simulated node).
- :func:`prometheus_text` -- a Prometheus exposition-format snapshot of a
  :class:`~repro.telemetry.metrics.MetricsRegistry`.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.telemetry.events import TelemetryEvent
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.spans import Span


@dataclass
class RunLog:
    """The parsed contents of one JSONL telemetry run log."""

    spans: list[Span] = field(default_factory=list)
    events: list[TelemetryEvent] = field(default_factory=list)
    metrics: dict = field(default_factory=dict)


# -- JSONL run log -----------------------------------------------------------


def _span_line(span: Span) -> dict:
    return {
        "type": "span",
        "name": span.name,
        "start": span.start,
        "end": span.end,
        "span_id": span.span_id,
        "parent_id": span.parent_id,
        "thread": span.thread,
        "status": span.status,
        "attrs": dict(span.attrs),
    }


def _event_line(event: TelemetryEvent) -> dict:
    return {
        "type": "event",
        "time": event.time,
        "kind": event.kind,
        "source": event.source,
        "attrs": dict(event.attrs),
    }


def write_jsonl(path, spans=(), events=(), metrics=None) -> Path:
    """Write one run's telemetry as a JSONL log; returns the path.

    ``metrics`` may be a :class:`MetricsRegistry`, a snapshot dict, or
    None.  Spans and events accept any iterables of the telemetry types
    (a recorder's ``spans()`` / ``events()`` tuples fit directly).
    """
    path = Path(path)
    snapshot = metrics.snapshot() if isinstance(metrics, MetricsRegistry) else metrics
    with path.open("w") as fh:
        for span in spans:
            fh.write(json.dumps(_span_line(span), default=str) + "\n")
        for event in events:
            fh.write(json.dumps(_event_line(event), default=str) + "\n")
        if snapshot is not None:
            fh.write(json.dumps({"type": "metrics", "snapshot": snapshot}) + "\n")
    return path


def read_jsonl(path) -> RunLog:
    """Parse a JSONL run log back into telemetry records.

    Unknown line types are skipped (forward compatibility), so readers
    keep working when writers grow new record types.
    """
    log = RunLog()
    for line in Path(path).read_text().splitlines():
        line = line.strip()
        if not line:
            continue
        record = json.loads(line)
        rtype = record.get("type")
        if rtype == "span":
            log.spans.append(
                Span(
                    name=record["name"],
                    start=record["start"],
                    end=record["end"],
                    span_id=record["span_id"],
                    parent_id=record.get("parent_id"),
                    thread=record.get("thread", "main"),
                    status=record.get("status", "ok"),
                    attrs=tuple(sorted(record.get("attrs", {}).items())),
                )
            )
        elif rtype == "event":
            log.events.append(
                TelemetryEvent(
                    time=record["time"],
                    kind=record["kind"],
                    source=record.get("source", ""),
                    attrs=tuple(sorted(record.get("attrs", {}).items())),
                )
            )
        elif rtype == "metrics":
            log.metrics = record.get("snapshot", {})
    return log


# -- Chrome trace (chrome://tracing / Perfetto) ------------------------------


def chrome_trace(spans=(), events=(), pid: int = 1) -> dict:
    """Build a Trace Event Format object from spans and events.

    Spans become complete (``ph="X"``) events with microsecond
    timestamps; telemetry events become thread-scoped instants
    (``ph="i"``); thread names are declared via metadata (``ph="M"``)
    records so Perfetto labels each track (differ, svd, workers...).
    """
    trace_events: list[dict] = []
    tids: dict[str, int] = {}

    def tid_of(thread: str) -> int:
        if thread not in tids:
            tids[thread] = len(tids) + 1
            trace_events.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": pid,
                    "tid": tids[thread],
                    "args": {"name": thread},
                }
            )
        return tids[thread]

    for span in spans:
        trace_events.append(
            {
                "name": span.name,
                "cat": span.status,
                "ph": "X",
                "ts": span.start * 1e6,
                "dur": max(span.duration, 0.0) * 1e6,
                "pid": pid,
                "tid": tid_of(span.thread),
                "args": dict(span.attrs) | {"span_id": span.span_id},
            }
        )
    for event in events:
        trace_events.append(
            {
                "name": event.kind,
                "cat": event.source or "event",
                "ph": "i",
                "s": "p",
                "ts": event.time * 1e6,
                "pid": pid,
                "tid": tid_of("events"),
                "args": dict(event.attrs),
            }
        )
    return {"traceEvents": trace_events, "displayTimeUnit": "ms"}


def write_chrome_trace(path, spans=(), events=(), pid: int = 1) -> Path:
    """Write a Chrome-trace JSON file loadable in Perfetto."""
    path = Path(path)
    path.write_text(json.dumps(chrome_trace(spans, events, pid=pid)))
    return path


def validate_chrome_trace(obj) -> list[str]:
    """Structural validation of a trace object; returns problem strings.

    Checks the invariants the Trace Event Format requires of ``"X"`` and
    ``"i"`` phases (numeric non-negative ``ts``/``dur``, names, pids) --
    the contract the CI smoke test enforces on exported task-pool runs.
    """
    problems: list[str] = []
    if not isinstance(obj, dict) or "traceEvents" not in obj:
        return ["top level must be an object with a traceEvents array"]
    events = obj["traceEvents"]
    if not isinstance(events, list):
        return ["traceEvents must be a list"]
    for i, ev in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(ev, dict):
            problems.append(f"{where}: not an object")
            continue
        ph = ev.get("ph")
        if ph not in ("X", "i", "M", "B", "E", "C"):
            problems.append(f"{where}: unsupported phase {ph!r}")
            continue
        if not isinstance(ev.get("name"), str) or not ev["name"]:
            problems.append(f"{where}: missing name")
        if not isinstance(ev.get("pid"), int):
            problems.append(f"{where}: missing integer pid")
        if ph in ("X", "i", "B", "E", "C"):
            ts = ev.get("ts")
            if not isinstance(ts, (int, float)) or ts < 0:
                problems.append(f"{where}: ts must be a non-negative number")
        if ph == "X":
            dur = ev.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                problems.append(f"{where}: dur must be a non-negative number")
    return problems


# -- Prometheus text snapshot ------------------------------------------------


def _prom_name(key: str) -> tuple[str, str]:
    """Split a registry key ``name{k=v,...}`` into (name, label string)."""
    if "{" not in key:
        return key, ""
    name, _, rest = key.partition("{")
    inner = rest.rstrip("}")
    labels = ",".join(
        f'{k}="{v}"' for k, _, v in (item.partition("=") for item in inner.split(","))
    )
    return name, "{" + labels + "}"


def prometheus_text(metrics) -> str:
    """Render a registry (or snapshot dict) in Prometheus text format.

    Counters and gauges map directly; histograms are exposed as
    summaries (``_count``, ``_sum`` and ``quantile`` samples), which is
    the exposition-format shape for client-computed percentiles.
    """
    snapshot = metrics.snapshot() if isinstance(metrics, MetricsRegistry) else metrics
    lines: list[str] = []
    declared: set[str] = set()

    def declare(name: str, kind: str) -> None:
        if name not in declared:
            declared.add(name)
            lines.append(f"# TYPE {name} {kind}")

    for key, value in sorted(snapshot.get("counters", {}).items()):
        name, labels = _prom_name(key)
        declare(name, "counter")
        lines.append(f"{name}{labels} {value}")
    for key, value in sorted(snapshot.get("gauges", {}).items()):
        name, labels = _prom_name(key)
        declare(name, "gauge")
        lines.append(f"{name}{labels} {value}")
    for key, summary in sorted(snapshot.get("histograms", {}).items()):
        name, labels = _prom_name(key)
        declare(name, "summary")
        inner = labels[1:-1] if labels else ""
        for q, field_name in (
            (0.5, "p50"),
            (0.9, "p90"),
            (0.95, "p95"),
            (0.99, "p99"),
        ):
            if summary.get(field_name) is None:
                continue
            qlabel = f'quantile="{q}"' + (f",{inner}" if inner else "")
            lines.append(f"{name}{{{qlabel}}} {summary[field_name]}")
        lines.append(f"{name}_count{labels} {summary['count']}")
        lines.append(f"{name}_sum{labels} {summary['sum']}")
    return "\n".join(lines) + "\n"
