"""Nestable, thread-safe tracing spans with an injectable clock.

A *span* is a named time interval with attributes -- one ``pemodel``
member attempt, one SVD computation, one assimilation cycle.  Spans nest:
each thread keeps its own stack of open spans, and a new span becomes a
child of the innermost open one (or of an explicitly passed parent, which
is how spans started in worker threads attach to the run's root span).

Two recorders implement the same interface:

- :class:`NullRecorder` (the default everywhere) does nothing.  Its
  :meth:`~NullRecorder.span` returns a shared singleton context manager,
  so an un-instrumented hot path pays one attribute lookup and one call
  -- no allocation when called without attributes.
- :class:`TraceRecorder` records :class:`Span` records against an
  injectable monotonic clock -- the live process clock by default, the
  sched simulator's virtual clock for campaign traces, or a
  :class:`~repro.telemetry.clock.FakeClock` in tests.
"""

from __future__ import annotations

import itertools
import threading
from dataclasses import dataclass, field

from repro.telemetry.clock import MONOTONIC
from repro.util.sanitizer import new_lock


@dataclass(frozen=True)
class Span:
    """One completed, immutable trace interval.

    Times are seconds on the recorder's clock (live monotonic seconds or
    simulator virtual seconds -- the exporters do not care which).
    """

    name: str
    start: float
    end: float
    span_id: int
    parent_id: int | None = None
    thread: str = "main"
    attrs: tuple[tuple[str, object], ...] = ()
    status: str = "ok"

    @property
    def duration(self) -> float:
        """Span length in (clock) seconds."""
        return self.end - self.start

    def attr(self, key: str, default=None):
        """Look up one attribute value by key."""
        for k, v in self.attrs:
            if k == key:
                return v
        return default


class _NullSpan:
    """The do-nothing span handle (a process-wide singleton)."""

    __slots__ = ()

    def __enter__(self):
        """No-op; returns itself so ``with ... as s`` still binds."""
        return self

    def __exit__(self, exc_type, exc, tb):
        """No-op; never swallows exceptions."""
        return False

    def set(self, **attrs) -> None:
        """Discard attribute updates."""

    @property
    def span_id(self) -> None:
        """No identity: null spans cannot be parents."""
        return None


_NULL_SPAN = _NullSpan()


class NullRecorder:
    """The zero-overhead default recorder: records nothing.

    Carries a ``clock`` so instrumented code can route *all* its time
    arithmetic through ``recorder.clock`` whether or not tracing is on
    (the workflow's retry backoff and deadline checks do exactly that).
    """

    enabled = False

    def __init__(self, clock=MONOTONIC):
        self.clock = clock

    def span(self, name: str, parent=None, **attrs) -> _NullSpan:
        """Return the shared no-op span handle."""
        return _NULL_SPAN

    def record_span(
        self,
        name: str,
        start: float,
        end: float,
        parent=None,
        status: str = "ok",
        **attrs,
    ) -> None:
        """Discard a pre-timed span (the simulator's completion path)."""

    def event(self, kind: str, **attrs) -> None:
        """Discard an instantaneous event."""

    def spans(self) -> tuple[Span, ...]:
        """A null recorder holds no spans."""
        return ()

    def events(self) -> tuple:
        """A null recorder holds no events."""
        return ()


#: Shared default recorder -- safe because it keeps no state.
NULL_RECORDER = NullRecorder()


class _ActiveSpan:
    """An open span: a context manager that records itself on exit."""

    __slots__ = ("_recorder", "name", "span_id", "parent_id", "start", "_attrs",
                 "_thread", "status")

    def __init__(self, recorder, name, span_id, parent_id, start, attrs, thread):
        self._recorder = recorder
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.start = start
        self._attrs = attrs
        self._thread = thread
        self.status = "ok"

    def set(self, **attrs) -> None:
        """Attach/overwrite attributes while the span is open."""
        self._attrs.update(attrs)

    def __enter__(self):
        """Push onto the owning thread's span stack."""
        self._recorder._push(self)
        return self

    def __exit__(self, exc_type, exc, tb):
        """Pop and record; an exception marks the span ``status="error"``."""
        if exc_type is not None:
            self.status = "error"
            self._attrs.setdefault("error", exc_type.__name__)
        self._recorder._pop(self)
        return False


class TraceRecorder:
    """Thread-safe span/event recorder against an injectable clock.

    Parameters
    ----------
    clock:
        Zero-argument callable returning monotonic seconds.  Pass
        ``lambda: sim.now`` to trace a simulation in virtual time, or a
        :class:`~repro.telemetry.clock.FakeClock` in tests.

    Examples
    --------
    >>> from repro.telemetry.clock import FakeClock
    >>> clk = FakeClock()
    >>> rec = TraceRecorder(clock=clk)
    >>> with rec.span("pemodel", index=3):
    ...     clk.advance(1.5)
    >>> rec.spans()[0].duration
    1.5
    """

    enabled = True

    def __init__(self, clock=MONOTONIC):
        self.clock = clock
        self._spans: list[Span] = []
        self._events: list = []
        self._lock = new_lock("TraceRecorder._lock")
        self._ids = itertools.count(1)
        self._local = threading.local()

    # -- span lifecycle ----------------------------------------------------

    def span(self, name: str, parent=None, **attrs) -> _ActiveSpan:
        """Open a span; use as a context manager.

        ``parent`` overrides the implicit thread-local parent: pass the
        handle (or ``span_id``) of a span opened in another thread to
        stitch worker-thread spans under the run's root.
        """
        if parent is None:
            stack = getattr(self._local, "stack", None)
            parent_id = stack[-1].span_id if stack else None
        else:
            parent_id = getattr(parent, "span_id", parent)
        return _ActiveSpan(
            self,
            name,
            next(self._ids),
            parent_id,
            self.clock(),
            dict(attrs),
            threading.current_thread().name,
        )

    def _push(self, active: _ActiveSpan) -> None:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        stack.append(active)

    def _pop(self, active: _ActiveSpan) -> None:
        end = self.clock()
        stack = getattr(self._local, "stack", None)
        if stack and stack[-1] is active:
            stack.pop()
        span = Span(
            name=active.name,
            start=active.start,
            end=end,
            span_id=active.span_id,
            parent_id=active.parent_id,
            thread=active._thread,
            attrs=tuple(sorted(active._attrs.items())),
            status=active.status,
        )
        with self._lock:
            self._spans.append(span)

    def record_span(
        self,
        name: str,
        start: float,
        end: float,
        parent=None,
        status: str = "ok",
        **attrs,
    ) -> Span:
        """Record a span whose interval was timed externally.

        The completion path for discrete-event simulations: the scheduler
        knows each job's start/end in virtual time only once the job
        finishes, so it records the whole interval at once.
        """
        if end < start:
            raise ValueError(f"span ends before it starts: {end} < {start}")
        span = Span(
            name=name,
            start=start,
            end=end,
            span_id=next(self._ids),
            parent_id=getattr(parent, "span_id", parent),
            thread=threading.current_thread().name,
            attrs=tuple(sorted(attrs.items())),
            status=status,
        )
        with self._lock:
            self._spans.append(span)
        return span

    # -- events ------------------------------------------------------------

    def event(self, kind: str, **attrs) -> None:
        """Record an instantaneous structured event at the current clock."""
        from repro.telemetry.events import TelemetryEvent

        record = TelemetryEvent(
            time=self.clock(), kind=kind, attrs=tuple(sorted(attrs.items()))
        )
        with self._lock:
            self._events.append(record)

    # -- access ------------------------------------------------------------

    def spans(self) -> tuple[Span, ...]:
        """All recorded spans, ordered by start time."""
        with self._lock:
            return tuple(sorted(self._spans, key=lambda s: (s.start, s.span_id)))

    def events(self) -> tuple:
        """All recorded events, ordered by time."""
        with self._lock:
            return tuple(sorted(self._events, key=lambda e: e.time))

    def current_span(self):
        """The innermost open span of the calling thread (or None)."""
        stack = getattr(self._local, "stack", None)
        return stack[-1] if stack else None

    def clear(self) -> None:
        """Drop all recorded spans and events (id sequence keeps going)."""
        with self._lock:
            self._spans.clear()
            self._events.clear()
