"""Structured event records unifying the pipeline's event streams.

Before this module, the repo had three disjoint event vocabularies: the
parallel workflow's :class:`~repro.workflow.parallel.WorkflowEvent`
(``time/kind/detail`` with detail strings like ``"member=3 count=4"``),
the sched simulator's per-job state transitions (held as fields on
:class:`~repro.sched.jobs.Job`), and the fault injector's
:class:`~repro.workflow.faults.FaultEvent`.  A
:class:`TelemetryEvent` is the common schema -- ``(time, kind, attrs,
source)`` -- that all three convert into, so one exporter and one
summary CLI serve every layer.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class TelemetryEvent:
    """One instantaneous, attributed occurrence on a telemetry clock."""

    time: float
    kind: str
    attrs: tuple[tuple[str, object], ...] = ()
    source: str = ""

    def attr(self, key: str, default=None):
        """Look up one attribute value by key."""
        for k, v in self.attrs:
            if k == key:
                return v
        return default


def parse_detail(detail: str) -> dict:
    """Parse a ``"k=v k2=v2 trailing words"`` detail string into attrs.

    ``key=value`` tokens become typed attributes (int, then float, then
    string); any non-``k=v`` tokens are joined into a ``detail`` attr so
    no information is dropped in the conversion.
    """
    attrs: dict[str, object] = {}
    loose: list[str] = []
    for token in detail.split():
        key, sep, value = token.partition("=")
        if not sep or not key:
            loose.append(token)
            continue
        typed: object = value
        try:
            typed = int(value)
        except ValueError:
            try:
                typed = float(value)
            except ValueError:
                pass
        attrs[key] = typed
    if loose:
        attrs["detail"] = " ".join(loose)
    return attrs


def from_workflow_events(events, source: str = "workflow") -> list[TelemetryEvent]:
    """Convert :class:`WorkflowEvent` records to the unified schema."""
    return [
        TelemetryEvent(
            time=e.time,
            kind=e.kind,
            attrs=tuple(sorted(parse_detail(e.detail).items())),
            source=source,
        )
        for e in events
    ]


def from_fault_events(events, source: str = "faults") -> list[TelemetryEvent]:
    """Convert :class:`FaultEvent` records to the unified schema.

    The injector's events carry no timestamp (they are ordinal), so the
    ordinal position doubles as the time axis.
    """
    return [
        TelemetryEvent(
            time=float(i),
            kind=f"fault_{e.kind.value}" if hasattr(e.kind, "value") else str(e.kind),
            attrs=(("attempt", e.attempt), ("index", e.index)),
            source=source,
        )
        for i, e in enumerate(events)
    ]


def from_sanitizer_reports(reports, source: str = "sanitizer") -> list[TelemetryEvent]:
    """Convert concurrency-sanitizer reports to the unified schema.

    Accepts the :class:`~repro.util.sanitizer.RaceReport` /
    :class:`~repro.util.sanitizer.LockOrderReport` dataclasses (the
    sanitizer lives in the leaf ``util`` package and cannot import this
    schema itself).  Reports carry no timestamp, so as with fault events
    the ordinal position doubles as the time axis.
    """
    return [
        TelemetryEvent(
            time=float(i),
            kind=f"sanitizer_{r.kind}",
            attrs=tuple(sorted(r.to_attrs().items())),
            source=source,
        )
        for i, r in enumerate(reports)
    ]


def from_sim_jobs(jobs, source: str = "sched") -> list[TelemetryEvent]:
    """Convert simulator job records into submit/start/end events.

    Accepts any iterable of :class:`~repro.sched.jobs.Job`; jobs that
    never started contribute only their submit (and terminal) events, so
    cancelled-in-queue work is still visible on the timeline.
    """
    out: list[TelemetryEvent] = []
    for job in jobs:
        base = (("index", job.spec.index), ("kind", job.spec.kind))
        out.append(
            TelemetryEvent(
                time=job.submit_time, kind="job_submit", attrs=base, source=source
            )
        )
        if job.start_time is not None:
            out.append(
                TelemetryEvent(
                    time=job.start_time,
                    kind="job_start",
                    attrs=base + (("node", job.node_name),),
                    source=source,
                )
            )
        if job.end_time is not None:
            out.append(
                TelemetryEvent(
                    time=job.end_time,
                    kind=f"job_{job.state.value}",
                    attrs=base + (("attempt", job.attempt),),
                    source=source,
                )
            )
    out.sort(key=lambda e: e.time)
    return out
