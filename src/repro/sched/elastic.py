"""Demand-driven (elastic) EC2 provisioning.

Paper Sec 5.4.1, last option: "Dynamic addition of EC2 nodes to an
existing cluster -- offered in product form by Univa (UniCloud) and Sun
(Cloud Adapter in Hedeby/SDM).  This last option automates the
booting/termination of EC2 nodes based on queuing system demand, further
minimizing costs."

:class:`ElasticEC2Pool` watches a scheduler's queue inside the DES: when
the backlog per core exceeds a threshold it boots instances (after a boot
latency), and it terminates instances that have been idle as their billed
hour closes -- EC2 charges whole hours, so an instance with 20 paid
minutes left is kept warm rather than released.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.sched.ec2 import EC2_INSTANCE_TYPES, EC2InstanceType
from repro.sched.engine import Simulator
from repro.sched.resources import Node, NodeSpec
from repro.sched.schedulers import ClusterScheduler


@dataclass
class _Instance:
    node: Node
    boot_time: float
    terminated: bool = False
    end_time: float | None = None

    def billed_hours(self, now: float) -> int:
        end = self.end_time if self.terminated else now
        return max(int(math.ceil((end - self.boot_time) / 3600.0 - 1e-12)), 1)


class ElasticEC2Pool:
    """Boots/terminates EC2 instances to follow scheduler demand.

    Parameters
    ----------
    sim, scheduler:
        The simulation and the scheduler whose queue is watched.  Booted
        nodes are appended to (and removed from) the scheduler's cluster.
    instance_type:
        EC2 instance type to provision.
    max_instances:
        Provisioning cap (the paper's default account limit was 20).
    boot_latency_s:
        Time from request to the node joining the pool.
    backlog_per_core:
        Boot another instance while queued jobs per available core exceed
        this threshold.
    poll_interval_s:
        How often demand is evaluated.
    """

    def __init__(
        self,
        sim: Simulator,
        scheduler: ClusterScheduler,
        instance_type: EC2InstanceType | str = "c1.xlarge",
        max_instances: int = 20,
        boot_latency_s: float = 90.0,
        backlog_per_core: float = 2.0,
        poll_interval_s: float = 30.0,
    ):
        if isinstance(instance_type, str):
            instance_type = EC2_INSTANCE_TYPES[instance_type]
        if max_instances < 1:
            raise ValueError("max_instances must be >= 1")
        if boot_latency_s < 0 or poll_interval_s <= 0:
            raise ValueError("latencies must be sensible")
        if backlog_per_core <= 0:
            raise ValueError("backlog_per_core must be positive")
        self.sim = sim
        self.scheduler = scheduler
        self.instance_type = instance_type
        self.max_instances = max_instances
        self.boot_latency_s = boot_latency_s
        self.backlog_per_core = backlog_per_core
        self.poll_interval_s = poll_interval_s
        self.instances: list[_Instance] = []
        self._booting = 0
        self._active = True
        self.boots = 0
        self.terminations = 0
        sim.schedule(0.0, self._poll)

    # -- accounting ---------------------------------------------------------

    @property
    def running_count(self) -> int:
        """Instances currently in the pool."""
        return sum(1 for inst in self.instances if not inst.terminated)

    def total_cost(self, hourly_usd: float | None = None) -> float:
        """Instance-hour cost so far (ceil-hour billing per instance)."""
        rate = (
            hourly_usd if hourly_usd is not None else self.instance_type.hourly_usd
        )
        return sum(inst.billed_hours(self.sim.now) * rate for inst in self.instances)

    def shutdown(self) -> None:
        """Stop polling and terminate every idle instance."""
        self._active = False
        for inst in self.instances:
            if not inst.terminated and inst.node.busy_cores == 0:
                self._terminate(inst)

    # -- demand loop -----------------------------------------------------------

    def _queued_jobs(self) -> int:
        return len(self.scheduler._ready)

    def _free_cores(self) -> int:
        return sum(n.free_cores for n in self.scheduler.cluster.nodes)

    def _drained(self) -> bool:
        """All submitted jobs in final states (and nothing mid-boot)."""
        from repro.sched.jobs import JobState

        jobs = self.scheduler.jobs
        if not jobs or self._booting:
            return False
        final = (JobState.DONE, JobState.FAILED, JobState.CANCELLED)
        return all(j.state in final for j in jobs.values())

    def _poll(self) -> None:
        if not self._active:
            return
        if self._drained():
            # campaign over: stop polling so the simulation can terminate,
            # and release every idle instance
            self.shutdown()
            return
        backlog = self._queued_jobs()
        capacity = max(self._free_cores(), 1)
        want_more = (
            backlog / capacity > self.backlog_per_core
            and self.running_count + self._booting < self.max_instances
        )
        if want_more:
            self._booting += 1
            self.sim.schedule(self.boot_latency_s, self._join)
        self._retire_idle()
        if self._active:
            self.sim.schedule(self.poll_interval_s, self._poll)

    def _join(self) -> None:
        self._booting -= 1
        index = len(self.instances)
        node = Node(
            NodeSpec(
                name=f"elastic-{self.instance_type.name}-{index}",
                cores=self.instance_type.schedulable_cores,
                speed_factor=self.instance_type.speed_factor,
                local_disk_mbps=40.0,
            )
        )
        self.scheduler.cluster.nodes.append(node)
        self.instances.append(_Instance(node=node, boot_time=self.sim.now))
        self.boots += 1
        self.scheduler._request_dispatch()

    def _retire_idle(self) -> None:
        """Terminate idle instances whose billed hour is about to close."""
        if self._queued_jobs() > 0:
            return
        for inst in self.instances:
            if inst.terminated or inst.node.busy_cores > 0:
                continue
            elapsed = self.sim.now - inst.boot_time
            into_hour = elapsed % 3600.0
            # release only near the hour boundary: the rest is prepaid
            if elapsed > 60.0 and into_hour > 3600.0 - 1.5 * self.poll_interval_s:
                self._terminate(inst)

    def _terminate(self, inst: _Instance) -> None:
        inst.terminated = True
        inst.end_time = self.sim.now
        self.terminations += 1
        try:
            self.scheduler.cluster.nodes.remove(inst.node)
        except ValueError:  # pragma: no cover - already removed
            pass
