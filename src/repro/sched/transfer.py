"""Output-return strategies for remote ESSE execution (paper Sec 5.3.2).

When ensembles run on remote Grid/cloud resources, the member outputs must
come home.  The paper weighs three designs:

- **push**: every execution host pushes its output the moment it finishes.
  "The batch nature of the runs results in a very large number of
  concurrent remote transfer attempts followed by no network activity
  whatsoever.  This can seriously slow down the gateway nodes."
- **pull**: an agent on the home cluster fetches files from the remote
  repository with bounded concurrency, "pac[ing] the file transfers so
  that they happen more or less continuously and perform much better".
- **two-stage put**: nodes store outputs on the remote shared filesystem
  and an independent agent ships them home in batches.

All three are simulated over the same completion-time trace and WAN model
(processor-sharing bandwidth + per-connection setup cost), so the designs
are compared apples-to-apples.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

import numpy as np

from repro.sched.engine import Simulator
from repro.sched.iomodel import SharedBandwidth


class OutputReturnPlan(Enum):
    """The three Sec 5.3.2 designs."""

    PUSH = "push"
    PULL = "pull"
    TWO_STAGE = "two_stage"


@dataclass(frozen=True)
class WANModel:
    """The link between the remote resource and the home cluster.

    Parameters
    ----------
    bandwidth_mbps:
        Aggregate WAN bandwidth, shared by concurrent transfers.
    setup_seconds:
        Per-connection establishment cost (authentication, TCP ramp-up);
        this is what makes many tiny concurrent transfers expensive and
        batched transfers cheap.
    gateway_concurrency_limit:
        Beyond this many simultaneous streams the home gateway degrades:
        per-stream setup grows by ``gateway_penalty_s`` per extra stream
        and the aggregate throughput collapses (the paper's "very large
        number of concurrent remote transfer attempts ... can seriously
        slow down the gateway nodes").
    gateway_penalty_s:
        Extra per-stream setup cost applied beyond the concurrency limit.
    congestion_alpha:
        Aggregate-throughput degradation per excess stream:
        ``capacity_factor = 1 / (1 + alpha * max(0, n - limit))``.
    """

    bandwidth_mbps: float = 40.0
    setup_seconds: float = 2.0
    gateway_concurrency_limit: int = 16
    gateway_penalty_s: float = 1.0
    congestion_alpha: float = 0.05

    def __post_init__(self):
        if self.bandwidth_mbps <= 0:
            raise ValueError("bandwidth must be positive")
        if self.setup_seconds < 0 or self.gateway_penalty_s < 0:
            raise ValueError("setup costs must be >= 0")
        if self.gateway_concurrency_limit < 1:
            raise ValueError("gateway concurrency limit must be >= 1")
        if self.congestion_alpha < 0:
            raise ValueError("congestion_alpha must be >= 0")

    def congestion_factor(self, n_streams: int) -> float:
        """Aggregate-capacity factor at ``n_streams`` concurrent transfers."""
        excess = max(n_streams - self.gateway_concurrency_limit, 0)
        return 1.0 / (1.0 + self.congestion_alpha * excess)


@dataclass(frozen=True)
class TransferReport:
    """Outcome of one output-return simulation."""

    plan: OutputReturnPlan
    all_home_time: float  # when the last file reached the home cluster
    peak_concurrent_streams: int
    mean_file_delay: float  # mean (arrival - production) per file
    transfers_started: int

    @property
    def drain_seconds(self) -> float:
        """Time from the last file's production to full arrival (>= 0)."""
        return self.all_home_time


def simulate_output_return(
    completion_times: list[float] | np.ndarray,
    file_mb: float,
    plan: OutputReturnPlan,
    wan: WANModel | None = None,
    pull_concurrency: int = 4,
    batch_size: int = 50,
    stage_rate_mbps: float = 400.0,
) -> TransferReport:
    """Simulate returning one output file per completion time.

    Parameters
    ----------
    completion_times:
        When each member's output is produced on the remote resource (s).
    file_mb:
        Size of each output file.
    plan:
        PUSH, PULL or TWO_STAGE.
    wan:
        WAN/gateway model.
    pull_concurrency:
        Maximum simultaneous fetches of the pull agent.
    batch_size:
        Files bundled into one transfer by the two-stage agent.
    stage_rate_mbps:
        Remote shared-filesystem staging rate (two-stage only).
    """
    times = np.sort(np.asarray(completion_times, dtype=float))
    if times.size == 0:
        raise ValueError("need at least one completion time")
    if file_mb <= 0:
        raise ValueError("file_mb must be positive")
    if pull_concurrency < 1 or batch_size < 1:
        raise ValueError("pull_concurrency and batch_size must be >= 1")
    wan = wan if wan is not None else WANModel()

    sim = Simulator()
    link = SharedBandwidth(sim, wan.bandwidth_mbps, congestion=wan.congestion_factor)
    arrivals: list[float] = []
    produced: list[float] = []
    peak = {"value": 0}
    started = {"value": 0}

    def effective_setup() -> float:
        extra = max(link.active_count - wan.gateway_concurrency_limit, 0)
        return wan.setup_seconds + extra * wan.gateway_penalty_s

    def start_transfer(size_mb: float, produce_time: float, count: int = 1):
        started["value"] += 1
        peak["value"] = max(peak["value"], link.active_count + 1)

        def begin():
            link.transfer(size_mb, lambda: finish())

        def finish():
            for _ in range(count):
                arrivals.append(sim.now)
                produced.append(produce_time)

        sim.schedule(effective_setup(), begin)

    if plan is OutputReturnPlan.PUSH:
        for t in times:
            sim.schedule_at(float(t), lambda t=t: start_transfer(file_mb, float(t)))
        sim.run()

    elif plan is OutputReturnPlan.PULL:
        queue: list[float] = []
        in_flight = {"value": 0}

        def pump():
            while in_flight["value"] < pull_concurrency and queue:
                produce_time = queue.pop(0)
                in_flight["value"] += 1
                started["value"] += 1
                peak["value"] = max(peak["value"], link.active_count + 1)

                def begin(pt=produce_time):
                    link.transfer(file_mb, lambda: land(pt))

                def land(pt):
                    arrivals.append(sim.now)
                    produced.append(pt)
                    in_flight["value"] -= 1
                    pump()

                sim.schedule(effective_setup(), begin)

        for t in times:
            def enqueue(t=t):
                queue.append(float(t))
                pump()

            sim.schedule_at(float(t), enqueue)
        sim.run()

    elif plan is OutputReturnPlan.TWO_STAGE:
        # stage to the remote shared FS, then bundle-transfer batches home
        staged: list[float] = []

        def stage_done(produce_time: float):
            staged.append(produce_time)
            if len(staged) % batch_size == 0:
                flush(staged[-batch_size:])

        def flush(batch: list[float]):
            start_transfer(
                file_mb * len(batch), min(batch), count=len(batch)
            )

        stage_delay = file_mb / stage_rate_mbps
        for t in times:
            sim.schedule_at(float(t) + stage_delay, lambda t=t: stage_done(float(t)))

        def flush_tail():
            tail = len(staged) % batch_size
            if tail:
                flush(staged[-tail:])

        sim.schedule_at(float(times[-1]) + stage_delay + 1e-6, flush_tail)
        sim.run()
    else:  # pragma: no cover - exhaustive enum
        raise ValueError(f"unknown plan {plan}")

    if len(arrivals) != times.size:
        raise RuntimeError(
            f"transfer accounting error: {len(arrivals)} arrivals for "
            f"{times.size} files"
        )
    delays = np.asarray(arrivals) - np.asarray(produced)
    return TransferReport(
        plan=plan,
        all_home_time=float(max(arrivals)),
        peak_concurrent_streams=peak["value"],
        mean_file_delay=float(delays.mean()),
        transfers_started=started["value"],
    )
