"""TeraGrid site models (paper Table 1 and Sec 5.3).

Per-site compute speed is calibrated from the measured ``pemodel`` time;
the residual in the measured ``pert`` time is attributed to the site's
filesystem ("the slow pert performance for ORNL appears to be partly
related to the PVFS2 filesystem used").  Sites also model the paper's
Grid-usage caveats: stochastic queue waits (no advance reservation) and
per-user active-job caps that throttle massive task parallelism.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sched.cluster import (
    REFERENCE_PEMODEL_SECONDS,
    REFERENCE_PERT_SECONDS,
)
from repro.sched.resources import ClusterModel, Node, NodeSpec
from repro.util.rng import SeedSequenceStream


@dataclass(frozen=True)
class GridSite:
    """One remote Grid platform.

    Parameters
    ----------
    name, processor:
        Site label and CPU description (Table 1 columns).
    speed_factor:
        Compute speed relative to the local Opteron 250 (from pemodel).
    pert_io_penalty_s:
        Extra seconds the site's filesystem adds to each ``pert``.
    queue_wait_mean_s:
        Mean of the exponential queue-wait distribution (shared resource,
        no advance reservation -- Sec 5.3.4 disadvantage 2).
    max_user_jobs:
        Active-jobs-per-user cap (0 = unlimited; disadvantage 3).
    cores:
        Cores this site will realistically give one user at a time.
    """

    name: str
    processor: str
    speed_factor: float
    pert_io_penalty_s: float = 0.0
    queue_wait_mean_s: float = 600.0
    max_user_jobs: int = 0
    cores: int = 64

    def __post_init__(self):
        if self.speed_factor <= 0:
            raise ValueError("speed_factor must be positive")
        if self.pert_io_penalty_s < 0 or self.queue_wait_mean_s < 0:
            raise ValueError("penalties must be >= 0")

    def pert_seconds(self) -> float:
        """Time-to-completion of one ``pert`` on this site."""
        return REFERENCE_PERT_SECONDS / self.speed_factor + self.pert_io_penalty_s

    def pemodel_seconds(self) -> float:
        """Time-to-completion of one ``pemodel`` on this site."""
        return REFERENCE_PEMODEL_SECONDS / self.speed_factor

    def sample_queue_wait(self, rng: np.random.Generator) -> float:
        """One queue-wait draw (exponential)."""
        if self.queue_wait_mean_s == 0:
            return 0.0
        return float(rng.exponential(self.queue_wait_mean_s))

    def cluster(self) -> ClusterModel:
        """A cluster model of the slice of this site one user can hold."""
        cores = self.cores if self.max_user_jobs == 0 else min(
            self.cores, self.max_user_jobs
        )
        return ClusterModel(
            nodes=[
                Node(
                    NodeSpec(
                        name=f"{self.name}-0",
                        cores=cores,
                        speed_factor=self.speed_factor,
                    )
                )
            ],
            name=self.name,
        )


def _site_speed(pemodel_seconds: float) -> float:
    return REFERENCE_PEMODEL_SECONDS / pemodel_seconds


def _site_io_penalty(pert_seconds: float, speed: float) -> float:
    return max(pert_seconds - REFERENCE_PERT_SECONDS / speed, 0.0)


#: Table 1 platforms, calibrated from the published measurements.
TERAGRID_SITES: dict[str, GridSite] = {
    "ORNL": GridSite(
        name="ORNL",
        processor="Pentium4 3.06GHz",
        speed_factor=_site_speed(1823.99),
        pert_io_penalty_s=_site_io_penalty(67.83, _site_speed(1823.99)),
        queue_wait_mean_s=1800.0,
        max_user_jobs=64,
    ),
    "Purdue": GridSite(
        name="Purdue",
        processor="Core2 2.33GHz",
        speed_factor=_site_speed(1107.40),
        pert_io_penalty_s=_site_io_penalty(6.25, _site_speed(1107.40)),
        queue_wait_mean_s=900.0,
        max_user_jobs=128,
    ),
    "local": GridSite(
        name="local",
        processor="Opteron 250 2.4GHz",
        speed_factor=1.0,
        pert_io_penalty_s=0.0,
        queue_wait_mean_s=0.0,
        cores=210,
    ),
}


def run_reserved_campaign(
    site: GridSite,
    n_members: int,
    window_seconds: float | None,
    rng: np.random.Generator | None = None,
    seed: int | None = None,
) -> dict[str, float | int]:
    """An ESSE slice on a Grid site, with or without an advance reservation.

    Sec 5.3.4: "In the absence of advance reservation the jobs submitted
    may very well end up running on the following day (or in any case
    outside the useful time window for ocean forecasts to be issued)" and
    "Advance reservations ... will be necessary to ensure that a
    sufficient number of cpu power will be available."

    With a reservation (``window_seconds`` set) the campaign starts
    immediately but is hard-killed at the window end: unfinished members
    are cancelled (ESSE tolerates the holes).  Without one, the whole
    campaign waits out a stochastic queue delay first.

    The queue-wait draw comes from ``rng`` when given, else from a
    :class:`~repro.util.rng.SeedSequenceStream` stream keyed by ``seed``
    (default 0) and the site name -- repeat calls with the same arguments
    reproduce the same wait.

    Returns
    -------
    dict with ``queue_wait_s``, ``completed``, ``cancelled`` and
    ``finish_time_s`` (wall time until the last *useful* result).
    """
    from repro.sched.engine import Simulator
    from repro.sched.iomodel import IOConfiguration, IOMode
    from repro.sched.jobs import JobState, JobSpec
    from repro.sched.schedulers import ClusterScheduler, SGEPolicy

    if n_members < 1:
        raise ValueError("n_members must be >= 1")
    if rng is None:
        rng = SeedSequenceStream(seed if seed is not None else 0).rng(
            "gridsites", site.name, "queue-wait"
        )
    reserved = window_seconds is not None
    queue_wait = 0.0 if reserved else site.sample_queue_wait(rng)

    sim = Simulator()
    scheduler = ClusterScheduler(
        sim,
        site.cluster(),
        SGEPolicy(),
        IOConfiguration(
            mode=IOMode.PRESTAGED,
            prestage_cost_s=0.0,
            pert_input_mb=0.0,
            pemodel_input_mb=0.0,
            output_mb=0.0,
        ),
    )
    specs: list[JobSpec] = []
    for i in range(n_members):
        specs.append(
            JobSpec(kind="pert", index=i, cpu_seconds=REFERENCE_PERT_SECONDS)
        )
        specs.append(
            JobSpec(
                kind="pemodel",
                index=i,
                cpu_seconds=REFERENCE_PEMODEL_SECONDS,
                depends_on=("pert", i),
            )
        )
    sim.schedule(queue_wait, lambda: scheduler.submit(specs))
    if reserved:
        sim.schedule(queue_wait + window_seconds, scheduler.cancel_queued)
        sim.run(until=queue_wait + window_seconds)
        # jobs still running at the wall are lost too
        lost_running = [
            j for j in scheduler.jobs.values() if j.state is JobState.RUNNING
        ]
        sim.run()  # let in-flight events settle for accounting
        for job in lost_running:
            if job.state is JobState.DONE and job.end_time > (
                queue_wait + window_seconds
            ):
                job.state = JobState.CANCELLED
    else:
        sim.run()

    done = [
        j
        for j in scheduler.jobs.values()
        if j.state is JobState.DONE and j.spec.kind == "pemodel"
    ]
    cancelled = [
        j
        for j in scheduler.jobs.values()
        if j.state is JobState.CANCELLED and j.spec.kind == "pemodel"
    ]
    finish = max((j.end_time for j in done), default=queue_wait)
    return {
        "queue_wait_s": queue_wait,
        "completed": len(done),
        "cancelled": len(cancelled),
        "finish_time_s": float(finish),
    }


def run_site_benchmark(site: GridSite) -> dict[str, float]:
    """One pert + pemodel on the site -> Table 1 row.

    Returns
    -------
    dict with keys ``pert`` and ``pemodel`` (seconds to completion).
    """
    return {"pert": site.pert_seconds(), "pemodel": site.pemodel_seconds()}
