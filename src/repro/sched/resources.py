"""Compute nodes and cluster models."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class NodeSpec:
    """Static description of one node type.

    Parameters
    ----------
    name:
        Node (group) name.
    cores:
        Usable cores.
    speed_factor:
        Compute speed relative to the reference host (local Opteron 250 =
        1.0); a job's compute time on this node is
        ``cpu_seconds / speed_factor``.
    local_disk_mbps:
        Local-disk streaming rate for prestaged input reads.
    """

    name: str
    cores: int
    speed_factor: float = 1.0
    local_disk_mbps: float = 60.0

    def __post_init__(self):
        if self.cores < 1:
            raise ValueError("cores must be >= 1")
        if self.speed_factor <= 0:
            raise ValueError("speed_factor must be positive")
        if self.local_disk_mbps <= 0:
            raise ValueError("local_disk_mbps must be positive")


@dataclass
class Node:
    """Runtime core-occupancy state of one node."""

    spec: NodeSpec
    busy_cores: int = 0

    @property
    def free_cores(self) -> int:
        """Cores currently idle."""
        return self.spec.cores - self.busy_cores

    def acquire(self, cores: int = 1) -> None:
        """Claim ``cores`` cores on this node."""
        if cores < 1:
            raise ValueError("cores must be >= 1")
        if self.free_cores < cores:
            raise RuntimeError(f"node {self.spec.name} oversubscribed")
        self.busy_cores += cores

    def release(self, cores: int = 1) -> None:
        """Release ``cores`` cores."""
        if cores < 1:
            raise ValueError("cores must be >= 1")
        if self.busy_cores < cores:
            raise RuntimeError(f"node {self.spec.name} released too many cores")
        self.busy_cores -= cores


@dataclass
class ClusterModel:
    """A set of nodes plus the shared file-server bandwidth.

    Parameters
    ----------
    nodes:
        Node list (runtime state lives in each :class:`Node`).
    nfs_bandwidth_mbps:
        Aggregate NFS server bandwidth (10 Gbit/s ~ 1250 MB/s for the
        paper's cluster).
    name:
        Cluster label for reports.
    """

    nodes: list[Node]
    nfs_bandwidth_mbps: float = 1250.0
    name: str = "cluster"

    def __post_init__(self):
        if not self.nodes:
            raise ValueError("cluster needs at least one node")
        if self.nfs_bandwidth_mbps <= 0:
            raise ValueError("nfs bandwidth must be positive")

    @property
    def total_cores(self) -> int:
        """All cores across nodes."""
        return sum(n.spec.cores for n in self.nodes)

    def find_free_node(self, cores: int = 1) -> Node | None:
        """Fastest node with at least ``cores`` free cores (None if none).

        Multi-core requests must be satisfied on a single node (an "MPI
        job" in the paper's nested-model sense runs on one box).
        """
        candidates = [n for n in self.nodes if n.free_cores >= cores]
        if not candidates:
            return None
        return max(candidates, key=lambda n: n.spec.speed_factor)
