"""Job specifications and runtime records for the campaign simulator."""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum


class JobState(Enum):
    """Lifecycle of a simulated singleton job."""

    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"


@dataclass(frozen=True)
class JobSpec:
    """Static description of one singleton.

    Parameters
    ----------
    kind:
        Task kind: ``"pert"``, ``"pemodel"``, ``"acoustic"``, ...
    index:
        Perturbation index (or acoustic task id).
    cpu_seconds:
        Pure-compute time on the reference host (local Opteron 250).
    depends_on:
        Index of a same-campaign job that must succeed first (pemodel
        depends on its pert); None if independent.
    cores:
        Cores the job occupies on one node (default 1).  Values > 1 model
        the paper's future-work "massive ensembles of small (2-3 task) MPI
        jobs" from nested HOPS setups (Sec 7); all cores must come from a
        single node.
    """

    kind: str
    index: int
    cpu_seconds: float
    depends_on: tuple[str, int] | None = None
    cores: int = 1

    def __post_init__(self):
        if self.cpu_seconds <= 0:
            raise ValueError("cpu_seconds must be positive")
        if self.index < 0:
            raise ValueError("index must be >= 0")
        if self.cores < 1:
            raise ValueError("cores must be >= 1")


@dataclass
class Job:
    """Runtime record of one job inside a simulation."""

    spec: JobSpec
    state: JobState = JobState.QUEUED
    submit_time: float = 0.0
    start_time: float | None = None
    end_time: float | None = None
    node_name: str | None = None
    cpu_busy_seconds: float = 0.0  # time actually computing (not I/O)
    attempt: int = 1  # 1-based; > 1 after retry-policy resubmissions

    def reset_for_retry(self, submit_time: float) -> None:
        """Re-queue this record for its next attempt (retry policy).

        Timing fields are cleared so wait/runtime metrics describe the
        attempt that actually produced the result, not the failed ones.
        """
        self.attempt += 1
        self.state = JobState.QUEUED
        self.submit_time = submit_time
        self.start_time = None
        self.end_time = None
        self.node_name = None
        self.cpu_busy_seconds = 0.0

    @property
    def wait_seconds(self) -> float | None:
        """Queue wait (None until started)."""
        if self.start_time is None:
            return None
        return self.start_time - self.submit_time

    @property
    def runtime_seconds(self) -> float | None:
        """Wall time on the node (None until finished)."""
        if self.start_time is None or self.end_time is None:
            return None
        return self.end_time - self.start_time

    @property
    def cpu_utilization(self) -> float | None:
        """Compute / wall fraction -- the paper's ~20% vs ~100% metric."""
        runtime = self.runtime_seconds
        if runtime is None or runtime == 0:
            return None
        return self.cpu_busy_seconds / runtime
