"""Federated (MyCluster-style) resource pools.

Paper Sec 5.3.1/5.4.1: "A related effort which we plan to investigate
further is the use of the MyCluster software that makes a collection of
remote and local resources appear as one large Condor or SGE controlled
cluster", and for EC2: "Creation of a personal (Condor or SGE) private
cluster using MyCluster mixing local and EC2 resources."

:func:`federate` merges several :class:`ClusterModel` instances into one
schedulable pool; heterogeneous node speeds then produce the paper's
Sec 5.3.3 effect -- "the more disparate the hosts ... the more uneven the
progress ... and perturbation 900 may very well finish well before number
700" -- which the tests verify.
"""

from __future__ import annotations

from repro.sched.resources import ClusterModel, Node, NodeSpec


def federate(
    clusters: list[ClusterModel],
    name: str = "mycluster",
    nfs_bandwidth_mbps: float | None = None,
) -> ClusterModel:
    """One virtual cluster spanning several resource pools.

    Node names are prefixed with their home pool so provenance stays
    visible in job records.

    Parameters
    ----------
    clusters:
        Member pools (>= 1).
    name:
        Name of the federated pool.
    nfs_bandwidth_mbps:
        Shared-filesystem bandwidth of the federation; defaults to the
        *slowest* member pool's (the WAN-shared filesystem is the weakest
        link, Sec 5.3.2).
    """
    if not clusters:
        raise ValueError("need at least one member cluster")
    nodes: list[Node] = []
    for cluster in clusters:
        for node in cluster.nodes:
            spec = node.spec
            nodes.append(
                Node(
                    NodeSpec(
                        name=f"{cluster.name}/{spec.name}",
                        cores=spec.cores,
                        speed_factor=spec.speed_factor,
                        local_disk_mbps=spec.local_disk_mbps,
                    )
                )
            )
    bandwidth = (
        nfs_bandwidth_mbps
        if nfs_bandwidth_mbps is not None
        else min(c.nfs_bandwidth_mbps for c in clusters)
    )
    return ClusterModel(nodes=nodes, nfs_bandwidth_mbps=bandwidth, name=name)


def pool_sizes(cluster: ClusterModel) -> dict[str, int]:
    """Core counts per member pool of a federated cluster."""
    counts: dict[str, int] = {}
    for node in cluster.nodes:
        pool = node.spec.name.split("/", 1)[0] if "/" in node.spec.name else "local"
        counts[pool] = counts.get(pool, 0) + node.spec.cores
    return counts
