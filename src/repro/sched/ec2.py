"""Amazon EC2 instance catalogue, cost model and virtual clusters.

Paper Table 2 measures pert/pemodel on 2009-era EC2 instance types with
every instance fully packed ("8 copies of pert/pemodel were run
concurrently on a c1.xlarge", worst-of-batch reported), and Sec 5.4.2
prices an ESSE campaign: "1.5(GB) x 0.1 + 10.56(GB) x 0.17 + 2(hr) * 20 *
0.8 = $33.95", with reserved instances dropping CPU pricing "by more than
a factor of 3", and hour-granular billing ("usage of 1 hour 1 sec counts
as 2 hours").
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.sched.cluster import (
    REFERENCE_PEMODEL_SECONDS,
    REFERENCE_PERT_SECONDS,
)
from repro.sched.resources import ClusterModel, Node, NodeSpec


@dataclass(frozen=True)
class EC2InstanceType:
    """One 2009 EC2 instance type, calibrated to Table 2.

    Parameters
    ----------
    name, processor:
        Table 2 identification columns.
    effective_cores:
        Usable cores; 0.5 for m1.small ("limited to a maximum of 50% cpu
        utilization, hence appearing as a half-core").
    pert_seconds / pemodel_seconds:
        Measured worst-of-batch time to completion under full packing.
    hourly_usd:
        2009 on-demand price per instance-hour.
    """

    name: str
    processor: str
    effective_cores: float
    pert_seconds: float
    pemodel_seconds: float
    hourly_usd: float

    def __post_init__(self):
        if self.effective_cores <= 0:
            raise ValueError("effective_cores must be positive")
        if self.pert_seconds <= 0 or self.pemodel_seconds <= 0:
            raise ValueError("task times must be positive")
        if self.hourly_usd <= 0:
            raise ValueError("hourly price must be positive")

    @property
    def speed_factor(self) -> float:
        """Per-core compute speed relative to the local Opteron 250."""
        return REFERENCE_PEMODEL_SECONDS / self.pemodel_seconds

    @property
    def pert_io_penalty_s(self) -> float:
        """Residual pert slowdown attributed to virtualized I/O."""
        return max(
            self.pert_seconds - REFERENCE_PERT_SECONDS / self.speed_factor, 0.0
        )

    @property
    def schedulable_cores(self) -> int:
        """Whole cores a scheduler can use (>= 1)."""
        return max(int(self.effective_cores), 1)


#: Table 2, plus the 2009 on-demand price book.
EC2_INSTANCE_TYPES: dict[str, EC2InstanceType] = {
    "m1.small": EC2InstanceType(
        "m1.small", "Opt DC 2.6GHz", 0.5, 13.53, 2850.14, 0.10
    ),
    "m1.large": EC2InstanceType(
        "m1.large", "Opt DC 2.0GHz", 2.0, 9.33, 1817.13, 0.40
    ),
    "m1.xlarge": EC2InstanceType(
        "m1.xlarge", "Opt DC 2.0GHz", 4.0, 9.14, 1860.81, 0.80
    ),
    "c1.medium": EC2InstanceType(
        "c1.medium", "Core2 2.33GHz", 2.0, 9.80, 1008.11, 0.20
    ),
    "c1.xlarge": EC2InstanceType(
        "c1.xlarge", "Core2 2.33GHz", 8.0, 6.67, 1030.42, 0.80
    ),
}


@dataclass(frozen=True)
class EC2PriceBook:
    """2009 EC2 data-movement prices and reserved-instance discount."""

    transfer_in_usd_per_gb: float = 0.10
    transfer_out_usd_per_gb: float = 0.17
    reserved_discount_factor: float = 3.2  # "more than a factor of 3"

    def __post_init__(self):
        if self.reserved_discount_factor < 1.0:
            raise ValueError("discount factor must be >= 1")


class EC2CostModel:
    """Dollar cost of an ESSE campaign on EC2 (Sec 5.4.2)."""

    def __init__(self, prices: EC2PriceBook | None = None):
        self.prices = prices if prices is not None else EC2PriceBook()

    def compute_cost(
        self,
        instance: EC2InstanceType,
        n_instances: int,
        wall_hours: float,
        reserved: bool = False,
    ) -> float:
        """Instance-hours cost with EC2's cell-phone-style hour rounding."""
        if n_instances < 1:
            raise ValueError("n_instances must be >= 1")
        if wall_hours <= 0:
            raise ValueError("wall_hours must be positive")
        billed_hours = math.ceil(wall_hours - 1e-12)
        rate = instance.hourly_usd
        if reserved:
            rate /= self.prices.reserved_discount_factor
        return billed_hours * n_instances * rate

    def transfer_cost(self, in_gb: float, out_gb: float) -> float:
        """Data-movement cost in and out of EC2."""
        if in_gb < 0 or out_gb < 0:
            raise ValueError("transfer volumes must be >= 0")
        return (
            in_gb * self.prices.transfer_in_usd_per_gb
            + out_gb * self.prices.transfer_out_usd_per_gb
        )

    def campaign_cost(
        self,
        instance: EC2InstanceType,
        n_instances: int,
        wall_hours: float,
        input_gb: float,
        output_gb: float,
        reserved: bool = False,
    ) -> float:
        """Total campaign cost: compute + data movement."""
        return self.compute_cost(
            instance, n_instances, wall_hours, reserved=reserved
        ) + self.transfer_cost(input_gb, output_gb)

    def paper_example(self, reserved: bool = False) -> float:
        """The Sec 5.4.2 example: 1.5 GB in, 960 members x 11 MB out,
        20 instances at $0.80 for 2 hours -> $33.95 on demand."""
        output_gb = 960 * 11.0 / 1000.0  # the paper uses decimal GB
        instance = EC2_INSTANCE_TYPES["c1.xlarge"]
        return self.campaign_cost(
            instance,
            n_instances=20,
            wall_hours=2.0,
            input_gb=1.5,
            output_gb=output_gb,
            reserved=reserved,
        )


def ec2_virtual_cluster(
    instance_name: str,
    n_instances: int,
    nfs_bandwidth_mbps: float = 125.0,
) -> ClusterModel:
    """A virtual EC2 cluster as a :class:`ClusterModel`.

    The intra-EC2 shared filesystem runs over Gigabit Ethernet
    (~125 MB/s) -- "the Gigabit Ethernet connectivity used throughout
    Amazon EC2 ... mean[s] that parallel performance of the filesystem is
    not up to par" (Sec 5.4.3).
    """
    if n_instances < 1:
        raise ValueError("n_instances must be >= 1")
    try:
        itype = EC2_INSTANCE_TYPES[instance_name]
    except KeyError:
        raise KeyError(
            f"unknown instance type {instance_name!r}; "
            f"have {sorted(EC2_INSTANCE_TYPES)}"
        ) from None
    nodes = [
        Node(
            NodeSpec(
                name=f"{instance_name}-{k}",
                cores=itype.schedulable_cores,
                speed_factor=itype.speed_factor,
                local_disk_mbps=40.0,  # virtualized disk penalty
            )
        )
        for k in range(n_instances)
    ]
    return ClusterModel(
        nodes=nodes,
        nfs_bandwidth_mbps=nfs_bandwidth_mbps,
        name=f"ec2-{instance_name}",
    )
