"""The paper's local cluster (Sec 5.2) and reference task times.

"Our local cluster is composed of 114 dual socket Opteron 250 (2.4GHz)
nodes ..., 3 dual socket Opteron 285 (dual core 2.6GHz) nodes ..., and a
dual socket Opteron 2380 (Shanghai ... quad core 2.5GHz) head node ...
The fileserver serves over 18TB of shared disk over NFS, using a 10Gbit/s
connection ... For the timings discussed below about 210 of the 240 cores
were available."
"""

from __future__ import annotations

# The Table 1 reference times live in repro.core.taskmodel (shared with
# the workflow DAG analysis without a workflow -> sched edge); they are
# re-exported here because this is where sched code historically found
# them.
from repro.core.taskmodel import (  # noqa: F401  -- re-exported
    REFERENCE_ACOUSTIC_SECONDS,
    REFERENCE_PEMODEL_SECONDS,
    REFERENCE_PERT_SECONDS,
    reference_task_times,
)
from repro.sched.resources import ClusterModel, Node, NodeSpec


def mseas_cluster(
    available_cores: int = 210,
    nfs_bandwidth_mbps: float = 1250.0,
) -> ClusterModel:
    """The MIT MSEAS-like local cluster, reduced to its available cores.

    Parameters
    ----------
    available_cores:
        Cores usable for the campaign (the rest "were in use by other
        users").  The fast Opteron 285 replacement nodes are included
        first, then Opteron 250 nodes until the budget is spent.
    nfs_bandwidth_mbps:
        File-server bandwidth (10 Gbit/s link ~ 1250 MB/s).
    """
    if available_cores < 1:
        raise ValueError("available_cores must be >= 1")
    nodes: list[Node] = []
    remaining = available_cores
    # 3 dual-socket dual-core Opteron 285 nodes: 4 cores each, ~8% faster.
    for k in range(3):
        if remaining <= 0:
            break
        cores = min(4, remaining)
        nodes.append(
            Node(NodeSpec(name=f"opt285-{k}", cores=cores, speed_factor=1.08,
                          local_disk_mbps=250.0))
        )
        remaining -= cores
    # 114 dual-socket single-core Opteron 250 nodes: 2 cores each (ref speed).
    k = 0
    while remaining > 0 and k < 114:
        cores = min(2, remaining)
        nodes.append(
            Node(NodeSpec(name=f"opt250-{k}", cores=cores, speed_factor=1.0,
                          local_disk_mbps=250.0))
        )
        remaining -= cores
        k += 1
    return ClusterModel(
        nodes=nodes, nfs_bandwidth_mbps=nfs_bandwidth_mbps, name="mseas"
    )
