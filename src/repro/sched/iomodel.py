"""I/O models: shared (NFS) bandwidth with processor sharing, local disks.

Paper Sec 5.2.1 tests "one [scenario] that uses NFS for the large input
files and another that prestages (to every local disk) all input files".
The NFS file server is modelled as a processor-sharing bandwidth resource:
``capacity_mbps`` is divided equally among all active transfers, and
completion events are recomputed whenever a transfer starts or finishes --
this is what makes 210 simultaneous ``pert`` reads crawl (the paper's ~20%
CPU utilization) while a single reader gets the full pipe.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import TYPE_CHECKING, Callable

if TYPE_CHECKING:
    from repro.sched.engine import Simulator


class IOMode(Enum):
    """Where job input files live."""

    NFS = "nfs"  # read inputs from the shared server at job start
    PRESTAGED = "prestaged"  # inputs already on every local disk
    # "the shared input files can be read remotely from OpenDAP servers at
    # the home institution ... The performance implications of such an
    # approach however (hundreds of requests to a central OpenDAP server)
    # make it a less desirable solution" (Sec 5.3.2): like NFS but through
    # a far thinner WAN pipe.
    OPENDAP = "opendap"


@dataclass(frozen=True)
class IOConfiguration:
    """Input locality and sizes for a campaign.

    Parameters
    ----------
    mode:
        NFS or prestaged inputs.
    pert_input_mb / pemodel_input_mb:
        Input volume read by each task kind at start; the defaults sum to
        ~1.1 GB/member, consistent with the paper's "1.5GB input data"
        campaign sizing.
    output_mb:
        Useful output copied back to the NFS server at the end of each
        *pemodel* ("in all cases the useful output files are copied
        back"; 11 MB/member in the Sec 5.4.2 example).  ``pert`` writes
        its initial conditions to the local directory only, so it has no
        copy-back.
    prestage_cost_s:
        One-time per-campaign cost of distributing the inputs (incurred
        before the first job in PRESTAGED mode).
    """

    mode: IOMode = IOMode.PRESTAGED
    pert_input_mb: float = 250.0
    pemodel_input_mb: float = 850.0
    output_mb: float = 11.0
    prestage_cost_s: float = 120.0
    opendap_bandwidth_mbps: float = 40.0  # WAN pipe to the home OpenDAP server

    def __post_init__(self):
        for name in (
            "pert_input_mb",
            "pemodel_input_mb",
            "output_mb",
            "prestage_cost_s",
        ):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be >= 0")
        if self.opendap_bandwidth_mbps <= 0:
            raise ValueError("opendap_bandwidth_mbps must be positive")

    def input_mb(self, kind: str) -> float:
        """Input volume for a task kind."""
        return {
            "pert": self.pert_input_mb,
            "pemodel": self.pemodel_input_mb,
        }.get(kind, 0.0)

    def output_mb_for(self, kind: str) -> float:
        """Copy-back volume for a task kind (pert stores its IC locally)."""
        return 0.0 if kind == "pert" else self.output_mb


class SharedBandwidth:
    """Processor-sharing bandwidth resource (the NFS server / a WAN link).

    Parameters
    ----------
    sim:
        The simulation clock.
    capacity_mbps:
        Aggregate bandwidth; shared equally among active transfers.

    Notes
    -----
    On every start/finish the remaining bytes of in-flight transfers are
    updated for the elapsed interval at the old rate, then completions are
    rescheduled at the new rate.  Transfers of zero size complete
    immediately (same event).
    """

    def __init__(
        self,
        sim: "Simulator",
        capacity_mbps: float,
        congestion=None,
    ):
        if capacity_mbps <= 0:
            raise ValueError("capacity must be positive")
        self.sim = sim
        self.capacity = capacity_mbps
        # Optional congestion model: ``congestion(n_streams) -> factor`` in
        # (0, 1] scaling the *aggregate* capacity.  Models gateway thrash
        # under very many concurrent streams (paper Sec 5.3.2); default is
        # ideal processor sharing (factor 1).
        self._congestion = congestion
        # transfer id -> [remaining_mb, callback, event_handle]
        self._active: dict[int, list] = {}
        self._next_id = 0
        self._last_update = 0.0
        self.total_transferred_mb = 0.0

    def _effective_capacity(self) -> float:
        if self._congestion is None or not self._active:
            return self.capacity
        factor = self._congestion(len(self._active))
        if not 0.0 < factor <= 1.0:
            raise ValueError(f"congestion factor out of (0, 1]: {factor}")
        return self.capacity * factor

    @property
    def active_count(self) -> int:
        """Number of in-flight transfers."""
        return len(self._active)

    def current_rate(self) -> float:
        """Per-transfer rate right now (MB/s)."""
        n = max(len(self._active), 1)
        return self._effective_capacity() / n

    def _advance(self) -> None:
        """Consume elapsed time: decrement remaining sizes at the old rate."""
        elapsed = self.sim.now - self._last_update
        if elapsed > 0 and self._active:
            rate = self._effective_capacity() / len(self._active)
            for entry in self._active.values():
                entry[0] = max(entry[0] - rate * elapsed, 0.0)
        self._last_update = self.sim.now

    def _reschedule(self) -> None:
        """Recompute every completion event at the new sharing rate."""
        if not self._active:
            return
        rate = self._effective_capacity() / len(self._active)
        for tid, entry in self._active.items():
            if entry[2] is not None:
                self.sim.cancel(entry[2])
            delay = entry[0] / rate
            entry[2] = self.sim.schedule(delay, lambda t=tid: self._finish(t))

    def _finish(self, tid: int) -> None:
        self._advance()
        entry = self._active.pop(tid, None)
        if entry is None:
            return
        self._reschedule()
        entry[1]()

    def transfer(self, size_mb: float, callback: Callable) -> None:
        """Start a transfer; ``callback`` fires when it completes."""
        if size_mb < 0:
            raise ValueError("size must be >= 0")
        self.total_transferred_mb += size_mb
        if size_mb == 0:
            self.sim.schedule(0.0, callback)
            return
        self._advance()
        tid = self._next_id
        self._next_id += 1
        self._active[tid] = [size_mb, callback, None]
        self._reschedule()
