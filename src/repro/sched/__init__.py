"""Discrete-event simulation of the paper's execution infrastructure.

The paper's evaluation (Sec 5, Tables 1-2) is about queueing, scheduling
and I/O phenomena on hardware we do not have: a 240-core Opteron cluster
under SGE and Condor with an NFS file server, TeraGrid sites, and Amazon
EC2 instance types with 2009 pricing.  This package simulates those
substrates with a processor-sharing I/O model and pluggable scheduler
policies, *calibrated* to the paper's measured single-task times; the
composite results (600-member campaign makespans, CPU utilizations,
SGE-vs-Condor gaps, dollar costs) are then emergent.

- :mod:`~repro.sched.engine` -- the event queue,
- :mod:`~repro.sched.iomodel` -- shared-bandwidth (NFS) and local-disk I/O,
- :mod:`~repro.sched.resources` -- nodes and clusters,
- :mod:`~repro.sched.jobs` -- pert/pemodel/acoustic job specs,
- :mod:`~repro.sched.schedulers` -- SGE-like and Condor-like policies,
- :mod:`~repro.sched.cluster` -- the paper's local cluster,
- :mod:`~repro.sched.campaign` -- ESSE/acoustic campaign builders + stats,
- :mod:`~repro.sched.gridsites` -- Table 1 TeraGrid platforms,
- :mod:`~repro.sched.ec2` -- Table 2 EC2 instances and the cost model.
"""

from repro.sched.engine import Simulator
from repro.sched.iomodel import SharedBandwidth, IOConfiguration, IOMode
from repro.sched.resources import NodeSpec, Node, ClusterModel
from repro.sched.jobs import JobSpec, Job, JobState
from repro.sched.schedulers import (
    BigJobPriorityPolicy,
    ClusterScheduler,
    CondorPolicy,
    SGEPolicy,
)
from repro.sched.cluster import mseas_cluster, reference_task_times
from repro.sched.campaign import EnsembleCampaign, CampaignStats
from repro.sched.gridsites import GridSite, TERAGRID_SITES, run_site_benchmark
from repro.sched.federation import federate, pool_sizes
from repro.sched.elastic import ElasticEC2Pool
from repro.sched.transfer import (
    OutputReturnPlan,
    TransferReport,
    WANModel,
    simulate_output_return,
)
from repro.sched.ec2 import (
    EC2InstanceType,
    EC2_INSTANCE_TYPES,
    EC2PriceBook,
    EC2CostModel,
    ec2_virtual_cluster,
)

__all__ = [
    "Simulator",
    "SharedBandwidth",
    "IOConfiguration",
    "IOMode",
    "NodeSpec",
    "Node",
    "ClusterModel",
    "JobSpec",
    "Job",
    "JobState",
    "SGEPolicy",
    "BigJobPriorityPolicy",
    "CondorPolicy",
    "ClusterScheduler",
    "mseas_cluster",
    "reference_task_times",
    "EnsembleCampaign",
    "CampaignStats",
    "GridSite",
    "TERAGRID_SITES",
    "run_site_benchmark",
    "federate",
    "pool_sizes",
    "ElasticEC2Pool",
    "OutputReturnPlan",
    "TransferReport",
    "WANModel",
    "simulate_output_return",
    "EC2InstanceType",
    "EC2_INSTANCE_TYPES",
    "EC2PriceBook",
    "EC2CostModel",
    "ec2_virtual_cluster",
]
