"""ESSE and acoustic campaign builders plus aggregate statistics.

A campaign is the scheduler-level view of one ESSE forecast: N ``pert``
singletons, each followed by its dependent ``pemodel`` singleton, plus
(optionally) thousands of short ``acoustic`` singletons afterwards
(Sec 5.2.1).  Statistics collected per run reproduce the paper's reported
quantities: makespan, per-kind CPU utilization, queue waits.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sched.cluster import reference_task_times
from repro.sched.engine import Simulator
from repro.sched.iomodel import IOConfiguration
from repro.sched.jobs import Job, JobSpec, JobState
from repro.sched.resources import ClusterModel
from repro.sched.schedulers import (
    BigJobPriorityPolicy,
    ClusterScheduler,
    CondorPolicy,
    SGEPolicy,
)


@dataclass(frozen=True)
class CampaignStats:
    """Aggregate results of one simulated campaign."""

    makespan_seconds: float
    job_count: int
    mean_wait_seconds: float
    cpu_utilization_by_kind: dict[str, float]
    mean_runtime_by_kind: dict[str, float]
    core_utilization: float
    sim_events: int = 0  # DES events processed: the scheduler-load proxy
    failed_count: int = 0  # jobs lost to injected failures (+ dependents)

    @property
    def makespan_minutes(self) -> float:
        """Makespan in minutes (the paper quotes ~77 / ~86 min)."""
        return self.makespan_seconds / 60.0


class EnsembleCampaign:
    """Builds and runs one ESSE scheduler campaign.

    Parameters
    ----------
    cluster:
        Hardware model.
    policy:
        SGE-like or Condor-like scheduling policy.
    io_config:
        Input locality (NFS vs prestaged) and file sizes.
    task_times:
        CPU seconds per kind on the reference host; defaults to the
        paper's measured values.
    as_job_array:
        Submit as job arrays (paper default for the ESSE ensembles).
    """

    def __init__(
        self,
        cluster: ClusterModel,
        policy: SGEPolicy | CondorPolicy | BigJobPriorityPolicy | None = None,
        io_config: IOConfiguration | None = None,
        task_times: dict[str, float] | None = None,
        as_job_array: bool = True,
    ):
        self.cluster = cluster
        self.policy = policy if policy is not None else SGEPolicy()
        self.io_config = io_config if io_config is not None else IOConfiguration()
        self.task_times = (
            dict(task_times) if task_times is not None else reference_task_times()
        )
        self.as_job_array = as_job_array

    def ensemble_specs(self, n_members: int) -> list[JobSpec]:
        """pert + dependent pemodel specs for ``n_members`` members."""
        if n_members < 1:
            raise ValueError("n_members must be >= 1")
        specs: list[JobSpec] = []
        for i in range(n_members):
            specs.append(
                JobSpec(kind="pert", index=i, cpu_seconds=self.task_times["pert"])
            )
            specs.append(
                JobSpec(
                    kind="pemodel",
                    index=i,
                    cpu_seconds=self.task_times["pemodel"],
                    depends_on=("pert", i),
                )
            )
        return specs

    def nested_ensemble_specs(
        self,
        n_members: int,
        mpi_tasks: int = 2,
        parallel_efficiency: float = 0.9,
    ) -> list[JobSpec]:
        """Ensemble of small MPI pemodel jobs (paper Sec 7 future work).

        "More realistic model setups are expected to require the use of
        nested HOPS calculations which are executed in parallel -- thereby
        introducing the concept of massive ensembles of small (2-3 task)
        MPI jobs."  Each pemodel occupies ``mpi_tasks`` cores on one node
        and runs ``mpi_tasks * parallel_efficiency`` times faster.
        """
        if mpi_tasks < 1:
            raise ValueError("mpi_tasks must be >= 1")
        if not 0.0 < parallel_efficiency <= 1.0:
            raise ValueError("parallel_efficiency must be in (0, 1]")
        specs: list[JobSpec] = []
        speedup = mpi_tasks * parallel_efficiency
        for i in range(n_members):
            specs.append(
                JobSpec(kind="pert", index=i, cpu_seconds=self.task_times["pert"])
            )
            specs.append(
                JobSpec(
                    kind="pemodel",
                    index=i,
                    cpu_seconds=self.task_times["pemodel"] / speedup,
                    depends_on=("pert", i),
                    cores=mpi_tasks,
                )
            )
        return specs

    def acoustic_specs(self, n_tasks: int) -> list[JobSpec]:
        """Independent short acoustic singletons (no job arrays used)."""
        if n_tasks < 1:
            raise ValueError("n_tasks must be >= 1")
        return [
            JobSpec(kind="acoustic", index=i, cpu_seconds=self.task_times["acoustic"])
            for i in range(n_tasks)
        ]

    def batched_acoustic_specs(
        self, n_tasks: int, batch_size: int = 8
    ) -> list[JobSpec]:
        """Acoustic singletons repackaged as wide batch jobs.

        Sec 5.3.4: on schedulers tuned to favour large parallel jobs "one
        needs to refactor singleton jobs to batches of singletons packaged
        as a single job (with all the extra trouble this refactoring can
        introduce)".  Each batch occupies ``batch_size`` cores of one node
        for one singleton's wall time.
        """
        if n_tasks < 1 or batch_size < 1:
            raise ValueError("n_tasks and batch_size must be >= 1")
        n_batches = (n_tasks + batch_size - 1) // batch_size
        return [
            JobSpec(
                kind="acoustic_batch",
                index=i,
                cpu_seconds=self.task_times["acoustic"],
                cores=min(batch_size, n_tasks - i * batch_size),
            )
            for i in range(n_batches)
        ]

    def run(
        self,
        specs: list[JobSpec],
        failure_rate: float = 0.0,
        failure_seed: int | None = None,
        telemetry=None,
        metrics=None,
    ) -> CampaignStats:
        """Simulate the campaign to completion and aggregate statistics.

        Parameters
        ----------
        specs:
            Job specifications.
        failure_rate:
            Per-job death probability (ESSE tolerates the holes -- Sec 4
            point 3); with a non-zero rate, statistics cover the surviving
            jobs and ``failed_count`` reports the losses.
        failure_seed:
            Seed for reproducible failure draws.
        telemetry:
            Optional recorder *factory*: a callable taking the virtual
            clock and returning the recorder the scheduler should use
            (typically ``TraceRecorder``), or an already-built recorder.
            The recorded spans are in simulated seconds, exportable with
            the same Chrome-trace pipeline as a live run; when a factory
            is passed, the built recorder is kept on ``last_telemetry``.
        metrics:
            Optional :class:`~repro.telemetry.metrics.MetricsRegistry`
            fed per-kind wait/wall histograms and outcome counters.
        """
        import numpy as _np

        sim = Simulator()
        if (
            telemetry is not None
            and callable(telemetry)
            and (isinstance(telemetry, type) or not hasattr(telemetry, "record_span"))
        ):
            telemetry = telemetry(sim.clock())
        self.last_telemetry = telemetry  # factory-built recorders retrievable
        scheduler = ClusterScheduler(
            sim,
            self.cluster,
            self.policy,
            io_config=self.io_config,
            as_job_array=self.as_job_array,
            failure_rate=failure_rate,
            failure_rng=(
                _np.random.default_rng(failure_seed)
                if failure_rate > 0
                else None
            ),
            telemetry=telemetry,
            metrics=metrics,
        )
        scheduler.submit(specs)
        sim.run()

        jobs = [j for j in scheduler.jobs.values() if j.state is JobState.DONE]
        lost = sum(
            1
            for j in scheduler.jobs.values()
            if j.state in (JobState.FAILED, JobState.CANCELLED)
        )
        if len(jobs) + lost != len(specs):
            unfinished = len(specs) - len(jobs) - lost
            raise RuntimeError(f"{unfinished} jobs did not finish")
        if failure_rate == 0.0 and lost:
            raise RuntimeError(f"{lost} jobs lost without failure injection")
        makespan = max(j.end_time for j in jobs)
        waits = [j.wait_seconds for j in jobs]
        kinds = sorted({j.spec.kind for j in jobs})
        util = {}
        runtime = {}
        for kind in kinds:
            of_kind = [j for j in jobs if j.spec.kind == kind]
            util[kind] = float(np.mean([j.cpu_utilization for j in of_kind]))
            runtime[kind] = float(np.mean([j.runtime_seconds for j in of_kind]))
        busy_core_seconds = sum(j.runtime_seconds for j in jobs)
        core_util = busy_core_seconds / (self.cluster.total_cores * makespan)
        return CampaignStats(
            makespan_seconds=makespan,
            job_count=len(jobs),
            mean_wait_seconds=float(np.mean(waits)),
            cpu_utilization_by_kind=util,
            mean_runtime_by_kind=runtime,
            core_utilization=core_util,
            sim_events=sim.events_processed,
            failed_count=lost,
        )
