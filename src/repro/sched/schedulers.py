"""SGE-like and Condor-like scheduling policies plus the cluster scheduler.

Paper Sec 5.2.1: "Timings under Condor were between 10-20% slower.
Essentially the difference could be seen in the time it took for the
queuing system to reassign a new job to a node that just finished one.  In
the case of SGE the transition was immediate -- Condor appeared to want to
wait."  We model SGE as immediate dispatch (small per-dispatch latency)
and Condor as dispatch restricted to periodic negotiation cycles, the
mechanism behind that observation.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable

from repro.sched.engine import Simulator
from repro.sched.iomodel import IOConfiguration, IOMode, SharedBandwidth
from repro.sched.jobs import Job, JobSpec, JobState
from repro.sched.resources import ClusterModel, Node
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.spans import NULL_RECORDER
from repro.util.rng import SeedSequenceStream
from repro.workflow.faults import FaultInjector, FaultKind
from repro.workflow.policies import RetryPolicy


@dataclass(frozen=True)
class SGEPolicy:
    """Sun Grid Engine: immediate reassignment."""

    name: str = "sge"
    dispatch_latency_s: float = 0.5  # scheduler reaction time
    submit_overhead_s: float = 0.02  # per-job submission cost (no arrays)
    array_overhead_s: float = 0.002  # per-job cost inside a job array

    def __post_init__(self):
        if self.dispatch_latency_s < 0 or self.submit_overhead_s < 0:
            raise ValueError("latencies must be >= 0")


@dataclass(frozen=True)
class BigJobPriorityPolicy:
    """A shared-centre scheduler that favours wide parallel jobs.

    Sec 5.3.4 disadvantage 4: "in many cases the queuing system scheduler
    has been tuned to prioritize large core count parallel jobs and
    thereby penalize massive task parallelism workloads.  In that case one
    needs to refactor singleton jobs to batches of singletons packaged as
    a single job."  Dispatch considers the widest queued jobs first and
    holds back narrow ones whenever a wide job is waiting for cores
    (reserving capacity for it), so streams of 1-core singletons starve
    behind parallel workloads unless they are bundled.
    """

    name: str = "bigjob"
    dispatch_latency_s: float = 0.5
    submit_overhead_s: float = 0.02
    array_overhead_s: float = 0.002
    reserve_for_wide: bool = True

    def __post_init__(self):
        if self.dispatch_latency_s < 0 or self.submit_overhead_s < 0:
            raise ValueError("latencies must be >= 0")


@dataclass(frozen=True)
class CondorPolicy:
    """Condor: dispatch happens at periodic negotiation cycles.

    ``negotiation_interval_s`` defaults to a tuned 180 s cycle (Condor's
    classic default is 300 s; the paper "tweaked the configuration files
    to diminish this difference", which corresponds to lowering this
    value).
    """

    name: str = "condor"
    negotiation_interval_s: float = 180.0
    submit_overhead_s: float = 0.05
    array_overhead_s: float = 0.005

    def __post_init__(self):
        if self.negotiation_interval_s <= 0:
            raise ValueError("negotiation interval must be positive")


class ClusterScheduler:
    """Runs job specs on a cluster model under a scheduling policy.

    Jobs pass through three phases on their node: input read (NFS shared
    bandwidth or local disk, per the I/O configuration), compute
    (``cpu_seconds / speed_factor``), and output copy-back over NFS.

    Parameters
    ----------
    sim, cluster, policy, io_config:
        The simulation clock, hardware model, scheduling policy and input
        locality configuration.
    as_job_array:
        Whether submissions are batched as arrays (cheaper per job,
        Sec 5.2.1: "we used job arrays to lessen the load on the
        scheduler").
    failure_rate:
        Probability that a job dies on its node (hardware/software
        failure).  ESSE tolerates these -- "failures ... are not
        catastrophic" (Sec 4 point 3) -- so campaigns can quantify the
        statistical coverage surviving a flaky substrate.
    failure_rng:
        Generator for failure draws; thread one from your experiment's
        root seed for stream independence.  The default is a
        deterministic :class:`~repro.util.rng.SeedSequenceStream` stream,
        so repeat runs reproduce the same failures either way.
    retry_policy:
        When set, FAILED jobs are resubmitted with deterministic
        exponential backoff until ``max_attempts`` is exhausted -- the
        campaign-simulator mirror of the task-pool retry machinery.
        Completion callbacks and dependent-job aborts fire only on
        *terminal* outcomes.
    fault_injector:
        Deterministic fault source (same draws as the live workflow):
        CRASH and CORRUPT attempts fail on their node (CORRUPT after
        paying the output transfer), STALL attempts occupy the node for
        ``stall_seconds`` extra, and transiently submit-failing jobs reach
        the queue only after their backoff delays elapse.
    telemetry:
        A :class:`~repro.telemetry.spans.TraceRecorder` built on this
        simulator's virtual clock (``TraceRecorder(clock=sim.clock())``).
        Every finished attempt is recorded as a span named after its job
        kind -- queue wait as a ``queue`` span, node occupancy as the
        ``<kind>`` span -- so campaigns export the same Chrome-trace
        format as the live task pool.  Default: record nothing.
    metrics:
        A :class:`~repro.telemetry.metrics.MetricsRegistry` fed per-kind
        wall/wait histograms and completion/failure/retry counters; None
        disables metric recording.
    """

    #: Bound on transient-submit retries per job (mirrors the workflow).
    MAX_SUBMIT_TRIES = 50

    def __init__(
        self,
        sim: Simulator,
        cluster: ClusterModel,
        policy: SGEPolicy | CondorPolicy | BigJobPriorityPolicy,
        io_config: IOConfiguration | None = None,
        as_job_array: bool = True,
        failure_rate: float = 0.0,
        failure_rng=None,
        retry_policy: RetryPolicy | None = None,
        fault_injector: FaultInjector | None = None,
        telemetry=None,
        metrics: MetricsRegistry | None = None,
    ):
        if not 0.0 <= failure_rate < 1.0:
            raise ValueError("failure_rate must be in [0, 1)")
        self.sim = sim
        self.cluster = cluster
        self.policy = policy
        self.io_config = io_config if io_config is not None else IOConfiguration()
        self.as_job_array = as_job_array
        self.failure_rate = failure_rate
        self.retry_policy = retry_policy
        self.fault_injector = fault_injector
        self.telemetry = telemetry if telemetry is not None else NULL_RECORDER
        self.metrics = metrics
        self.n_retried = 0  # resubmissions performed by the retry policy
        self._failure_rng = failure_rng
        if failure_rate > 0 and failure_rng is None:
            # Deterministic fallback: a keyed stream off the zero root seed,
            # so two otherwise-identical campaigns draw identical failures.
            self._failure_rng = SeedSequenceStream(0).rng("sched", "node-failures")
        self.nfs = SharedBandwidth(sim, cluster.nfs_bandwidth_mbps)
        # OpenDAP input reads go through a central WAN server, not the
        # cluster file server (Sec 5.3.2).
        self.opendap = (
            SharedBandwidth(sim, self.io_config.opendap_bandwidth_mbps)
            if self.io_config.mode is IOMode.OPENDAP
            else None
        )
        self.jobs: dict[tuple[str, int], Job] = {}
        self._ready: deque[Job] = deque()
        self._waiting_dependency: list[Job] = []
        self._on_complete: list[Callable[[Job], None]] = []
        self._dispatch_scheduled = False
        self._prestage_done = self.io_config.mode is not IOMode.NFS and (
            self.io_config.prestage_cost_s == 0.0
        )
        self._prestage_started = False
        self._negotiation_active = False
        if isinstance(policy, CondorPolicy):
            self._schedule_negotiation()

    # -- public API ---------------------------------------------------------

    def on_complete(self, callback: Callable[[Job], None]) -> None:
        """Register a callback fired when any job reaches a final state."""
        self._on_complete.append(callback)

    def submit(self, specs: list[JobSpec]) -> list[Job]:
        """Submit jobs; returns their runtime records."""
        overhead = (
            self.policy.array_overhead_s
            if self.as_job_array
            else self.policy.submit_overhead_s
        )
        submitted = []
        delay = 0.0
        for spec in specs:
            key = (spec.kind, spec.index)
            if key in self.jobs:
                raise ValueError(f"duplicate job {key}")
            job = Job(spec=spec, submit_time=self.sim.now + delay)
            self.jobs[key] = job
            submitted.append(job)
            if spec.depends_on is None:
                fault_delay = self._submit_fault_delay(spec)
                if fault_delay is None:
                    # every transient-submit retry failed: terminal
                    job.state = JobState.FAILED
                    job.end_time = self.sim.now
                    self._notify(job)
                elif fault_delay > 0:
                    # transient submit failures: the job reaches the queue
                    # only after its backoff delays elapse (Sec 5.3.1)
                    self.sim.schedule(
                        delay + fault_delay, lambda j=job: self._enqueue(j)
                    )
                elif self.as_job_array:
                    # One array = one scheduler object: all tasks become
                    # visible together, no per-job events.
                    self._ready.append(job)
                else:
                    # Per-job submission: each job is a separate scheduler
                    # event, staggered by its submission cost -- the load
                    # that job arrays exist to avoid (Sec 4.2 / 5.2.1).
                    self.sim.schedule(delay, lambda j=job: self._enqueue(j))
            else:
                self._waiting_dependency.append(job)
            delay += overhead
        if self.io_config.mode is IOMode.PRESTAGED and not self._prestage_started:
            self._prestage_started = True
            self.sim.schedule(
                self.io_config.prestage_cost_s, self._finish_prestage
            )
        if isinstance(self.policy, CondorPolicy) and not self._negotiation_active:
            self._schedule_negotiation()
        self._request_dispatch(after=delay)
        return submitted

    def cancel_queued(self, kind: str | None = None) -> int:
        """Cancel all not-yet-running jobs (optionally of one kind).

        Works by job state so jobs still waiting for their staggered
        submission to register are cancelled too.
        """
        cancelled = 0
        for job in self.jobs.values():
            if job.state is not JobState.QUEUED:
                continue
            if kind is not None and job.spec.kind != kind:
                continue
            job.state = JobState.CANCELLED
            job.end_time = self.sim.now
            cancelled += 1
            self._notify(job)
        for pool in (self._ready, self._waiting_dependency):
            keep = [j for j in pool if j.state is JobState.QUEUED]
            pool.clear()
            pool.extend(keep)
        return cancelled

    # -- internals --------------------------------------------------------------

    def _finish_prestage(self) -> None:
        self._prestage_done = True
        self._request_dispatch()

    def _submit_fault_delay(self, spec: JobSpec) -> float | None:
        """Backoff delay from transient submit failures (deterministic).

        0.0 when the first try sticks; None when MAX_SUBMIT_TRIES draws in
        a row fail (the submission is terminally lost).
        """
        if self.fault_injector is None:
            return 0.0
        delay = 0.0
        for t in range(1, self.MAX_SUBMIT_TRIES + 1):
            if not self.fault_injector.submit_fails(spec.index, t, kind=spec.kind):
                return delay
            self.fault_injector.fire(
                FaultKind.SUBMIT_FAILURE, spec.index, t, kind=spec.kind
            )
            if self.retry_policy is not None:
                delay += self.retry_policy.backoff_seconds(spec.index, min(t, 8))
            else:
                delay += 1.0  # nominal resubmission pause without a policy
        return None

    def _draw_fault(self, job: Job) -> FaultKind | None:
        """The injected execution fault for this job attempt, if any."""
        if self.fault_injector is None:
            return None
        return self.fault_injector.draw(
            job.spec.index, job.attempt, kind=job.spec.kind
        )

    def _enqueue(self, job: Job) -> None:
        if job.state is JobState.QUEUED:  # not cancelled meanwhile
            self._ready.append(job)
            if (
                isinstance(self.policy, CondorPolicy)
                and not self._negotiation_active
            ):
                # a retried/delayed job may arrive after negotiation went
                # idle; restart the cycle or it would never be dispatched
                self._schedule_negotiation()
            self._request_dispatch()

    def _notify(self, job: Job) -> None:
        for callback in self._on_complete:
            callback(job)

    def _schedule_negotiation(self) -> None:
        self._negotiation_active = True
        self.sim.schedule(
            self.policy.negotiation_interval_s, self._negotiation_cycle
        )

    def _negotiation_cycle(self) -> None:
        self._dispatch_now()
        work_left = self._ready or self._waiting_dependency or self._any_running()
        if work_left and self._placeable_eventually():
            self._schedule_negotiation()
        else:
            self._negotiation_active = False

    def _placeable_eventually(self) -> bool:
        """False when only permanently unplaceable jobs remain.

        A queued job wider than the widest node can never start; without
        this check the negotiation loop would tick forever.
        """
        if self._any_running() or self._waiting_dependency:
            return True
        if not self._ready:
            return True
        widest = max(n.spec.cores for n in self.cluster.nodes)
        return any(job.spec.cores <= widest for job in self._ready)

    def _any_running(self) -> bool:
        return any(j.state is JobState.RUNNING for j in self.jobs.values())

    def _request_dispatch(self, after: float = 0.0) -> None:
        if isinstance(self.policy, CondorPolicy):
            return  # Condor only dispatches at negotiation cycles
        if self._dispatch_scheduled:
            return
        self._dispatch_scheduled = True

        def fire():
            self._dispatch_scheduled = False
            self._dispatch_now()

        self.sim.schedule(after + self.policy.dispatch_latency_s, fire)

    def _dispatch_now(self) -> None:
        if self.io_config.mode is IOMode.PRESTAGED and not self._prestage_done:
            return
        if isinstance(self.policy, BigJobPriorityPolicy):
            self._dispatch_bigjob_first()
            return
        # FIFO with backfill: a multi-core job that does not fit anywhere
        # right now must not starve smaller jobs behind it.
        unplaced: deque[Job] = deque()
        while self._ready:
            job = self._ready.popleft()
            node = self.cluster.find_free_node(cores=job.spec.cores)
            if node is None:
                unplaced.append(job)
                if job.spec.cores == 1:
                    break  # no node has even one core: stop scanning
                continue
            self._start_job(job, node)
        unplaced.extend(self._ready)
        self._ready = unplaced

    def _dispatch_bigjob_first(self) -> None:
        """Widest-job-first dispatch with capacity reservation.

        While a placeable wide job waits for cores, narrower jobs are held
        back (the reservation that penalizes singleton streams).  Jobs
        wider than the widest node are skipped -- they can never run and
        must not deadlock the queue.
        """
        widest_node = max(n.spec.cores for n in self.cluster.nodes)
        ordered = sorted(self._ready, key=lambda j: -j.spec.cores)
        unplaced: deque[Job] = deque()
        blocked = False
        for job in ordered:
            if blocked:
                unplaced.append(job)
                continue
            if job.spec.cores > widest_node:
                unplaced.append(job)  # permanently unplaceable: skip over
                continue
            node = self.cluster.find_free_node(cores=job.spec.cores)
            if node is None:
                unplaced.append(job)
                if self.policy.reserve_for_wide:
                    blocked = True  # hold capacity for this wide job
                continue
            self._start_job(job, node)
        self._ready = unplaced

    def _start_job(self, job: Job, node: Node) -> None:
        node.acquire(job.spec.cores)
        job.state = JobState.RUNNING
        job.start_time = self.sim.now
        job.node_name = node.spec.name
        input_mb = self.io_config.input_mb(job.spec.kind)
        if self.io_config.mode is IOMode.NFS and input_mb > 0:
            self.nfs.transfer(input_mb, lambda: self._start_compute(job, node))
        elif self.io_config.mode is IOMode.OPENDAP and input_mb > 0:
            self.opendap.transfer(
                input_mb, lambda: self._start_compute(job, node)
            )
        elif input_mb > 0:
            read_time = input_mb / node.spec.local_disk_mbps
            self.sim.schedule(read_time, lambda: self._start_compute(job, node))
        else:
            self._start_compute(job, node)

    def _start_compute(self, job: Job, node: Node) -> None:
        duration = job.spec.cpu_seconds / node.spec.speed_factor
        job.cpu_busy_seconds = duration
        wall = duration
        if self._draw_fault(job) is FaultKind.STALL:
            # straggler: the node is held for the stall on top of compute
            self.fault_injector.fire(
                FaultKind.STALL, job.spec.index, job.attempt, kind=job.spec.kind
            )
            wall += self.fault_injector.stall_seconds
        self.sim.schedule(wall, lambda: self._start_output(job, node))

    def _start_output(self, job: Job, node: Node) -> None:
        fault = self._draw_fault(job)
        if fault is FaultKind.CRASH:
            # dies before any output comes home
            self.fault_injector.fire(
                FaultKind.CRASH, job.spec.index, job.attempt, kind=job.spec.kind
            )
            self._fail_job(job, node)
            return
        if self.failure_rate > 0 and self._failure_rng.random() < self.failure_rate:
            # the job died on its node; no output comes home, and jobs
            # depending on it can never run
            self._fail_job(job, node)
            return
        out_mb = self.io_config.output_mb_for(job.spec.kind)
        if fault is FaultKind.CORRUPT:
            # the output transfer happens -- and is wasted: the file is
            # unreadable, discovered only after it came home (Sec 5.2.1)
            self.fault_injector.fire(
                FaultKind.CORRUPT, job.spec.index, job.attempt, kind=job.spec.kind
            )
            if out_mb > 0:
                self.nfs.transfer(out_mb, lambda: self._fail_job(job, node))
            else:
                self._fail_job(job, node)
            return
        if out_mb > 0:
            self.nfs.transfer(out_mb, lambda: self._finish_job(job, node))
        else:
            self._finish_job(job, node)

    def _record_attempt(self, job: Job, status: str) -> None:
        """Record one node-occupying attempt as telemetry spans + metrics.

        Called with the job's timing fields still describing the attempt
        (i.e. before :meth:`Job.reset_for_retry` clears them).  Times are
        virtual seconds from the simulator clock, so the exported trace
        lines up with the live workflow's format.
        """
        if self.telemetry.enabled and job.start_time is not None:
            if job.start_time > job.submit_time:
                self.telemetry.record_span(
                    "queue",
                    job.submit_time,
                    job.start_time,
                    kind=job.spec.kind,
                    index=job.spec.index,
                    attempt=job.attempt,
                )
            self.telemetry.record_span(
                job.spec.kind,
                job.start_time,
                job.end_time,
                status=status,
                index=job.spec.index,
                attempt=job.attempt,
                node=job.node_name,
            )
        if self.metrics is not None:
            if job.runtime_seconds is not None:
                self.metrics.histogram(
                    "job_wall_seconds", kind=job.spec.kind
                ).observe(job.runtime_seconds)
            if job.wait_seconds is not None:
                self.metrics.histogram(
                    "job_wait_seconds", kind=job.spec.kind
                ).observe(job.wait_seconds)
            outcome = "jobs_completed" if status == "ok" else "jobs_failed"
            self.metrics.counter(outcome, kind=job.spec.kind).inc()

    def _fail_job(self, job: Job, node: Node) -> None:
        """One attempt failed: resubmit under the retry policy or finalize."""
        node.release(job.spec.cores)
        job.end_time = self.sim.now
        self._record_attempt(job, "error")
        policy = self.retry_policy
        if policy is not None and policy.retries_left(job.attempt):
            delay = policy.backoff_seconds(job.spec.index, job.attempt)
            self.n_retried += 1
            if self.metrics is not None:
                self.metrics.counter("job_retries", kind=job.spec.kind).inc()
            job.reset_for_retry(self.sim.now + delay)
            self.sim.schedule(delay, lambda j=job: self._enqueue(j))
            self._request_dispatch()
            return
        job.state = JobState.FAILED
        self._abort_dependents(job)
        self._notify(job)
        self._request_dispatch()

    def _abort_dependents(self, job: Job) -> None:
        key = (job.spec.kind, job.spec.index)
        still_waiting = []
        for waiting in self._waiting_dependency:
            if waiting.spec.depends_on == key:
                waiting.state = JobState.CANCELLED
                waiting.end_time = self.sim.now
                self._notify(waiting)
            else:
                still_waiting.append(waiting)
        self._waiting_dependency = still_waiting

    def _finish_job(self, job: Job, node: Node) -> None:
        node.release(job.spec.cores)
        job.state = JobState.DONE
        job.end_time = self.sim.now
        self._record_attempt(job, "ok")
        # release dependents
        released = []
        still_waiting = []
        for waiting in self._waiting_dependency:
            dep = waiting.spec.depends_on
            if dep == (job.spec.kind, job.spec.index):
                released.append(waiting)
            else:
                still_waiting.append(waiting)
        self._waiting_dependency = still_waiting
        self._ready.extend(released)
        self._notify(job)
        self._request_dispatch()
