"""A minimal discrete-event simulation engine.

Deterministic: events at equal times fire in scheduling order (a strictly
increasing sequence number breaks ties), so simulations are exactly
reproducible -- a property the campaign tests rely on.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable


class Simulator:
    """Event queue with virtual time.

    Examples
    --------
    >>> sim = Simulator()
    >>> fired = []
    >>> _ = sim.schedule(5.0, lambda: fired.append(sim.now))
    >>> sim.run()
    >>> fired
    [5.0]
    """

    def __init__(self):
        self.now = 0.0
        self._queue: list[tuple[float, int, Callable]] = []
        self._seq = itertools.count()
        self._cancelled: set[int] = set()
        self.events_processed = 0

    def clock(self) -> Callable[[], float]:
        """A zero-argument virtual-time clock for telemetry recorders.

        ``TraceRecorder(clock=sim.clock())`` stamps spans in simulated
        seconds, so an SGE/Condor/EC2 campaign exports the *same* trace
        format as a live task-pool run (paper Fig 1 vs Fig 4 timelines).
        """
        return lambda: self.now

    def schedule(self, delay: float, callback: Callable) -> int:
        """Schedule ``callback`` to fire ``delay`` seconds from now.

        Returns an event handle usable with :meth:`cancel`.
        """
        if delay < 0:
            raise ValueError(f"delay must be >= 0, got {delay}")
        handle = next(self._seq)
        heapq.heappush(self._queue, (self.now + delay, handle, callback))
        return handle

    def schedule_at(self, time: float, callback: Callable) -> int:
        """Schedule at an absolute virtual time (>= now)."""
        if time < self.now:
            raise ValueError(f"cannot schedule in the past: {time} < {self.now}")
        return self.schedule(time - self.now, callback)

    def cancel(self, handle: int) -> None:
        """Cancel a scheduled event (lazy removal)."""
        self._cancelled.add(handle)

    def step(self) -> bool:
        """Process exactly one (non-cancelled) event.

        Returns False when the queue is empty.  Useful for observing a
        simulation mid-flight -- e.g. asserting that a retry's backoff
        delay elapsed before its resubmission fired.
        """
        while self._queue:
            time, handle, callback = heapq.heappop(self._queue)
            if handle in self._cancelled:
                self._cancelled.discard(handle)
                continue
            self.now = time
            self.events_processed += 1
            callback()
            return True
        return False

    def run(self, until: float | None = None) -> None:
        """Process events in time order, optionally stopping at ``until``.

        When stopping early the clock is advanced to ``until``.
        """
        while self._queue:
            time, handle, callback = self._queue[0]
            if until is not None and time > until:
                self.now = until
                return
            heapq.heappop(self._queue)
            if handle in self._cancelled:
                self._cancelled.discard(handle)
                continue
            self.now = time
            self.events_processed += 1
            callback()
        if until is not None and until > self.now:
            self.now = until

    @property
    def pending(self) -> int:
        """Number of scheduled (non-cancelled) events."""
        return len(self._queue) - len(self._cancelled)
