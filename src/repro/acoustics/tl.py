"""Transmission-loss fields from adiabatic normal modes.

The acoustic pressure at range r and depth z for a point source at depth
zs is the modal sum (far-field Hankel asymptotics)

    p(r, z) = (e^{i pi/4} / sqrt(8 pi r)) *
              sum_m psi_m(zs) psi_m(z) e^{i integral kr_m dr'} / sqrt(kr_m),

with TL = -20 log10 |p| re 1 m.  Range dependence is handled adiabatically:
modes are solved on each section column, matched by index, and the phase
accumulates the local wavenumber -- the standard approximation for the
mesoscale-scale environmental gradients ESSE produces.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.acoustics.environment import AcousticSection
from repro.acoustics.modes import ModeSet, solve_modes


@dataclass(frozen=True)
class TLField:
    """A transmission-loss field over a section.

    Attributes
    ----------
    ranges:
        Receiver ranges (m), shape ``(nr,)`` (excludes the source point).
    depths:
        Receiver depths (m), shape ``(nz,)``.
    tl:
        Transmission loss (dB re 1 m), shape ``(nz, nr)``; larger = weaker.
    frequency:
        Source frequency (Hz).
    source_depth:
        Source depth (m).
    """

    ranges: np.ndarray
    depths: np.ndarray
    tl: np.ndarray
    frequency: float
    source_depth: float

    def __post_init__(self):
        if self.tl.shape != (self.depths.size, self.ranges.size):
            raise ValueError(
                f"tl shape {self.tl.shape} != ({self.depths.size}, {self.ranges.size})"
            )

    def at(self, r: float, z: float) -> float:
        """TL at one (range, depth) by nearest-node lookup."""
        i = int(np.argmin(np.abs(self.ranges - r)))
        k = int(np.argmin(np.abs(self.depths - z)))
        return float(self.tl[k, i])

    def as_vector(self) -> np.ndarray:
        """Flattened TL field (used by the coupled covariance)."""
        return self.tl.ravel()


_TL_FLOOR_DB = 160.0  # cap for shadow zones / mode-free columns


def transmission_loss(
    section: AcousticSection,
    frequency: float,
    source_depth: float = 30.0,
    max_modes: int | None = 40,
) -> TLField:
    """Adiabatic normal-mode TL over a section.

    Parameters
    ----------
    section:
        Environment (sound speed vs depth and range); the source sits at
        range 0.
    frequency:
        Source frequency (Hz).
    source_depth:
        Source depth (m); must lie inside the waveguide.
    max_modes:
        Cap on the modal sum (lowest-order modes carry the energy).

    Notes
    -----
    Mode sets are matched by index between neighbouring columns, and the
    modal sum is truncated to the smallest local mode count -- the adiabatic
    approximation.  Columns with no propagating modes yield the TL floor.
    """
    if not 0.0 <= source_depth <= float(section.depths[-1]):
        raise ValueError(
            f"source depth {source_depth} outside waveguide "
            f"[0, {section.depths[-1]}]"
        )
    # Range-dependent waveguide: each column's eigenproblem is solved over
    # the local water depth (rigid seabed there); mode functions are padded
    # with zeros below the bottom so the adiabatic index-matching and the
    # receiver grid stay uniform.
    nz_full = section.depths.size
    mode_sets: list[ModeSet] = []
    for r_index in range(section.ranges.size):
        c_prof, water_depth = section.column(r_index)
        n_local = int(np.searchsorted(section.depths, water_depth + 1e-9))
        n_local = max(min(n_local, nz_full), 4)
        local = solve_modes(
            c_prof[:n_local],
            section.depths[:n_local],
            frequency,
            max_modes=max_modes,
        )
        if n_local < nz_full and local.n_modes > 0:
            psi_full = np.zeros((nz_full, local.n_modes))
            psi_full[:n_local, :] = local.psi
            local = ModeSet(
                kr=local.kr,
                psi=psi_full,
                depths=section.depths,
                frequency=frequency,
            )
        mode_sets.append(local)

    src_modes = mode_sets[0]
    nz = section.depths.size
    nr = section.ranges.size - 1
    tl = np.full((nz, nr), _TL_FLOOR_DB)

    if src_modes.n_modes > 0:
        amp_src = src_modes.at_depth(source_depth)
        # Adiabatic phase: cumulative integral of kr_m along range, per mode,
        # truncated to the minimum mode count available up to that range.
        for col in range(1, section.ranges.size):
            n_common = min(ms.n_modes for ms in mode_sets[: col + 1])
            if n_common == 0:
                continue
            r = float(section.ranges[col])
            if r <= 0:
                continue
            # trapezoid rule over columns 0..col for each common mode
            kr_path = np.stack(
                [mode_sets[c].kr[:n_common] for c in range(col + 1)], axis=1
            )
            seg = np.diff(section.ranges[: col + 1])
            phase = np.sum(0.5 * (kr_path[:, 1:] + kr_path[:, :-1]) * seg, axis=1)
            kr_here = mode_sets[col].kr[:n_common]
            psi_here = mode_sets[col].psi[:, :n_common]
            coeff = (
                amp_src[:n_common]
                * np.exp(1j * phase)
                / np.sqrt(kr_here)
            )
            pressure = (psi_here @ coeff) / np.sqrt(8.0 * np.pi * r)
            with np.errstate(divide="ignore"):
                tl_col = -20.0 * np.log10(np.abs(pressure))
            tl[:, col - 1] = np.minimum(
                np.where(np.isfinite(tl_col), tl_col, _TL_FLOOR_DB), _TL_FLOOR_DB
            )

    return TLField(
        ranges=section.ranges[1:].copy(),
        depths=section.depths.copy(),
        tl=tl,
        frequency=frequency,
        source_depth=source_depth,
    )


def broadband_transmission_loss(
    section: AcousticSection,
    frequencies: list[float] | np.ndarray,
    source_depth: float = 30.0,
    max_modes: int | None = 40,
) -> TLField:
    """Incoherent broadband TL: intensity-average over frequencies.

    The paper computes "a broadband transmission loss field" per ocean
    realization; incoherent averaging in intensity is the standard
    broadband reduction.
    """
    freqs = np.asarray(frequencies, dtype=float)
    if freqs.size == 0:
        raise ValueError("need at least one frequency")
    intensity = None
    for f in freqs:
        fld = transmission_loss(section, f, source_depth, max_modes)
        contrib = 10.0 ** (-fld.tl / 10.0)
        intensity = contrib if intensity is None else intensity + contrib
    intensity /= freqs.size
    with np.errstate(divide="ignore"):
        tl = -10.0 * np.log10(intensity)
    tl = np.minimum(np.where(np.isfinite(tl), tl, _TL_FLOOR_DB), _TL_FLOOR_DB)
    return TLField(
        ranges=section.ranges[1:].copy(),
        depths=section.depths.copy(),
        tl=tl,
        frequency=float(np.mean(freqs)),
        source_depth=source_depth,
    )
