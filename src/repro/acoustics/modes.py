"""Normal-mode solution of the vertical acoustic eigenproblem.

For a sound-speed profile c(z) in a waveguide of depth H at angular
frequency omega, the depth-separated Helmholtz equation is

    psi''(z) + (omega^2 / c(z)^2 - kr^2) psi(z) = 0,

with a pressure-release surface (psi(0) = 0) and a rigid bottom
(psi'(H) = 0).  Discretized on a uniform grid this is a symmetric
tridiagonal eigenproblem, solved with LAPACK's specialized
``eigh_tridiagonal`` driver restricted to the propagating band -- O(nz^2)
instead of a dense O(nz^3) solve, which keeps single-task cost in the
milliseconds and makes the 6000-task acoustic-climate runs (paper
Sec 5.2.1) cheap to reproduce faithfully.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.linalg


@dataclass(frozen=True)
class ModeSet:
    """Propagating modes of one profile at one frequency.

    Attributes
    ----------
    kr:
        Horizontal wavenumbers (rad/m), descending (mode 1 first).
    psi:
        Mode functions on the solver grid, shape ``(nz, n_modes)``,
        normalized so that ``integral psi_m^2 dz = 1``.
    depths:
        Solver grid (m), shape ``(nz,)``.
    frequency:
        Acoustic frequency (Hz).
    """

    kr: np.ndarray
    psi: np.ndarray
    depths: np.ndarray
    frequency: float

    @property
    def n_modes(self) -> int:
        """Number of propagating modes."""
        return self.kr.size

    def at_depth(self, depth: float) -> np.ndarray:
        """Mode amplitudes psi_m(depth) by linear interpolation."""
        out = np.empty(self.n_modes)
        for m in range(self.n_modes):
            out[m] = np.interp(depth, self.depths, self.psi[:, m])
        return out


def solve_modes(
    sound_speed: np.ndarray,
    depths: np.ndarray,
    frequency: float,
    max_modes: int | None = None,
) -> ModeSet:
    """Solve the vertical eigenproblem for one profile.

    Parameters
    ----------
    sound_speed:
        c(z) on ``depths`` (m/s).
    depths:
        Uniform ascending grid, metres positive down; ``depths[0]`` is the
        surface.
    frequency:
        Source frequency (Hz), > 0.
    max_modes:
        Optional cap on the number of returned modes.

    Returns
    -------
    ModeSet
        Possibly empty (no propagating modes below cutoff).
    """
    c = np.asarray(sound_speed, dtype=float)
    z = np.asarray(depths, dtype=float)
    if frequency <= 0:
        raise ValueError("frequency must be positive")
    if c.ndim != 1 or c.shape != z.shape:
        raise ValueError("sound_speed and depths must be matching 1-D arrays")
    if c.size < 4:
        raise ValueError("need at least 4 grid points")
    dz = np.diff(z)
    if np.any(dz <= 0) or not np.allclose(dz, dz[0], rtol=1e-6):
        raise ValueError("depth grid must be uniform and ascending")
    dz = float(dz[0])
    if np.any(c <= 0):
        raise ValueError("sound speed must be positive")

    omega = 2.0 * np.pi * frequency
    k2 = (omega / c) ** 2

    # Interior points: surface node removed by psi(0) = 0; the bottom node
    # keeps psi'(H) = 0 via a mirrored ghost point.
    n = c.size - 1  # unknowns: z_1..z_n (z_0 is the surface)
    diag = -2.0 / dz**2 + k2[1:]
    off = np.full(n - 1, 1.0 / dz**2)
    diag = diag.copy()
    diag[-1] = -2.0 / dz**2 + k2[-1] + 1.0 / dz**2  # rigid-bottom mirror

    # Propagating modes have kr^2 > min(k2); only the top of the spectrum
    # matters, so ask LAPACK for eigenvalues above the cutoff.
    cutoff = float(np.min(k2)) * 0.0  # kr^2 > 0: discard evanescent modes
    vals, vecs = scipy.linalg.eigh_tridiagonal(
        diag, off, select="v", select_range=(cutoff, float(np.max(k2)))
    )
    if vals.size == 0:
        return ModeSet(
            kr=np.empty(0),
            psi=np.empty((c.size, 0)),
            depths=z,
            frequency=frequency,
        )

    order = np.argsort(vals)[::-1]  # largest kr^2 = lowest mode first
    vals = vals[order]
    vecs = vecs[:, order]
    if max_modes is not None:
        vals = vals[:max_modes]
        vecs = vecs[:, :max_modes]

    kr = np.sqrt(vals)
    psi = np.zeros((c.size, kr.size))
    psi[1:, :] = vecs
    # Normalize: integral of psi^2 over depth = 1 (trapezoid on uniform grid).
    norms = np.sqrt(np.trapezoid(psi**2, dx=dz, axis=0))
    psi /= norms[None, :]
    # Sign convention: mode maximum positive near the surface duct.
    for m in range(kr.size):
        peak = np.argmax(np.abs(psi[:, m]))
        if psi[peak, m] < 0:
            psi[:, m] = -psi[:, m]
    return ModeSet(kr=kr, psi=psi, depths=z, frequency=frequency)
