"""Acoustic-climate ensembles: the many-task acoustic workload.

Paper Sec 2.2/3.1: "With enough compute power one can compute the whole
'acoustic climate' in a three-dimensional region, providing TL for any
source and receiver locations in the region as a function of time and
frequency, by running multiple independent tasks for different
sources/frequencies/slices at different times" -- Sec 5.2.1 reports 6000+
such jobs of ~3 minutes each following the ESSE run.

:func:`acoustic_climate_tasks` enumerates that task set; each task is a
pure function of (state, section, source, frequency) and can be executed
by any map-like executor (in-process, process pool, or the scheduler
simulator).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

import numpy as np

from repro.acoustics.environment import AcousticSection, extract_section
from repro.acoustics.tl import TLField, transmission_loss
from repro.ocean.grid import OceanGrid
from repro.ocean.model import ModelState


@dataclass(frozen=True)
class AcousticTask:
    """One independent acoustic computation (a many-task singleton).

    Attributes
    ----------
    task_id:
        Unique index in the climate campaign.
    slice_start, slice_end:
        Section end points (m); the source is at ``slice_start``.
    frequency:
        Source frequency (Hz).
    source_depth:
        Source depth (m).
    member_index:
        Which ESSE realization's ocean this task propagates through.
    """

    task_id: int
    slice_start: tuple[float, float]
    slice_end: tuple[float, float]
    frequency: float
    source_depth: float
    member_index: int = 0

    def run(
        self,
        grid: OceanGrid,
        state: ModelState,
        n_ranges: int = 16,
        dz: float = 4.0,
        max_depth: float | None = 300.0,
    ) -> TLField:
        """Execute the task against one ocean realization."""
        section = extract_section(
            grid,
            state,
            self.slice_start,
            self.slice_end,
            n_ranges=n_ranges,
            dz=dz,
            max_depth=max_depth,
        )
        return transmission_loss(
            section, self.frequency, source_depth=self.source_depth
        )


def acoustic_climate_tasks(
    grid: OceanGrid,
    n_slices: int = 8,
    frequencies: Sequence[float] = (100.0, 200.0, 400.0),
    source_depths: Sequence[float] = (15.0, 60.0),
    n_members: int = 1,
) -> list[AcousticTask]:
    """Enumerate the acoustic-climate task set for a region.

    Slices fan out from the bay mouth across the domain (rotated sections
    through the region); the cross product with frequencies, source depths
    and ensemble members yields the many-task workload --
    ``n_slices * len(frequencies) * len(source_depths) * n_members`` tasks.
    """
    if n_slices < 1:
        raise ValueError("need at least one slice")
    lx, ly = grid.nx * grid.dx, grid.ny * grid.dy
    center = (0.62 * lx, 0.55 * ly)  # near the bay mouth
    radius = 0.45 * min(lx, ly)
    tasks: list[AcousticTask] = []
    task_id = 0
    for member in range(n_members):
        for s in range(n_slices):
            angle = np.pi * (0.55 + 0.9 * s / max(n_slices - 1, 1))  # westward fan
            end = (
                center[0] + radius * np.cos(angle),
                center[1] + radius * np.sin(angle),
            )
            for f in frequencies:
                for zs in source_depths:
                    tasks.append(
                        AcousticTask(
                            task_id=task_id,
                            slice_start=center,
                            slice_end=end,
                            frequency=float(f),
                            source_depth=float(zs),
                            member_index=member,
                        )
                    )
                    task_id += 1
    return tasks


class AcousticClimate:
    """Run an acoustic-climate campaign and collect statistics.

    Parameters
    ----------
    grid:
        Model grid.
    tasks:
        Task set (see :func:`acoustic_climate_tasks`).

    Notes
    -----
    Individual task failures are tolerated, mirroring the ESSE ensemble
    philosophy (paper Sec 4 point 3): a failed task is recorded and
    excluded from the statistics.
    """

    def __init__(self, grid: OceanGrid, tasks: Iterable[AcousticTask]):
        self.grid = grid
        self.tasks = list(tasks)
        if not self.tasks:
            raise ValueError("acoustic climate needs at least one task")
        self.results: dict[int, TLField] = {}
        self.failures: dict[int, str] = {}

    def run(
        self,
        states: Sequence[ModelState] | ModelState,
        mapper: Callable | None = None,
        **task_kwargs,
    ) -> "AcousticClimate":
        """Execute all tasks.

        Parameters
        ----------
        states:
            One state (shared by all members) or a sequence indexed by
            ``member_index``.
        mapper:
            Optional ``map(func, iterable)``-compatible executor (e.g.
            ``ProcessPoolExecutor.map``); defaults to the builtin map.
        """
        states_seq = states if isinstance(states, (list, tuple)) else None

        def execute(task: AcousticTask):
            state = (
                states_seq[task.member_index] if states_seq is not None else states
            )
            try:
                return task.task_id, task.run(self.grid, state, **task_kwargs), None
            except Exception as exc:  # tolerated member failure
                return task.task_id, None, f"{type(exc).__name__}: {exc}"

        run_map = mapper if mapper is not None else map
        for task_id, field, error in run_map(execute, self.tasks):
            if error is None:
                self.results[task_id] = field
            else:
                self.failures[task_id] = error
        return self

    @property
    def completed(self) -> int:
        """Number of successfully completed tasks."""
        return len(self.results)

    def tl_statistics(self) -> dict[str, float]:
        """Aggregate TL statistics over all completed tasks."""
        if not self.results:
            raise RuntimeError("no completed acoustic tasks")
        all_tl = np.concatenate([f.tl.ravel() for f in self.results.values()])
        return {
            "mean": float(all_tl.mean()),
            "std": float(all_tl.std()),
            "min": float(all_tl.min()),
            "max": float(all_tl.max()),
        }
