"""Vertical acoustic sections through ocean model states.

"Sound-propagation studies often focus on vertical sections.  ESSE ocean
physics uncertainties are transferred to acoustical uncertainties along
such a section" (paper Sec 2.2).  :func:`extract_section` walks a straight
line between two points of the model grid, collects the (T, S) columns,
converts them to sound speed, and interpolates onto a fine uniform vertical
grid suitable for the mode solver.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.acoustics.soundspeed import sound_speed_profile
from repro.ocean.grid import OceanGrid
from repro.ocean.model import ModelState


@dataclass(frozen=True)
class AcousticSection:
    """A range-dependent vertical sound-speed section.

    Attributes
    ----------
    ranges:
        Along-section range of each column, metres from the source end,
        ascending, shape ``(nr,)``.
    depths:
        Uniform fine vertical grid, metres positive down, shape ``(nz,)``.
    sound_speed:
        Sound speed c(z, r), shape ``(nz, nr)``.
    temperature:
        Temperature interpolated on the same grid, shape ``(nz, nr)``
        (kept for the coupled physical-acoustical covariance).
    water_depth:
        Waveguide depth at each range (m), shape ``(nr,)``.
    """

    ranges: np.ndarray
    depths: np.ndarray
    sound_speed: np.ndarray
    temperature: np.ndarray
    water_depth: np.ndarray

    def __post_init__(self):
        nr = self.ranges.size
        nz = self.depths.size
        if self.sound_speed.shape != (nz, nr):
            raise ValueError(
                f"sound_speed shape {self.sound_speed.shape} != ({nz}, {nr})"
            )
        if self.temperature.shape != (nz, nr):
            raise ValueError("temperature shape mismatch")
        if self.water_depth.shape != (nr,):
            raise ValueError("water_depth shape mismatch")
        if np.any(np.diff(self.ranges) <= 0):
            raise ValueError("ranges must be strictly ascending")

    @property
    def length(self) -> float:
        """Section length in metres."""
        return float(self.ranges[-1] - self.ranges[0])

    def column(self, r_index: int) -> tuple[np.ndarray, float]:
        """(sound-speed profile, water depth) at one range index."""
        return self.sound_speed[:, r_index], float(self.water_depth[r_index])


def extract_section(
    grid: OceanGrid,
    state: ModelState,
    start: tuple[float, float],
    end: tuple[float, float],
    n_ranges: int = 24,
    dz: float = 4.0,
    max_depth: float | None = None,
    bathymetry: np.ndarray | None = None,
) -> AcousticSection:
    """Extract the sound-speed section between two points (metres).

    Columns falling on land reuse the nearest wet column (the instrumented
    line hugs the coast in Monterey Bay); the waveguide depth is the
    deepest model level by default, or ``max_depth``.

    Parameters
    ----------
    grid, state:
        Model grid and state to sample.
    start, end:
        Section end points ``(x, y)`` in metres; the source sits at
        ``start``.
    n_ranges:
        Number of columns along the section (>= 2).
    dz:
        Vertical resolution of the acoustic grid (m).
    max_depth:
        Waveguide truncation depth; defaults to the deepest model level.
    bathymetry:
        Optional water-depth field ``(ny, nx)`` (e.g.
        :attr:`SyntheticBathymetry.depth`); when given, the waveguide depth
        varies along range as ``min(bathymetry, max_depth)`` -- the
        Monterey-canyon geometry the TL solver handles adiabatically.
    """
    if n_ranges < 2:
        raise ValueError("need at least two range columns")
    if dz <= 0:
        raise ValueError("dz must be positive")
    z_model = np.asarray(grid.z_levels)
    bottom = float(max_depth if max_depth is not None else z_model[-1])
    if bottom <= z_model[0]:
        raise ValueError("max_depth must exceed the first model level")

    depths = np.arange(0.0, bottom + dz / 2, dz)
    fracs = np.linspace(0.0, 1.0, n_ranges)
    xs = start[0] + fracs * (end[0] - start[0])
    ys = start[1] + fracs * (end[1] - start[1])
    ranges = fracs * float(np.hypot(end[0] - start[0], end[1] - start[1]))

    if bathymetry is not None:
        bathymetry = np.asarray(bathymetry, dtype=float)
        if bathymetry.shape != grid.shape2d:
            raise ValueError(
                f"bathymetry shape {bathymetry.shape} != grid {grid.shape2d}"
            )

    c_cols = np.empty((depths.size, n_ranges))
    t_cols = np.empty((depths.size, n_ranges))
    water_depth = np.full(n_ranges, bottom)
    for k, (x, y) in enumerate(zip(xs, ys)):
        j, i = grid.nearest_point(x, y)
        t_prof = state.temp[:, j, i]
        s_prof = state.salt[:, j, i]
        c_model = sound_speed_profile(t_prof, s_prof, z_model)
        # Interpolate onto the fine grid; clamp beyond the model levels.
        c_cols[:, k] = np.interp(depths, z_model, c_model)
        t_cols[:, k] = np.interp(depths, z_model, t_prof)
        if bathymetry is not None:
            # at least a few nodes of water so the column supports modes
            floor = max(float(bathymetry[j, i]), 4 * dz)
            water_depth[k] = min(floor, bottom)
    return AcousticSection(
        ranges=ranges,
        depths=depths,
        sound_speed=c_cols,
        temperature=t_cols,
        water_depth=water_depth,
    )
