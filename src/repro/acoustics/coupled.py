"""Coupled physical-acoustical covariance and uncertainty modes.

Paper Sec 2.2: "The coupled physical-acoustical covariance P for the
section is computed and non-dimensionalized.  Its dominant eigenvectors
(uncertainty modes) can be used for coupled physical-acoustical
assimilation of hydrographic and TL data."

Given an ensemble of (temperature section, TL field) pairs, we stack each
pair into one joint vector, non-dimensionalize each block by its ensemble
spread, and take the thin SVD of the anomaly matrix -- the dominant left
singular vectors are the coupled uncertainty modes, and the implied
cross-covariance block quantifies how hydrographic errors map into TL
errors.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.acoustics.tl import TLField
from repro.util.linalg import truncated_svd


@dataclass(frozen=True)
class CoupledCovariance:
    """Low-rank factorization of the coupled covariance.

    The joint anomaly vector is ``[T_section / sT, TL / sTL]`` where sT and
    sTL are the scalar non-dimensionalization factors; the covariance is
    ``P = modes @ diag(variances) @ modes.T`` in those units.

    Attributes
    ----------
    modes:
        Orthonormal coupled uncertainty modes, shape ``(nT + nTL, p)``.
    variances:
        Mode variances (singular values squared / (N-1)), descending.
    n_physical:
        Size of the physical (temperature) block.
    temp_scale, tl_scale:
        Non-dimensionalization factors actually used.
    """

    modes: np.ndarray
    variances: np.ndarray
    n_physical: int
    temp_scale: float
    tl_scale: float

    @property
    def n_modes(self) -> int:
        """Number of retained coupled modes."""
        return self.variances.size

    def physical_block(self) -> np.ndarray:
        """The temperature part of each mode, shape ``(nT, p)``."""
        return self.modes[: self.n_physical, :]

    def acoustic_block(self) -> np.ndarray:
        """The TL part of each mode, shape ``(nTL, p)``."""
        return self.modes[self.n_physical :, :]

    def cross_covariance(self) -> np.ndarray:
        """Non-dimensional physical-acoustical covariance block ``(nT, nTL)``."""
        return (
            self.physical_block()
            @ np.diag(self.variances)
            @ self.acoustic_block().T
        )

    def coupling_fraction(self) -> np.ndarray:
        """Per-mode fraction of variance in the acoustic block (0..1)."""
        acoustic = np.sum(self.acoustic_block() ** 2, axis=0)
        total = np.sum(self.modes**2, axis=0)
        return acoustic / total

    def assimilate(
        self,
        mean_temp: np.ndarray,
        mean_tl: np.ndarray,
        observed_indices: np.ndarray,
        observed_values: np.ndarray,
        noise_std: float,
        block: str = "tl",
    ) -> tuple[np.ndarray, np.ndarray]:
        """Coupled physical-acoustical analysis (paper Sec 2.2).

        Assimilates scalar observations of one block (TL by default --
        e.g. measured transmission loss at receivers -- or temperature)
        and updates *both* fields through the coupled modes: TL data
        corrects the hydrography and vice versa.

        Parameters
        ----------
        mean_temp, mean_tl:
            Prior mean fields (any shapes; flattened to the covariance's
            block sizes).
        observed_indices:
            Flat indices into the observed block.
        observed_values:
            Measured values (physical units of that block).
        noise_std:
            Measurement noise std-dev (> 0).
        block:
            ``"tl"`` or ``"temp"``.

        Returns
        -------
        (analysis_temp, analysis_tl) with the input shapes.
        """
        if noise_std <= 0:
            raise ValueError("noise_std must be positive")
        if block not in ("tl", "temp"):
            raise ValueError(f"block must be 'tl' or 'temp', got {block!r}")
        t_shape, a_shape = mean_temp.shape, mean_tl.shape
        t_flat = np.asarray(mean_temp, dtype=float).ravel()
        a_flat = np.asarray(mean_tl, dtype=float).ravel()
        n_t = self.n_physical
        n_a = self.modes.shape[0] - n_t
        if t_flat.size != n_t or a_flat.size != n_a:
            raise ValueError(
                f"mean field sizes ({t_flat.size}, {a_flat.size}) do not match "
                f"covariance blocks ({n_t}, {n_a})"
            )
        idx = np.asarray(observed_indices, dtype=np.intp)
        values = np.asarray(observed_values, dtype=float)
        if idx.shape != values.shape or idx.ndim != 1 or idx.size == 0:
            raise ValueError("indices and values must be matching 1-D arrays")

        if block == "tl":
            if np.any(idx >= n_a):
                raise ValueError("TL observation index out of range")
            joint_rows = n_t + idx
            scale = self.tl_scale
            prior_at_obs = a_flat[idx]
        else:
            if np.any(idx >= n_t):
                raise ValueError("temperature observation index out of range")
            joint_rows = idx
            scale = self.temp_scale
            prior_at_obs = t_flat[idx]

        # Kalman update in mode space (normalized joint coordinates)
        hu = self.modes[joint_rows, :]  # (m, p)
        s_diag = self.variances
        innov = (values - prior_at_obs) / scale  # normalized innovation
        r_norm = (noise_std / scale) ** 2
        gram = (hu * s_diag[None, :]) @ hu.T + r_norm * np.eye(idx.size)
        solved = np.linalg.solve(gram, innov)
        coeffs = s_diag * (hu.T @ solved)  # (p,)
        increment = self.modes @ coeffs  # normalized joint increment
        t_new = t_flat + increment[:n_t] * self.temp_scale
        a_new = a_flat + increment[n_t:] * self.tl_scale
        return t_new.reshape(t_shape), a_new.reshape(a_shape)


def coupled_uncertainty_modes(
    temp_sections: np.ndarray,
    tl_fields: list[TLField] | np.ndarray,
    energy: float = 0.99,
    max_modes: int | None = None,
) -> CoupledCovariance:
    """Coupled physical-acoustical modes from an ensemble.

    Parameters
    ----------
    temp_sections:
        Ensemble of temperature sections, shape ``(N, ...)``; trailing axes
        are flattened.
    tl_fields:
        Matching ensemble of :class:`TLField` (or a raw ``(N, ...)`` array
        of TL values in dB).
    energy:
        Fraction of coupled variance retained by the truncation.
    max_modes:
        Optional hard cap on retained modes.

    Raises
    ------
    ValueError
        On ensemble size < 2 or mismatched member counts.
    """
    temps = np.asarray(temp_sections, dtype=float)
    if isinstance(tl_fields, np.ndarray):
        tls = tl_fields.astype(float)
    else:
        tls = np.stack([f.tl for f in tl_fields])
    n = temps.shape[0]
    if n < 2:
        raise ValueError("need an ensemble of at least 2 members")
    if tls.shape[0] != n:
        raise ValueError(
            f"{n} temperature members vs {tls.shape[0]} TL members"
        )
    t_mat = temps.reshape(n, -1)
    a_mat = tls.reshape(n, -1)

    t_anom = t_mat - t_mat.mean(axis=0)
    a_anom = a_mat - a_mat.mean(axis=0)
    # Non-dimensionalize each block by its RMS ensemble spread so neither
    # degC nor dB units dominate the joint SVD (paper: "computed and
    # non-dimensionalized").
    t_scale = float(np.sqrt(np.mean(t_anom**2))) or 1.0
    a_scale = float(np.sqrt(np.mean(a_anom**2))) or 1.0
    joint = np.hstack([t_anom / t_scale, a_anom / a_scale]).T  # (nT+nTL, N)
    joint /= np.sqrt(n - 1)

    u, s, _ = truncated_svd(joint, rank=max_modes, energy=energy if max_modes is None else None)
    return CoupledCovariance(
        modes=u,
        variances=s**2,
        n_physical=t_mat.shape[1],
        temp_scale=t_scale,
        tl_scale=a_scale,
    )
