"""Ocean acoustics: sound speed, normal-mode transmission loss, coupling.

Paper Sec 2.2: ESSE ocean uncertainties are transferred to acoustic
uncertainties along vertical sections; a broadband transmission-loss (TL)
field is computed for each ocean realization, and the coupled
physical-acoustical covariance yields joint uncertainty modes.  With enough
compute one evaluates the whole "acoustic climate" -- TL for any
source/receiver/frequency -- as a huge set of independent short tasks
(6000+ jobs of ~3 minutes in Sec 5.2.1).

This package implements that chain with an adiabatic normal-mode solver:

- :mod:`~repro.acoustics.soundspeed` -- Mackenzie sound speed from (T, S, z),
- :mod:`~repro.acoustics.environment` -- vertical sections through model states,
- :mod:`~repro.acoustics.modes` -- the vertical eigenproblem,
- :mod:`~repro.acoustics.tl` -- transmission-loss fields,
- :mod:`~repro.acoustics.climate` -- many-task acoustic-climate ensembles,
- :mod:`~repro.acoustics.coupled` -- coupled physical-acoustical covariance.
"""

from repro.acoustics.soundspeed import mackenzie_sound_speed, sound_speed_profile
from repro.acoustics.environment import AcousticSection, extract_section
from repro.acoustics.modes import ModeSet, solve_modes
from repro.acoustics.tl import transmission_loss, TLField
from repro.acoustics.climate import AcousticTask, AcousticClimate, acoustic_climate_tasks
from repro.acoustics.coupled import CoupledCovariance, coupled_uncertainty_modes

__all__ = [
    "mackenzie_sound_speed",
    "sound_speed_profile",
    "AcousticSection",
    "extract_section",
    "ModeSet",
    "solve_modes",
    "transmission_loss",
    "TLField",
    "AcousticTask",
    "AcousticClimate",
    "acoustic_climate_tasks",
    "CoupledCovariance",
    "coupled_uncertainty_modes",
]
