"""Sound speed in sea water.

Mackenzie's (1981) nine-term equation, the standard operational formula
relating sound speed to temperature, salinity and depth.  Valid for
T in [-2, 30] degC, S in [25, 40] psu, depth to 8000 m -- comfortably
covering the Monterey Bay regime.
"""

from __future__ import annotations

import numpy as np


def mackenzie_sound_speed(
    temperature: np.ndarray | float,
    salinity: np.ndarray | float,
    depth: np.ndarray | float,
) -> np.ndarray:
    """Sound speed c(T, S, D) in m/s (Mackenzie 1981).

    Parameters
    ----------
    temperature:
        Potential temperature, degC.
    salinity:
        Salinity, psu.
    depth:
        Depth, metres (positive down).

    All inputs broadcast together.
    """
    t = np.asarray(temperature, dtype=float)
    s = np.asarray(salinity, dtype=float)
    d = np.asarray(depth, dtype=float)
    if np.any(d < 0):
        raise ValueError("depth must be non-negative (positive down)")
    c = (
        1448.96
        + 4.591 * t
        - 5.304e-2 * t**2
        + 2.374e-4 * t**3
        + 1.340 * (s - 35.0)
        + 1.630e-2 * d
        + 1.675e-7 * d**2
        - 1.025e-2 * t * (s - 35.0)
        - 7.139e-13 * t * d**3
    )
    return c


def sound_speed_profile(
    temp_profile: np.ndarray,
    salt_profile: np.ndarray,
    z_levels: np.ndarray,
) -> np.ndarray:
    """Sound-speed profile from model (T, S) columns.

    Parameters
    ----------
    temp_profile, salt_profile:
        Arrays over depth levels; leading axis is depth, any trailing axes
        broadcast (so whole sections work in one call).
    z_levels:
        Depth of each level, metres, matching the leading axis.
    """
    temp_profile = np.asarray(temp_profile, dtype=float)
    salt_profile = np.asarray(salt_profile, dtype=float)
    z = np.asarray(z_levels, dtype=float)
    if temp_profile.shape != salt_profile.shape:
        raise ValueError("temperature and salinity shapes differ")
    if temp_profile.shape[0] != z.size:
        raise ValueError(
            f"{temp_profile.shape[0]} levels in profile vs {z.size} depths"
        )
    depth = z.reshape((-1,) + (1,) * (temp_profile.ndim - 1))
    return mackenzie_sound_speed(temp_profile, salt_profile, depth)
