"""The backend-selectable ensemble propagation engine.

The paper treats member propagation as a pool of independent tasks, but
on one shared-memory node the square-root-EnKF literature's formulation
is faster: keep the whole ensemble as a single ``(state_dim, N)`` matrix
and step every member with one pass of vectorized numpy.  This module
provides both, behind one interface:

- :class:`SerialBackend` -- one member at a time, in process (the Fig 3
  loop's propagation, useful as the equivalence baseline);
- :class:`ThreadsBackend` -- the task-pool idiom with a thread pool
  (GIL-bound for numpy-light models, matching the regression that
  motivated the batched backend);
- :class:`BatchedBackend` -- vectorized propagation via
  :meth:`~repro.core.ensemble.EnsembleRunner.run_members_batched`,
  *bit-identical* to the serial backend under a fixed seed;
- :class:`ProcessesBackend` -- a true :class:`ProcessPoolExecutor` pool
  whose workers write forecast columns straight into a
  :class:`~repro.workflow.parallel.SharedEnsembleBuffer`, preserving the
  fault-injection/retry semantics of the Fig 4 workflow and feeding the
  covariance store without serializing member state.

:class:`EnsembleEngine` drives any backend through the staged ESSE loop
(propagate -> accumulate anomalies -> publish to the memmap column store
-> warm-started SVD -> convergence test -> grow), i.e. the Fig 3 control
flow with the Fig 5-era storage/SVD pipeline.  Backend choice is
config-driven via the ``engine`` section of
:class:`repro.config.ExperimentConfig`.  See ``docs/ENSEMBLE_ENGINE.md``
for the backend matrix and N-vs-workers guidance.
"""

from __future__ import annotations

import pickle
import time
import warnings
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor, as_completed
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.core.convergence import ConvergenceCriterion
from repro.core.covariance import AnomalyAccumulator
from repro.core.driver import ESSEConfig
from repro.core.ensemble import EnsembleRunner, MemberResult
from repro.core.subspace import ErrorSubspace
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.spans import NULL_RECORDER
from repro.workflow.covfile import MemmapCovarianceStore
from repro.workflow.faults import FaultInjector, FaultKind
from repro.workflow.monitor import ProgressMonitor
from repro.workflow.parallel import (
    DegradedEnsembleWarning,
    SharedEnsembleBuffer,
    _shm_member_task,
    _shm_worker_init,
)
from repro.workflow.policies import RetryPolicy
from repro.workflow.statefiles import StatusDirectory, TaskStatus

#: Backend names accepted by :func:`make_backend` and the config section.
BACKEND_NAMES = ("serial", "threads", "batched", "processes")


class EnsembleBackend:
    """Strategy interface: how one stage's members get propagated.

    A backend receives the engine (for the runner, status directory,
    telemetry and fault/retry policies), the mean state and the member
    indices of one growth stage, and must call ``deliver(result)`` once
    per member with a :class:`~repro.core.ensemble.MemberResult` --
    always from the thread that called :meth:`propagate`, so the engine
    needs no locks around its accumulator.

    ``members_per_task`` is the progress-accounting contract: how many
    members one status record written by this backend covers (1 for the
    per-member backends; the batch size for :class:`BatchedBackend`).
    :meth:`EnsembleEngine.progress_monitor` uses it so batched runs do
    not report 1/N progress.
    """

    #: Backend name (matches the config value and telemetry attributes).
    name: str = "abstract"
    #: Members covered by one status record (see class docstring).
    members_per_task: int = 1
    #: Status-record kind this backend writes.
    status_kind: str = "pemodel"

    def propagate(self, engine, mean_state, indices, deliver) -> None:
        """Run ``indices`` and hand each member's result to ``deliver``."""
        raise NotImplementedError

    def close(self) -> None:
        """Release pooled resources (default: nothing to release)."""


class SerialBackend(EnsembleBackend):
    """One member at a time, in process -- the equivalence baseline."""

    name = "serial"

    def propagate(self, engine, mean_state, indices, deliver) -> None:
        """Run each member sequentially, delivering in index order."""
        for idx in indices:
            with engine.telemetry.span("pemodel", index=idx, backend=self.name):
                result = engine.runner.run_member(mean_state, idx)
            engine.status.write(
                "pemodel",
                idx,
                TaskStatus.SUCCESS if result.ok else TaskStatus.MODEL_FAILURE,
            )
            deliver(result)


class ThreadsBackend(EnsembleBackend):
    """The task-pool idiom with an in-process thread pool.

    Parameters
    ----------
    n_workers:
        Thread-pool width.  Threads interleave rather than parallelize
        the numpy-light member model (the GIL regression the batched
        backend exists to fix), but they exercise the out-of-order
        completion path cheaply.
    """

    name = "threads"

    def __init__(self, n_workers: int = 4):
        if n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        self.n_workers = n_workers

    def propagate(self, engine, mean_state, indices, deliver) -> None:
        """Run members on the pool; deliver in completion order."""

        def task(idx: int) -> MemberResult:
            with engine.telemetry.span("pemodel", index=idx, backend=self.name):
                return engine.runner.run_member(mean_state, idx)

        with ThreadPoolExecutor(max_workers=self.n_workers) as pool:
            futures = {pool.submit(task, idx): idx for idx in indices}
            for future in as_completed(futures):
                result = future.result()
                engine.status.write(
                    "pemodel",
                    result.member_index,
                    TaskStatus.SUCCESS if result.ok else TaskStatus.MODEL_FAILURE,
                )
                deliver(result)


class BatchedBackend(EnsembleBackend):
    """Vectorized propagation of whole member batches.

    The ensemble is packed into an ``(state_dim, N)`` matrix and every
    member steps in one pass of vectorized numpy
    (:meth:`~repro.core.ensemble.EnsembleRunner.run_members_batched`);
    trajectories are bit-identical to the serial backend under a fixed
    seed.  One *task* -- and therefore one status record, of kind
    ``pemodel_batch`` -- covers ``batch_size`` members, which is why
    :attr:`members_per_task` matters to progress monitoring.

    Parameters
    ----------
    batch_size:
        Members per vectorized batch.  Larger batches amortize numpy
        dispatch overhead further but cost ``O(batch_size)`` working
        memory; see docs/ENSEMBLE_ENGINE.md for guidance.
    """

    name = "batched"
    status_kind = "pemodel_batch"

    def __init__(self, batch_size: int = 8):
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        self.batch_size = batch_size

    @property
    def members_per_task(self) -> int:
        """One batch task covers ``batch_size`` members."""
        return self.batch_size

    def propagate(self, engine, mean_state, indices, deliver) -> None:
        """Run members in vectorized batches; deliver per member."""
        indices = list(indices)
        for lo in range(0, len(indices), self.batch_size):
            chunk = indices[lo : lo + self.batch_size]
            batch_no = engine.next_batch_no(len(chunk))
            with engine.telemetry.span(
                "pemodel.batch", batch=batch_no, size=len(chunk), backend=self.name
            ):
                results = engine.runner.run_members_batched(mean_state, chunk)
            any_ok = any(r.ok for r in results)
            engine.status.write(
                "pemodel_batch",
                batch_no,
                TaskStatus.SUCCESS if any_ok else TaskStatus.MODEL_FAILURE,
            )
            for result in results:
                deliver(result)


class ProcessesBackend(EnsembleBackend):
    """A true process pool writing member state into shared memory.

    Workers run one member each and write the forecast vector straight
    into their assigned column of a
    :class:`~repro.workflow.parallel.SharedEnsembleBuffer`; the parent
    validates the column (a NaN tail means a torn write) and hands the
    *same bytes* to the anomaly accumulator feeding the memmap
    covariance store -- member state never rides through a pickled
    Future or an npz member file.

    Fault/retry semantics match the Fig 4 workflow
    (``docs/FAILURE_MODEL.md``): injected CRASH fails the attempt before
    any column lands, CORRUPT produces a half-written column caught by
    the parent's finiteness validator (IO_FAILURE), STALL sleeps in the
    worker, and SUBMIT_FAILURE is retried at submit time up to
    :attr:`MAX_SUBMIT_TRIES`.  With a
    :class:`~repro.workflow.policies.RetryPolicy`, failed attempts are
    resubmitted into *fresh* slots after the policy's deterministic
    backoff; terminal failures degrade the ensemble gracefully.

    Parameters
    ----------
    n_workers:
        Process-pool width.
    """

    name = "processes"

    #: Bound on transient-submit retries per member (same guard as
    #: :attr:`ParallelESSEWorkflow.MAX_SUBMIT_TRIES`).
    MAX_SUBMIT_TRIES = 50

    def __init__(self, n_workers: int = 2):
        if n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        self.n_workers = n_workers

    def propagate(self, engine, mean_state, indices, deliver) -> None:
        """Run members on a process pool via the shared-memory buffer."""
        indices = list(indices)
        if not indices:
            return
        runner = engine.runner
        retry = engine.retry
        faults = engine.faults
        state_dim = runner.model.layout.size
        max_attempts = retry.max_attempts if retry is not None else 1
        capacity = len(indices) * max_attempts
        buffer = SharedEnsembleBuffer(state_dim, capacity)
        try:
            payload = pickle.dumps(
                {
                    "runner": runner,
                    "mean_state": mean_state,
                    "status_dir": str(engine.workdir / "status"),
                    "faults": faults,
                    "shm_name": buffer.name,
                    "state_dim": state_dim,
                    "capacity": capacity,
                }
            )
            with ProcessPoolExecutor(
                max_workers=self.n_workers,
                initializer=_shm_worker_init,
                initargs=(payload,),
            ) as pool:
                next_slot = 0
                attempts = {idx: 1 for idx in indices}
                slot_of: dict[int, int] = {}

                def submit(idx: int):
                    """Submit the member's current attempt into a fresh slot."""
                    nonlocal next_slot
                    if faults is not None:
                        tries = 1
                        while faults.submit_fails(idx, tries):
                            faults.fire(FaultKind.SUBMIT_FAILURE, idx, tries)
                            tries += 1
                            if tries > self.MAX_SUBMIT_TRIES:
                                engine.status.write(
                                    "pemodel",
                                    idx,
                                    TaskStatus.IO_FAILURE,
                                    attempt=attempts[idx],
                                )
                                deliver(
                                    MemberResult(
                                        idx, None, "submit failures exhausted"
                                    )
                                )
                                return None
                    slot = next_slot
                    next_slot += 1
                    slot_of[idx] = slot
                    return pool.submit(_shm_member_task, idx, slot, attempts[idx])

                futures = {}
                for idx in indices:
                    future = submit(idx)
                    if future is not None:
                        futures[future] = idx
                while futures:
                    for future in as_completed(list(futures)):
                        idx = futures.pop(future)
                        try:
                            r_idx, slot, att, ok, err = future.result()
                        except Exception as exc:  # worker infrastructure died
                            r_idx, slot = idx, slot_of[idx]
                            att, ok = attempts[idx], False
                            err = f"worker error: {exc!r}"
                        if ok:
                            column = buffer.column(slot)
                            if np.all(np.isfinite(column)):
                                # Zero-copy: the result aliases the shared
                                # segment; the engine's deliver copies it
                                # into the accumulator before the buffer
                                # is unlinked below.
                                deliver(MemberResult(r_idx, column))
                                continue
                            # Torn write: the worker reported success but
                            # the column carries the NaN fill in its tail.
                            engine.status.write(
                                "pemodel", r_idx, TaskStatus.IO_FAILURE, attempt=att
                            )
                            ok, err = False, "torn shared-memory column"
                        if retry is not None and retry.retries_left(att):
                            attempts[r_idx] = att + 1
                            delay = retry.backoff_seconds(r_idx, att)
                            if delay > 0:
                                time.sleep(delay)
                            engine.note_retry(r_idx, att + 1, err or "failure")
                            resubmitted = submit(r_idx)
                            if resubmitted is not None:
                                futures[resubmitted] = r_idx
                        else:
                            deliver(MemberResult(r_idx, None, err or "failure"))
        finally:
            buffer.close()
            buffer.unlink()


def make_backend(
    name: str,
    n_workers: int = 4,
    batch_size: int = 8,
) -> EnsembleBackend:
    """Construct an :class:`EnsembleBackend` from its config name.

    Parameters
    ----------
    name:
        One of :data:`BACKEND_NAMES`.
    n_workers:
        Pool width for the ``threads`` / ``processes`` backends.
    batch_size:
        Batch width for the ``batched`` backend.
    """
    if name == "serial":
        return SerialBackend()
    if name == "threads":
        return ThreadsBackend(n_workers=n_workers)
    if name == "batched":
        return BatchedBackend(batch_size=batch_size)
    if name == "processes":
        return ProcessesBackend(n_workers=n_workers)
    raise ValueError(f"unknown backend {name!r}; valid: {BACKEND_NAMES}")


@dataclass
class EngineResult:
    """Outcome of one :class:`EnsembleEngine` run."""

    subspace: ErrorSubspace
    ensemble_size: int  # members actually in the final covariance
    converged: bool
    convergence_history: tuple[tuple[int, float], ...]
    member_ids: tuple[int, ...]
    failed_members: tuple[int, ...]
    n_retried: int
    wall_seconds: float
    backend: str
    degraded: bool = False  # members lost terminally; subspace from survivors


class EnsembleEngine:
    """Staged ESSE ensemble growth over a selectable propagation backend.

    The control flow is the serial shepherd's (perturb/forecast a stage,
    fold anomalies, SVD, convergence test, grow), but propagation is
    delegated to an :class:`EnsembleBackend` and the covariance path is
    the scalable PR-5 pipeline: anomalies accumulate append-only, ship
    to the :class:`~repro.workflow.covfile.MemmapCovarianceStore`
    (``O(n)`` bytes per member), and the SVD reads the published prefix
    zero-copy, warm-starting from the previous stage's factorization
    when the config allows.

    Parameters
    ----------
    runner:
        Ensemble runner shared by all members.
    config:
        ESSE sizing/convergence configuration.
    workdir:
        Working directory (status records + covariance column store).
    backend:
        An :class:`EnsembleBackend` instance, or a name for
        :func:`make_backend` with its defaults.
    retry:
        Resubmission policy, honoured by the ``processes`` backend (the
        in-process backends capture failures without raising, matching
        the seed semantics where a member failure is terminal).
    faults:
        Deterministic fault injector, honoured by the ``processes``
        backend.
    telemetry:
        Span recorder; also supplies the engine's only clock.
    metrics:
        Optional registry fed covariance byte counts and retry counters.
    """

    def __init__(
        self,
        runner: EnsembleRunner,
        config: ESSEConfig,
        workdir: str | Path,
        backend: EnsembleBackend | str = "batched",
        retry: RetryPolicy | None = None,
        faults: FaultInjector | None = None,
        telemetry=None,
        metrics: MetricsRegistry | None = None,
    ):
        self.runner = runner
        self.config = config
        self.workdir = Path(workdir)
        self.workdir.mkdir(parents=True, exist_ok=True)
        self.status = StatusDirectory(self.workdir / "status")
        self.store = MemmapCovarianceStore(self.workdir)
        self.backend = (
            make_backend(backend) if isinstance(backend, str) else backend
        )
        self.retry = retry
        self.faults = faults
        self.telemetry = telemetry if telemetry is not None else NULL_RECORDER
        self.metrics = metrics
        self._clock = self.telemetry.clock
        self._batch_counter = 0
        self._batch_sizes: dict[int, int] = {}
        self._n_retried = 0

    # -- backend services --------------------------------------------------

    def next_batch_no(self, size: int = 1) -> int:
        """Allocate the next batch-task index (batched backend bookkeeping).

        ``size`` is the number of members riding in the batch; the exact
        per-batch sizes feed :meth:`progress_monitor`, since staged growth
        can produce several partial batches that a uniform weight would
        over-count.
        """
        n = self._batch_counter
        self._batch_counter += 1
        self._batch_sizes[n] = size
        return n

    def note_retry(self, index: int, attempt: int, why: str) -> None:
        """Count one resubmission (processes backend bookkeeping)."""
        self._n_retried += 1
        if self.metrics is not None:
            self.metrics.counter("task_retries", kind="pemodel").inc()
        self.telemetry.event("retry", index=index, attempt=attempt, why=why)

    # -- monitoring --------------------------------------------------------

    def progress_monitor(
        self,
        expected_members: int | None = None,
        metrics: MetricsRegistry | None = None,
    ) -> ProgressMonitor:
        """A member-accurate progress monitor for this engine's backend.

        Batched runs write one status record per batch *task*; the
        returned monitor carries the exact member count of every batch
        the engine has recorded so progress and ETA are reported in
        member units, not task units (the 1/N-progress bug this
        parameter exists to fix).  Exact sizes matter because batching
        happens within each growth stage: a stage of 4 members batched
        in threes yields batches of 3 and 1, and a uniform
        ``batch_size`` weight would over-count both stages.  Before the
        engine has run, the backend's uniform weight is used instead.
        """
        n = (
            int(expected_members)
            if expected_members is not None
            else self.config.max_ensemble_size
        )
        weight = self.backend.members_per_task
        kind = self.backend.status_kind
        if self._batch_sizes:
            members_per_task = {kind: dict(self._batch_sizes)}
        elif weight > 1:
            members_per_task = {kind: weight}
        else:
            members_per_task = None
        return ProgressMonitor(
            self.status,
            {kind: n},
            clock=self._clock,
            metrics=metrics,
            members_per_task=members_per_task,
        )

    # -- main loop ---------------------------------------------------------

    def run(self, mean_state) -> EngineResult:
        """Grow the ensemble until convergence, Nmax or Tmax."""
        cfg = self.config
        started = self._clock()
        failed: list[int] = []
        subspace: ErrorSubspace | None = None
        criterion = ConvergenceCriterion(tolerance=cfg.convergence_tolerance)
        estimator = cfg.subspace_estimator()

        with self.telemetry.span("engine.run", backend=self.backend.name):
            with self.telemetry.span("central_forecast"):
                central = self.runner.central_forecast(mean_state)
            accumulator = AnomalyAccumulator(
                self.runner.model.layout, self.runner.model.to_vector(central)
            )

            def deliver(result: MemberResult) -> None:
                """Fold one member result into the anomaly matrix."""
                if result.ok:
                    accumulator.add_member(result.member_index, result.forecast)
                else:
                    failed.append(result.member_index)

            next_index = 0
            try:
                for round_no, stage_target in enumerate(cfg.stage_sizes()):
                    indices = list(range(next_index, stage_target))
                    next_index = stage_target
                    with self.telemetry.span(
                        "engine.propagate",
                        round=round_no,
                        size=len(indices),
                        backend=self.backend.name,
                    ):
                        self.backend.propagate(self, mean_state, indices, deliver)
                    if accumulator.count >= 2:
                        with self.telemetry.span(
                            "engine.svd", count=accumulator.count
                        ) as span:
                            # Publish through the memmap column store and
                            # factor the *published* snapshot -- the same
                            # zero-copy read path the Fig 4 SVD worker uses.
                            view = accumulator.view()
                            nbytes = self.store.sync_from(view)
                            self.store.publish()
                            if self.metrics is not None:
                                self.metrics.counter("cov.bytes_written").inc(
                                    nbytes
                                )
                            snap = self.store.read_safe()
                            if estimator is not None:
                                subspace = estimator.update(
                                    snap.columns, snap.count, snap.scale
                                )
                                span.set(path=estimator.last_path)
                            else:
                                subspace = ErrorSubspace.from_anomalies(
                                    snap.anomalies,
                                    rank=cfg.max_subspace_rank,
                                    energy=cfg.svd_energy,
                                )
                            criterion.update(subspace, count=snap.count)
                            span.set(rank=subspace.rank)
                    if criterion.converged:
                        break
                    if cfg.deadline_seconds is not None and (
                        self._clock() - started > cfg.deadline_seconds
                    ):
                        break
            finally:
                self.backend.close()
                # The column store's write handles are only needed while the
                # run appends; the published files stay readable after close.
                self.store.close()

        if subspace is None:
            raise RuntimeError("no ensemble members survived the engine run")
        degraded = bool(failed)
        if degraded:
            warnings.warn(
                f"ensemble degraded: {len(failed)} member(s) lost terminally "
                "(retries exhausted or disabled); the error subspace is "
                "estimated from the surviving members only (see "
                "docs/FAILURE_MODEL.md)",
                DegradedEnsembleWarning,
                stacklevel=2,
            )
        return EngineResult(
            subspace=subspace,
            ensemble_size=accumulator.count,
            converged=criterion.converged,
            convergence_history=tuple(criterion.history),
            member_ids=accumulator.member_ids,
            failed_members=tuple(failed),
            n_retried=self._n_retried,
            wall_seconds=self._clock() - started,
            backend=self.backend.name,
            degraded=degraded,
        )
