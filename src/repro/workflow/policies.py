"""Cancellation and deadline policies for the parallel ESSE workflow.

Paper Sec 4.1: "If the convergence test succeeds, the remaining ensemble
members (queued for execution or running) are canceled, and depending on
the time constraints ... and an associated policy, either the ensemble
calculation concludes immediately or the remaining ensemble results already
calculated are diffed ... In theory one could also spare any ensemble
calculations close to finishing."
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum


class CancellationPolicy(Enum):
    """What to do with in-flight members when convergence is declared."""

    IMMEDIATE = "immediate"  # cancel queued AND ignore still-running results
    DRAIN_RUNNING = "drain_running"  # cancel queued, keep results of running
    SPARE_ALMOST_DONE = "spare_almost_done"  # also let nearly-done tasks finish


@dataclass(frozen=True)
class DeadlinePolicy:
    """Tmax handling: the forecast must be timely (paper Sec 4 point 1).

    Parameters
    ----------
    tmax_seconds:
        Wall-clock budget for the ensemble stage; None = unlimited.
    grace_fraction:
        With SPARE_ALMOST_DONE, tasks whose estimated remaining time is
        below this fraction of their typical duration are allowed to finish.
    """

    tmax_seconds: float | None = None
    grace_fraction: float = 0.2

    def __post_init__(self):
        if self.tmax_seconds is not None and self.tmax_seconds < 0:
            raise ValueError("tmax_seconds must be >= 0")
        if not 0.0 <= self.grace_fraction <= 1.0:
            raise ValueError("grace_fraction must be in [0, 1]")

    def expired(self, elapsed_seconds: float) -> bool:
        """Whether the ensemble-stage budget is spent."""
        return self.tmax_seconds is not None and elapsed_seconds >= self.tmax_seconds
