"""Cancellation, deadline and retry policies for the parallel ESSE workflow.

Paper Sec 4.1: "If the convergence test succeeds, the remaining ensemble
members (queued for execution or running) are canceled, and depending on
the time constraints ... and an associated policy, either the ensemble
calculation concludes immediately or the remaining ensemble results already
calculated are diffed ... In theory one could also spare any ensemble
calculations close to finishing."

:class:`RetryPolicy` generalizes the paper's tolerance of member failure
(Sec 4 point 3: "failures ... are not catastrophic") from *ignore the
member* to *resubmit the member*: on Grid and EC2 substrates (Sec 5.3-5.4)
tasks die, stall, or never report, and rerunning a member is cheap and
exactly reproducible because its statistics depend only on (root seed,
perturbation index), never on which attempt produced the output.  See
``docs/FAILURE_MODEL.md`` for the full failure model.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.util.rng import SeedSequenceStream


class CancellationPolicy(Enum):
    """What to do with in-flight members when convergence is declared."""

    IMMEDIATE = "immediate"  # cancel queued AND ignore still-running results
    DRAIN_RUNNING = "drain_running"  # cancel queued, keep results of running
    SPARE_ALMOST_DONE = "spare_almost_done"  # also let nearly-done tasks finish


@dataclass(frozen=True)
class DeadlinePolicy:
    """Tmax handling: the forecast must be timely (paper Sec 4 point 1).

    Parameters
    ----------
    tmax_seconds:
        Wall-clock budget for the ensemble stage; None = unlimited.
    grace_fraction:
        With SPARE_ALMOST_DONE, tasks whose estimated remaining time is
        below this fraction of their typical duration are allowed to finish.
    """

    tmax_seconds: float | None = None
    grace_fraction: float = 0.2

    def __post_init__(self):
        if self.tmax_seconds is not None and self.tmax_seconds < 0:
            raise ValueError("tmax_seconds must be >= 0")
        if not 0.0 <= self.grace_fraction <= 1.0:
            raise ValueError("grace_fraction must be in [0, 1]")

    def expired(self, elapsed_seconds: float) -> bool:
        """Whether the ensemble-stage budget is spent."""
        return self.tmax_seconds is not None and elapsed_seconds >= self.tmax_seconds


@dataclass(frozen=True)
class RetryPolicy:
    """Resubmission of failed, corrupt, or straggling members.

    Parameters
    ----------
    max_attempts:
        Total attempts per member (first run included).  ``1`` disables
        retries, recovering the seed behaviour where every failure is
        terminal.
    backoff_base_s:
        Delay before the first resubmission.
    backoff_factor:
        Multiplier applied per additional attempt (exponential backoff).
    jitter:
        Fractional jitter: attempt delays are scaled by a factor drawn
        uniformly from ``[1, 1 + jitter]``.  The draw depends only on
        ``(seed, index, attempt)``, so a fixed seed reproduces the exact
        backoff schedule regardless of thread timing.
    timeout_seconds:
        Per-attempt wall-clock budget.  An attempt running longer is a
        *straggler*: it is cancelled (its result, if any, is discarded)
        and the member is resubmitted -- the paper's "cancellation of
        superfluous members" generalized to cancellation of *stuck* ones.
        None disables straggler handling.
    seed:
        Root seed of the jitter stream.
    """

    max_attempts: int = 3
    backoff_base_s: float = 0.05
    backoff_factor: float = 2.0
    jitter: float = 0.1
    timeout_seconds: float | None = None
    seed: int = 0

    def __post_init__(self):
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.backoff_base_s < 0:
            raise ValueError("backoff_base_s must be >= 0")
        if self.backoff_factor < 1.0:
            raise ValueError("backoff_factor must be >= 1")
        if self.jitter < 0:
            raise ValueError("jitter must be >= 0")
        if self.timeout_seconds is not None and self.timeout_seconds <= 0:
            raise ValueError("timeout_seconds must be positive")

    def retries_left(self, attempt: int) -> bool:
        """Whether attempt number ``attempt`` (1-based) may be followed."""
        return attempt < self.max_attempts

    def backoff_seconds(self, index: int, attempt: int) -> float:
        """Delay before resubmitting ``index`` after failed ``attempt``.

        Deterministic in ``(seed, index, attempt)``; independent of the
        order in which failures are observed.
        """
        if attempt < 1:
            raise ValueError("attempt is 1-based")
        base = self.backoff_base_s * self.backoff_factor ** (attempt - 1)
        if self.jitter == 0:
            return base
        u = SeedSequenceStream(self.seed).rng("backoff", index, attempt).random()
        return base * (1.0 + self.jitter * u)

    def schedule(self, index: int, n_attempts: int | None = None) -> list[float]:
        """The full backoff schedule for one member (for tests/docs)."""
        n = self.max_attempts if n_attempts is None else n_attempts
        return [self.backoff_seconds(index, a) for a in range(1, n)]
