"""The parallel (many-task) ESSE workflow -- paper Fig 4.

The serial shepherd's loops are decoupled into concurrently running
components:

- a *pool* of member tasks of size M >= N executed by a worker pool
  ("these calculations can be done concurrently on different machines, as
  there is no actual serial dependence in the forecasting loop");
- a continuously running *differ* that consumes finished members in
  completion order (not index order) and appends them to the covariance
  matrix, tracking which perturbation index each column came from;
- a decoupled *SVD/convergence worker* that reads consistent snapshots via
  the three-file protocol "using the latest result available from the diff
  loop", checking whenever "a multiple of a set number of realizations has
  finished";
- *cancellation*: on convergence the remaining members are cancelled per
  policy, and on failure near the pool size the pool is enlarged in stages
  "to make sure that there is no point during this process where the
  pipeline of results drains".

Every component appends to a shared event log, from which the Fig 4 bench
derives phase overlap and speedup versus the serial implementation.
"""

from __future__ import annotations

import pickle
import threading
import time
from concurrent.futures import Future, ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.core.convergence import ConvergenceCriterion
from repro.core.covariance import AnomalyAccumulator
from repro.core.driver import ESSEConfig
from repro.core.ensemble import EnsembleRunner
from repro.core.subspace import ErrorSubspace
from repro.workflow.covfile import CovarianceFileSet
from repro.workflow.policies import CancellationPolicy
from repro.workflow.statefiles import StatusDirectory, TaskStatus


@dataclass(frozen=True)
class WorkflowEvent:
    """One timestamped event in the run (seconds since workflow start)."""

    time: float
    kind: str
    detail: str = ""


@dataclass
class WorkflowResult:
    """Outcome of the parallel ESSE workflow."""

    subspace: ErrorSubspace
    ensemble_size: int  # members actually in the final covariance
    converged: bool
    convergence_history: tuple[tuple[int, float], ...]
    events: tuple[WorkflowEvent, ...]
    n_completed: int
    n_failed: int
    n_cancelled: int
    wall_seconds: float
    member_ids: tuple[int, ...]

    def events_of(self, kind: str) -> list[WorkflowEvent]:
        """All events of one kind, in time order."""
        return [e for e in self.events if e.kind == kind]

    def overlap_fraction(self) -> float:
        """Fraction of diff activity overlapping the forecast phase.

        In the serial implementation this is 0 by construction; the MTC
        pipeline should push it toward 1.
        """
        members = self.events_of("member_done")
        diffs = self.events_of("diff_added")
        if not members or not diffs:
            return 0.0
        last_member = members[-1].time
        overlapping = sum(1 for e in diffs if e.time <= last_member)
        return overlapping / len(diffs)


# -- process-pool plumbing ----------------------------------------------------
#
# Remote execution hosts in the paper write their outputs and status files
# to a shared filesystem; the differ on the master consumes them.  With a
# process pool we mirror that: workers receive the runner/state once via
# the initializer, write member files + status records themselves, and
# return only (index, ok).

_WORKER_CTX: dict = {}


def _process_worker_init(payload: bytes) -> None:
    _WORKER_CTX.update(pickle.loads(payload))


def _process_member_task(index: int) -> tuple[int, bool, str | None]:
    runner: EnsembleRunner = _WORKER_CTX["runner"]
    mean_state = _WORKER_CTX["mean_state"]
    members_dir = Path(_WORKER_CTX["members_dir"])
    status = StatusDirectory(_WORKER_CTX["status_dir"])
    result = runner.run_member(mean_state, index)
    if result.ok:
        path = members_dir / f"forecast_{index:05d}.npz"
        tmp = path.with_suffix(".tmp.npz")
        np.savez(tmp, forecast=result.forecast)
        tmp.replace(path)
        status.write("pemodel", index, TaskStatus.SUCCESS)
        return index, True, None
    status.write("pemodel", index, TaskStatus.MODEL_FAILURE)
    return index, False, result.error


class ParallelESSEWorkflow:
    """Fig 4: pool + continuous differ + decoupled SVD/convergence.

    Parameters
    ----------
    runner:
        Ensemble runner shared by all members.
    config:
        ESSE sizing/convergence configuration; stage sizes double as the
        SVD checkpoints.
    workdir:
        Shared working directory (member files, status files, covariance
        protocol files).
    n_workers:
        Worker pool width.
    cancellation:
        Policy applied to in-flight members on convergence.
    use_processes:
        Run members in a process pool (true parallelism) instead of
        threads.  Threads are the default: cheap, and sufficient for the
        correctness-level tests.
    poll_interval:
        Differ/SVD thread polling period (s).
    pool_margin:
        The task pool stays this factor ahead of the next SVD checkpoint
        so the pipeline never drains.
    """

    def __init__(
        self,
        runner: EnsembleRunner,
        config: ESSEConfig,
        workdir: str | Path,
        n_workers: int = 4,
        cancellation: CancellationPolicy = CancellationPolicy.DRAIN_RUNNING,
        use_processes: bool = False,
        poll_interval: float = 0.005,
        pool_margin: float = 1.5,
    ):
        if n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        if pool_margin < 1.0:
            raise ValueError("pool_margin must be >= 1")
        self.runner = runner
        self.config = config
        self.workdir = Path(workdir)
        self.members_dir = self.workdir / "members"
        self.members_dir.mkdir(parents=True, exist_ok=True)
        self.status = StatusDirectory(self.workdir / "status")
        self.covset = CovarianceFileSet(self.workdir)
        self.n_workers = n_workers
        self.cancellation = cancellation
        self.use_processes = use_processes
        self.poll_interval = poll_interval
        self.pool_margin = pool_margin

        self._events: list[WorkflowEvent] = []
        self._events_lock = threading.Lock()
        self._t0 = 0.0

    # -- event log ---------------------------------------------------------

    def _log(self, kind: str, detail: str = "") -> None:
        with self._events_lock:
            self._events.append(
                WorkflowEvent(time.perf_counter() - self._t0, kind=kind, detail=detail)
            )

    # -- component threads ----------------------------------------------------

    def _differ_loop(
        self,
        accumulator: AnomalyAccumulator,
        stop: threading.Event,
        acc_lock: threading.Lock,
    ) -> None:
        """Continuously fold finished members into the covariance files."""
        while True:
            new_any = False
            for index in self.status.successful_indices("pemodel"):
                with acc_lock:
                    if accumulator.has_member(index):
                        continue
                path = self.members_dir / f"forecast_{index:05d}.npz"
                try:
                    with np.load(path) as data:
                        forecast = data["forecast"].copy()
                except (FileNotFoundError, OSError):
                    continue  # status visible before file: retry next sweep
                with acc_lock:
                    if accumulator.has_member(index):
                        continue
                    accumulator.add_member(index, forecast)
                    count = accumulator.count
                    matrix = accumulator.matrix() if count >= 2 else None
                    ids = list(accumulator.member_ids)
                self._log("diff_added", f"member={index} count={count}")
                if matrix is not None:
                    self.covset.write_live(matrix, ids)
                    self.covset.publish()
                    self._log("publish", f"count={count}")
                new_any = True
            if stop.is_set() and not new_any:
                return
            if not new_any:
                time.sleep(self.poll_interval)

    def _svd_loop(
        self,
        criterion: ConvergenceCriterion,
        checkpoints: list[int],
        converged: threading.Event,
        stop: threading.Event,
        out: dict,
    ) -> None:
        """Continuously SVD the safe snapshot at ensemble-size checkpoints."""
        next_cp = 0
        last_version = -1
        while not stop.is_set() and not converged.is_set():
            snap = self.covset.read_safe()
            if snap is None or snap.version == last_version:
                time.sleep(self.poll_interval)
                continue
            last_version = snap.version
            if next_cp >= len(checkpoints) or snap.count < checkpoints[next_cp]:
                continue
            next_cp += 1
            self._log("svd_start", f"count={snap.count}")
            subspace = ErrorSubspace.from_anomalies(
                snap.anomalies,
                rank=self.config.max_subspace_rank,
                energy=self.config.svd_energy,
            )
            rho = criterion.update(subspace)
            out["subspace"] = subspace
            out["count"] = snap.count
            self._log(
                "svd_done",
                f"count={snap.count} rank={subspace.rank}"
                + (f" rho={rho:.4f}" if rho is not None else ""),
            )
            if criterion.converged:
                self._log("converged", f"count={snap.count}")
                converged.set()
                return

    # -- main -------------------------------------------------------------------

    def _make_executor(self, mean_state):
        if self.use_processes:
            payload = pickle.dumps(
                {
                    "runner": self.runner,
                    "mean_state": mean_state,
                    "members_dir": str(self.members_dir),
                    "status_dir": str(self.workdir / "status"),
                }
            )
            return ProcessPoolExecutor(
                max_workers=self.n_workers,
                initializer=_process_worker_init,
                initargs=(payload,),
            )
        return ThreadPoolExecutor(max_workers=self.n_workers)

    def _submit(self, executor, mean_state, index: int) -> Future:
        if self.use_processes:
            return executor.submit(_process_member_task, index)

        def task(idx=index):
            result = self.runner.run_member(mean_state, idx)
            if result.ok:
                path = self.members_dir / f"forecast_{idx:05d}.npz"
                tmp = path.with_suffix(".tmp.npz")
                np.savez(tmp, forecast=result.forecast)
                tmp.replace(path)
                self.status.write("pemodel", idx, TaskStatus.SUCCESS)
                return idx, True, None
            self.status.write("pemodel", idx, TaskStatus.MODEL_FAILURE)
            return idx, False, result.error

        return executor.submit(task)

    def run(self, mean_state) -> WorkflowResult:
        """Execute the many-task pipeline until convergence/Nmax/Tmax."""
        cfg = self.config
        self._events = []
        self._t0 = time.perf_counter()
        started = self._t0

        central = self.runner.central_forecast(mean_state)
        self._log("central_done")
        accumulator = AnomalyAccumulator(
            self.runner.model.layout, self.runner.model.to_vector(central)
        )
        criterion = ConvergenceCriterion(tolerance=cfg.convergence_tolerance)
        checkpoints = cfg.stage_sizes()

        stop = threading.Event()
        converged = threading.Event()
        acc_lock = threading.Lock()
        svd_out: dict = {}

        thread_errors: list[BaseException] = []

        def guarded(target, *args):
            def body():
                try:
                    target(*args)
                except BaseException as exc:  # surface in the main thread
                    thread_errors.append(exc)
                    stop.set()
                    converged.set()  # unblock the main loop

            return body

        differ = threading.Thread(
            target=guarded(self._differ_loop, accumulator, stop, acc_lock),
            name="esse-differ",
        )
        svd_worker = threading.Thread(
            target=guarded(
                self._svd_loop, criterion, checkpoints, converged, stop, svd_out
            ),
            name="esse-svd",
        )
        differ.start()
        svd_worker.start()

        futures: dict[int, Future] = {}
        n_cancelled = 0
        try:
            with self._make_executor(mean_state) as executor:
                pool_target = min(
                    int(np.ceil(checkpoints[0] * self.pool_margin)),
                    cfg.max_ensemble_size,
                )
                next_index = 0
                seen_done: set[int] = set()

                def extend_pool(target: int):
                    nonlocal next_index
                    while next_index < target:
                        futures[next_index] = self._submit(
                            executor, mean_state, next_index
                        )
                        next_index += 1

                def observe_done() -> int:
                    for idx, f in futures.items():
                        if idx not in seen_done and f.done() and not f.cancelled():
                            seen_done.add(idx)
                            self._log("member_done", f"member={idx}")
                    return len(seen_done)

                extend_pool(pool_target)
                self._log("pool", f"size={pool_target}")

                while not converged.is_set():
                    reached = observe_done()
                    # keep the pool ahead of the next unreached checkpoint
                    pending_cp = [c for c in checkpoints if c > reached]
                    if pending_cp and next_index < cfg.max_ensemble_size:
                        want = min(
                            int(np.ceil(pending_cp[0] * self.pool_margin)),
                            cfg.max_ensemble_size,
                        )
                        if want > next_index:
                            extend_pool(want)
                            self._log("enlarge", f"size={next_index}")
                    if all(f.done() for f in futures.values()) and (
                        next_index >= cfg.max_ensemble_size
                    ):
                        break  # Nmax exhausted without convergence
                    if cfg.deadline_seconds is not None and (
                        time.perf_counter() - started > cfg.deadline_seconds
                    ):
                        self._log("deadline")
                        break
                    time.sleep(self.poll_interval)

                # Cancellation of superfluous members (queued and/or running)
                for idx, f in futures.items():
                    if f.cancel():
                        n_cancelled += 1
                        self.status.write("pemodel", idx, TaskStatus.CANCELLED)
                        self._log("cancel", f"member={idx}")
                if self.cancellation is not CancellationPolicy.IMMEDIATE:
                    # drain: let running members finish and be diffed
                    for f in futures.values():
                        if not f.cancelled():
                            try:
                                f.result()
                            except Exception:
                                pass  # counted from the status directory
                    observe_done()
        finally:
            # let the differ fold in any drained results, then stop workers
            stop.set()
            differ.join()
            svd_worker.join()
        if thread_errors:
            raise RuntimeError(
                f"workflow component thread failed: {thread_errors[0]!r}"
            ) from thread_errors[0]

        # Final SVD over everything available ("another SVD calculation is
        # performed and all available results are used") unless IMMEDIATE.
        with acc_lock:
            final_count = accumulator.count
        if final_count >= 2 and (
            self.cancellation is not CancellationPolicy.IMMEDIATE
            and final_count > svd_out.get("count", 0)
        ):
            with acc_lock:
                matrix = accumulator.matrix()
            subspace = ErrorSubspace.from_anomalies(
                matrix, rank=cfg.max_subspace_rank, energy=cfg.svd_energy
            )
            criterion.update(subspace)
            svd_out["subspace"] = subspace
            svd_out["count"] = final_count
            self._log("final_svd", f"count={final_count}")

        if "subspace" not in svd_out:
            raise RuntimeError("parallel workflow finished without a subspace")

        statuses = self.status.completed_indices("pemodel")
        n_completed = sum(1 for s in statuses.values() if s == TaskStatus.SUCCESS)
        n_failed = sum(1 for s in statuses.values() if s == TaskStatus.MODEL_FAILURE)
        with acc_lock:
            member_ids = accumulator.member_ids
        return WorkflowResult(
            subspace=svd_out["subspace"],
            ensemble_size=svd_out["count"],
            converged=converged.is_set() or criterion.converged,
            convergence_history=tuple(criterion.history),
            events=tuple(self._events),
            n_completed=n_completed,
            n_failed=n_failed,
            n_cancelled=n_cancelled,
            wall_seconds=time.perf_counter() - started,
            member_ids=member_ids,
        )
