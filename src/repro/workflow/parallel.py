"""The parallel (many-task) ESSE workflow -- paper Fig 4.

The serial shepherd's loops are decoupled into concurrently running
components:

- a *pool* of member tasks of size M >= N executed by a worker pool
  ("these calculations can be done concurrently on different machines, as
  there is no actual serial dependence in the forecasting loop");
- a continuously running *differ* that consumes finished members in
  completion order (not index order) and appends them to the covariance
  matrix, tracking which perturbation index each column came from;
- a decoupled *SVD/convergence worker* that reads consistent snapshots via
  the three-file protocol "using the latest result available from the diff
  loop", checking whenever "a multiple of a set number of realizations has
  finished";
- *cancellation*: on convergence the remaining members are cancelled per
  policy, and on failure near the pool size the pool is enlarged in stages
  "to make sure that there is no point during this process where the
  pipeline of results drains";
- *fault tolerance*: with a :class:`~repro.workflow.policies.RetryPolicy`,
  members that fail, time out past a straggler deadline, or produce a
  corrupt output file are resubmitted with deterministic exponential
  backoff, and the run degrades gracefully to whatever converged subspace
  the surviving members support when retries are exhausted (see
  ``docs/FAILURE_MODEL.md``).  A seedable
  :class:`~repro.workflow.faults.FaultInjector` exercises all of this on
  demand.

Every component appends to a shared event log, from which the Fig 4 bench
derives phase overlap and speedup versus the serial implementation.
"""

from __future__ import annotations

import heapq
import pickle
import threading
import time
import warnings
from concurrent.futures import Future, ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field
from multiprocessing import shared_memory
from pathlib import Path

import numpy as np

from repro.core.convergence import ConvergenceCriterion
from repro.core.covariance import AnomalyAccumulator, AnomalyView
from repro.core.driver import ESSEConfig
from repro.core.ensemble import EnsembleRunner
from repro.core.subspace import ErrorSubspace
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.spans import NULL_RECORDER
from repro.util.fsio import durable_replace
from repro.util.sanitizer import new_lock, track
from repro.workflow.covfile import CovarianceFileSet, MemmapCovarianceStore
from repro.workflow.faults import FaultInjector, FaultKind
from repro.workflow.policies import CancellationPolicy, RetryPolicy
from repro.workflow.statefiles import StatusDirectory, TaskStatus


# Re-exported for backward compatibility: the warning moved to
# repro.core.taskmodel so the core tiled analysis can raise it too
# without a core -> workflow import (REP005).
from repro.core.taskmodel import DegradedEnsembleWarning


@dataclass(frozen=True)
class WorkflowEvent:
    """One timestamped event in the run (seconds since workflow start)."""

    time: float
    kind: str
    detail: str = ""


@dataclass
class WorkflowResult:
    """Outcome of the parallel ESSE workflow."""

    subspace: ErrorSubspace
    ensemble_size: int  # members actually in the final covariance
    converged: bool
    convergence_history: tuple[tuple[int, float], ...]
    events: tuple[WorkflowEvent, ...]
    n_completed: int
    n_failed: int
    n_cancelled: int
    wall_seconds: float
    member_ids: tuple[int, ...]
    n_retried: int = 0  # resubmissions actually executed
    n_timed_out: int = 0  # straggler attempts cancelled past the deadline
    degraded: bool = False  # members lost terminally; subspace from survivors

    def events_of(self, kind: str) -> list[WorkflowEvent]:
        """All events of one kind, in time order."""
        return [e for e in self.events if e.kind == kind]

    def overlap_fraction(self) -> float:
        """Fraction of diff activity overlapping the forecast phase.

        In the serial implementation this is 0 by construction; the MTC
        pipeline should push it toward 1.
        """
        members = self.events_of("member_done")
        diffs = self.events_of("diff_added")
        if not members or not diffs:
            return 0.0
        last_member = members[-1].time
        overlapping = sum(1 for e in diffs if e.time <= last_member)
        return overlapping / len(diffs)


# -- process-pool plumbing ----------------------------------------------------
#
# Remote execution hosts in the paper write their outputs and status files
# to a shared filesystem; the differ on the master consumes them.  With a
# process pool we mirror that: workers receive the runner/state once via
# the initializer, write member files + status records themselves, and
# return only (index, ok).

_WORKER_CTX: dict = {}


def _process_worker_init(payload: bytes) -> None:
    _WORKER_CTX.update(pickle.loads(payload))


def _execute_member(
    runner: EnsembleRunner,
    mean_state,
    index: int,
    attempt: int,
    members_dir: Path,
    status: StatusDirectory,
    faults: FaultInjector | None,
    cancel: threading.Event | None,
) -> tuple[int, int, bool, str | None]:
    """One member attempt: inject faults, write output + attempt status.

    Returns ``(index, attempt, ok, error)``.  A cancelled attempt writes
    nothing (the main loop already recorded TIMED_OUT for it); an injected
    CORRUPT attempt deliberately writes a truncated file *and* a success
    status -- the torn-shared-FS-write case the differ must catch.
    """
    fault = faults.draw(index, attempt) if faults is not None else None
    if fault is FaultKind.STALL:
        faults.fire(fault, index, attempt)
        if faults.stall(cancel):
            return index, attempt, False, "stall cancelled"
    result = runner.run_member(mean_state, index)
    if cancel is not None and cancel.is_set():
        return index, attempt, False, "cancelled"
    if fault is FaultKind.CRASH:
        faults.fire(fault, index, attempt)
        status.write("pemodel", index, TaskStatus.MODEL_FAILURE, attempt=attempt)
        return index, attempt, False, "injected crash before output"
    if result.ok:
        path = members_dir / f"forecast_{index:05d}.npz"
        tmp = path.with_suffix(".tmp.npz")
        np.savez(tmp, forecast=result.forecast)
        if fault is FaultKind.CORRUPT:
            faults.fire(fault, index, attempt)
            tmp.write_bytes(faults.corrupt_bytes(tmp.read_bytes()))
        durable_replace(tmp, path)
        status.write("pemodel", index, TaskStatus.SUCCESS, attempt=attempt)
        return index, attempt, True, None
    status.write("pemodel", index, TaskStatus.MODEL_FAILURE, attempt=attempt)
    return index, attempt, False, result.error


def _process_member_task(index: int, attempt: int = 1) -> tuple[int, int, bool, str | None]:
    return _execute_member(
        _WORKER_CTX["runner"],
        _WORKER_CTX["mean_state"],
        index,
        attempt,
        Path(_WORKER_CTX["members_dir"]),
        StatusDirectory(_WORKER_CTX["status_dir"]),
        _WORKER_CTX.get("faults"),
        None,  # process attempts cannot be cancelled cooperatively
    )


# -- shared-memory ensemble plumbing ------------------------------------------
#
# The engine's process backend (workflow/ensemble.py) replaces the npz
# member files above with a single POSIX shared-memory column buffer:
# workers write their forecast vector straight into their assigned column
# and the parent hands the very same bytes to the anomaly accumulator and
# the memmap covariance store -- no member-file serialization, no pickled
# forecast riding back through the Future.  Layout, lifecycle and the
# torn-write failure mode are documented in docs/ENSEMBLE_ENGINE.md.


class SharedEnsembleBuffer:
    """An ``(state_dim, capacity)`` float64 column buffer in shared memory.

    One column per member *attempt*: the parent assigns each submission a
    fresh slot, so a column is written at most once and is immutable from
    the moment its worker's SUCCESS status lands (the same append-only
    discipline as the covariance column store).  Columns are NaN-filled
    at creation; a torn write -- a worker that died or a
    :class:`~repro.workflow.faults.FaultKind.CORRUPT` injection that
    stops half-way -- leaves NaNs in the tail, which is exactly what the
    parent-side validator checks before accepting a column.

    Lifecycle: the parent creates (and NaN-fills) the segment, workers
    attach by name in their initializer and keep the mapping for the
    pool's lifetime, and the parent ``close()`` + ``unlink()`` in a
    ``finally`` once the batch is accumulated.  The engine's pools fork
    from the parent, so all processes share one resource tracker and the
    parent's unlink is the single point of truth.

    Parameters
    ----------
    state_dim:
        Rows (packed ESSE state dimension).
    capacity:
        Columns (member attempts the buffer can hold).
    name:
        Existing segment to attach to; None creates a new one.
    """

    def __init__(self, state_dim: int, capacity: int, name: str | None = None):
        if state_dim < 1 or capacity < 1:
            raise ValueError("state_dim and capacity must be >= 1")
        self.state_dim = int(state_dim)
        self.capacity = int(capacity)
        nbytes = self.state_dim * self.capacity * 8
        if name is None:
            self._shm = shared_memory.SharedMemory(create=True, size=nbytes)
            self._owner = True
        else:
            self._shm = shared_memory.SharedMemory(name=name)
            self._owner = False
        # Column-major so each member's column is contiguous, matching
        # the covariance store's on-disk layout.
        self.array = np.ndarray(
            (self.state_dim, self.capacity),
            dtype=np.float64,
            order="F",
            buffer=self._shm.buf,
        )
        if self._owner:
            self.array.fill(np.nan)

    @property
    def name(self) -> str:
        """The segment name workers attach to."""
        return self._shm.name

    def column(self, slot: int) -> np.ndarray:
        """The (contiguous, zero-copy) column view for one attempt slot."""
        if not 0 <= slot < self.capacity:
            raise IndexError(f"slot {slot} outside capacity {self.capacity}")
        return self.array[:, slot]

    def close(self) -> None:
        """Drop this process's mapping (the segment itself survives)."""
        # The ndarray view must die before the mmap can close.
        self.array = None
        self._shm.close()

    def unlink(self) -> None:
        """Remove the segment (owner-side, after all workers are done)."""
        if self._owner:
            self._shm.unlink()

    @classmethod
    def attach(cls, name: str, state_dim: int, capacity: int) -> "SharedEnsembleBuffer":
        """Attach to an existing segment created by the parent."""
        return cls(state_dim, capacity, name=name)


def _shm_worker_init(payload: bytes) -> None:
    """Pool initializer: unpack the context and map the shared buffer once."""
    _WORKER_CTX.update(pickle.loads(payload))
    _WORKER_CTX["buffer"] = SharedEnsembleBuffer.attach(
        _WORKER_CTX["shm_name"],
        _WORKER_CTX["state_dim"],
        _WORKER_CTX["capacity"],
    )


def _shm_member_task(index: int, slot: int, attempt: int = 1) -> tuple[int, int, int, bool, str | None]:
    """One member attempt writing its forecast column into shared memory.

    Returns ``(index, slot, attempt, ok, error)``.  The fault semantics
    mirror :func:`_execute_member`: CRASH writes a failure status and no
    column; CORRUPT writes *half* the column plus a success status (the
    torn-write case the parent's finiteness validator must catch, the
    shared-memory analogue of the differ's torn npz read); STALL sleeps
    before running.  The status record lands only after the column bytes
    are in place, so a SUCCESS status always refers to fully written (or
    deliberately torn) bytes, never a column still in flight.
    """
    runner: EnsembleRunner = _WORKER_CTX["runner"]
    mean_state = _WORKER_CTX["mean_state"]
    status = StatusDirectory(_WORKER_CTX["status_dir"])
    faults: FaultInjector | None = _WORKER_CTX.get("faults")
    buffer: SharedEnsembleBuffer = _WORKER_CTX["buffer"]

    fault = faults.draw(index, attempt) if faults is not None else None
    if fault is FaultKind.STALL:
        faults.fire(fault, index, attempt)
        faults.stall(None)
    result = runner.run_member(mean_state, index)
    if fault is FaultKind.CRASH:
        faults.fire(fault, index, attempt)
        status.write("pemodel", index, TaskStatus.MODEL_FAILURE, attempt=attempt)
        return index, slot, attempt, False, "injected crash before output"
    if result.ok:
        column = buffer.column(slot)
        if fault is FaultKind.CORRUPT:
            faults.fire(fault, index, attempt)
            half = result.forecast.size // 2
            column[:half] = result.forecast[:half]
        else:
            column[:] = result.forecast
        status.write("pemodel", index, TaskStatus.SUCCESS, attempt=attempt)
        return index, slot, attempt, True, None
    status.write("pemodel", index, TaskStatus.MODEL_FAILURE, attempt=attempt)
    return index, slot, attempt, False, result.error


class ParallelESSEWorkflow:
    """Fig 4: pool + continuous differ + decoupled SVD/convergence.

    Parameters
    ----------
    runner:
        Ensemble runner shared by all members.
    config:
        ESSE sizing/convergence configuration; stage sizes double as the
        SVD checkpoints.
    workdir:
        Shared working directory (member files, status files, covariance
        protocol files).
    n_workers:
        Worker pool width.
    cancellation:
        Policy applied to in-flight members on convergence.
    use_processes:
        Run members in a process pool (true parallelism) instead of
        threads.  Threads are the default: cheap, and sufficient for the
        correctness-level tests.
    poll_interval:
        Differ/SVD thread polling period (s).
    pool_margin:
        The task pool stays this factor ahead of the next SVD checkpoint
        so the pipeline never drains.
    retry:
        Resubmission policy for failed/corrupt/straggling members.  None
        (the default) keeps the seed semantics: every failure is terminal.
        Straggler cancellation (``retry.timeout_seconds``) requires the
        thread backend; process-pool attempts cannot be interrupted.
    faults:
        Deterministic fault injector exercised by every member attempt;
        None runs fault-free.
    telemetry:
        A :class:`~repro.telemetry.spans.TraceRecorder` to receive spans
        (per-member attempts, differ folds, SVD computations) and which
        supplies the workflow's *only* time source via its ``clock``.
        The default :data:`~repro.telemetry.spans.NULL_RECORDER` records
        nothing and keeps the seed behaviour/overhead.
    metrics:
        A :class:`~repro.telemetry.metrics.MetricsRegistry` fed task
        latencies, retry/timeout counters, pool-size gauges, differ
        I/O-retry counts, covariance bytes written (``cov.bytes_written``)
        and warm-start SVD path counters (``svd.warm_start``,
        ``svd.exact_fallback``); None disables metric recording.
    covfile_backend:
        ``"memmap"`` (default) publishes snapshots through the
        append-only :class:`~repro.workflow.covfile.MemmapCovarianceStore`
        -- ``O(n)`` bytes per member and zero-copy reads; ``"npz"`` keeps
        the paper-faithful safe/live npz pair, rewriting the full
        ``(n, N)`` matrix per arrival.  Both present identical
        publish/read-safe semantics (``docs/COVFILE_PROTOCOL.md``).
    """

    #: Bound on transient-submit retries per member before the submission
    #: is declared terminally failed (guards a pathological injector).
    MAX_SUBMIT_TRIES = 50

    def __init__(
        self,
        runner: EnsembleRunner,
        config: ESSEConfig,
        workdir: str | Path,
        n_workers: int = 4,
        cancellation: CancellationPolicy = CancellationPolicy.DRAIN_RUNNING,
        use_processes: bool = False,
        poll_interval: float = 0.005,
        pool_margin: float = 1.5,
        retry: RetryPolicy | None = None,
        faults: FaultInjector | None = None,
        telemetry=None,
        metrics: MetricsRegistry | None = None,
        covfile_backend: str = "memmap",
    ):
        if n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        if pool_margin < 1.0:
            raise ValueError("pool_margin must be >= 1")
        if covfile_backend not in ("memmap", "npz"):
            raise ValueError(f"unknown covfile_backend {covfile_backend!r}")
        self.runner = runner
        self.config = config
        self.workdir = Path(workdir)
        self.members_dir = self.workdir / "members"
        self.members_dir.mkdir(parents=True, exist_ok=True)
        self.status = StatusDirectory(self.workdir / "status")
        self.covfile_backend = covfile_backend
        if covfile_backend == "memmap":
            self.covset = MemmapCovarianceStore(self.workdir)
        else:
            self.covset = CovarianceFileSet(self.workdir)
        self.n_workers = n_workers
        self.cancellation = cancellation
        self.use_processes = use_processes
        self.poll_interval = poll_interval
        self.pool_margin = pool_margin
        self.retry = retry
        self.faults = faults
        self.telemetry = telemetry if telemetry is not None else NULL_RECORDER
        self.metrics = metrics
        # The single time source for the whole workflow: every "now" --
        # event stamps, retry backoff deadlines, straggler timers, the
        # Tmax check -- goes through this clock so tests can inject a
        # fake one end-to-end.
        self._clock = self.telemetry.clock

        self._events: list[WorkflowEvent] = []
        self._events_lock = new_lock("ParallelESSEWorkflow._events_lock")
        self._t0 = 0.0
        self._root_span = None
        # worker -> main-loop signals (guarded by _fault_lock)
        self._fault_lock = new_lock("ParallelESSEWorkflow._fault_lock")
        self._corrupt_found: list[int] = []
        self._started_at: dict[tuple[int, int], float] = {}  # (index, attempt)
        self._missing_sweeps: dict[int, int] = {}
        # Under REPRO_SANITIZE=1 the lockset detector watches the shared
        # worker <-> main-loop state; a no-op otherwise.
        track(self, "_events", "_corrupt_found", "_started_at", "_missing_sweeps")

    # -- event log ---------------------------------------------------------

    def _log(self, kind: str, detail: str = "") -> None:
        with self._events_lock:
            self._events.append(
                WorkflowEvent(self._clock() - self._t0, kind=kind, detail=detail)
            )

    # -- worker -> main-loop fault signals -----------------------------------

    def _note_missing(self, index: int) -> None:
        """Log a structured io_retry event for a status-before-file sweep.

        Events are emitted at sweep counts 1, 2, 4, 8, ... so a member
        stuck behind a slow shared filesystem is visible without the event
        log growing by one entry per 5 ms poll.
        """
        with self._fault_lock:
            sweeps = self._missing_sweeps.get(index, 0) + 1
            self._missing_sweeps[index] = sweeps
        if self.metrics is not None:
            self.metrics.counter("differ_io_retries", kind="pemodel").inc()
        if sweeps & (sweeps - 1) == 0:  # powers of two
            self._log("io_retry", f"member={index} sweeps={sweeps}")

    def _flag_corrupt(self, index: int, attempt: int) -> None:
        """Report an unreadable member file (consumed by the main loop).

        ``attempt`` identifies which successful attempt's output was read:
        the differ may sweep a torn file again after the main loop has
        already failed/resubmitted that attempt (its success snapshot is
        taken before the IO_FAILURE status lands), so the flag must carry
        the attempt it observed.  Attributing stale re-flags to the
        *current* attempt would burn a retry the new attempt never earned.
        """
        with self._fault_lock:
            if (index, attempt) not in self._corrupt_found:
                self._corrupt_found.append((index, attempt))

    def _drain_corrupt(self) -> list[tuple[int, int]]:
        """Hand (index, attempt) corrupt reports to the main loop once."""
        with self._fault_lock:
            found, self._corrupt_found = self._corrupt_found, []
        return found

    # -- covariance protocol plumbing ------------------------------------------

    def _publish_snapshot(self, view: AnomalyView) -> int:
        """Ship the view through the configured backend; returns bytes written.

        The memmap store appends only the columns that arrived since the
        last publish (``O(n)`` per member); the npz backend rewrites the
        full scaled matrix (the paper-faithful ``O(n N)`` cost).
        """
        if self.covfile_backend == "memmap":
            nbytes = self.covset.sync_from(view)
            self.covset.publish()
            return nbytes + self.covset.header_path.stat().st_size
        target = self.covset.write_live(view.matrix(), list(view.member_ids))
        self.covset.publish()
        return target.stat().st_size

    def _read_snapshot(self):
        """``read_safe`` with the structured-retry accounting of PR 1.

        An unreadable safe snapshot (torn copy, truncated zip, lagged
        header) reads as None; each consecutive failure is a structured
        ``io_retry`` event (geometrically thinned, same shape as the
        differ's status-before-file sweeps) plus a metrics counter, and
        the backend raises
        :class:`~repro.workflow.covfile.CovarianceReadError` past its
        bound -- surfaced through the guarded-thread machinery instead
        of silently spinning forever.
        """
        snap = self.covset.read_safe()
        failures = self.covset.consecutive_unreadable
        if snap is None and failures:
            if self.metrics is not None:
                self.metrics.counter("differ_io_retries", kind="cov_safe").inc()
            if failures & (failures - 1) == 0:  # powers of two
                self._log("io_retry", f"target=cov_safe sweeps={failures}")
        return snap

    # -- component threads ----------------------------------------------------

    def _differ_loop(
        self,
        accumulator: AnomalyAccumulator,
        stop: threading.Event,
        acc_lock: threading.Lock,
    ) -> None:
        """Continuously fold finished members into the covariance files."""
        with self.telemetry.span("differ.loop", parent=self._root_span):
            while True:
                new_any = False
                for index in self.status.successful_indices("pemodel"):
                    with acc_lock:
                        if accumulator.has_member(index):
                            continue
                    path = self.members_dir / f"forecast_{index:05d}.npz"
                    # Snapshot which attempt's output we are about to read
                    # *before* opening the file: workers replace the file
                    # before writing SUCCESS, so the bytes on disk are at
                    # least as new as this snapshot.  If the read then fails,
                    # the flag names an attempt no newer than the real writer
                    # -- a stale guess dedups harmlessly and the next sweep
                    # re-flags with the right one.
                    ok_attempts = [
                        a
                        for a, s in self.status.attempt_history(
                            "pemodel", index
                        ).items()
                        if s == TaskStatus.SUCCESS
                    ]
                    try:
                        with np.load(path) as data:
                            forecast = data["forecast"].copy()
                    except FileNotFoundError:
                        # Status visible before file (NFS-style lag).  Not a
                        # silent spin: each sweep is a structured retry event
                        # (geometrically thinned) the monitor can see.
                        self._note_missing(index)
                        continue
                    except Exception:
                        if path.exists():
                            # File present but unreadable: a torn write.  Flag
                            # for the main loop to fail/resubmit this member,
                            # naming the attempt whose output was read.
                            self._flag_corrupt(
                                index, max(ok_attempts, default=1)
                            )
                        else:
                            self._note_missing(index)
                        continue
                    with self._fault_lock:
                        self._missing_sweeps.pop(index, None)
                    with self.telemetry.span("differ.add", index=index):
                        with acc_lock:
                            if accumulator.has_member(index):
                                continue
                            accumulator.add_member(index, forecast)
                            count = accumulator.count
                            # Zero-copy: written columns are immutable,
                            # so the view is safe to read after the lock
                            # is dropped.
                            view = accumulator.view() if count >= 2 else None
                        self._log("diff_added", f"member={index} count={count}")
                        if view is not None:
                            nbytes = self._publish_snapshot(view)
                            self._log("publish", f"count={count}")
                            if self.metrics is not None:
                                self.metrics.counter("cov.bytes_written").inc(
                                    nbytes
                                )
                    new_any = True
                if stop.is_set() and not new_any:
                    return
                if not new_any:
                    time.sleep(self.poll_interval)

    def _svd_loop(
        self,
        criterion: ConvergenceCriterion,
        checkpoints: list[int],
        converged: threading.Event,
        stop: threading.Event,
        out: dict,
    ) -> None:
        """Continuously SVD the safe snapshot at ensemble-size checkpoints.

        Two accounting rules keep the convergence test honest against a
        differ running at any speed:

        - a snapshot whose count jumped past *several* checkpoints
          satisfies all of them at once (one SVD, all checkpoints
          advanced) instead of leaving them pending to fire spuriously
          on later same-count snapshots;
        - on shutdown, the last published snapshot always gets a final
          SVD if it holds members the loop has not factored yet -- the
          completed ensemble is never silently exempted from the
          convergence test just because it landed below the next
          checkpoint.
        """
        next_cp = 0
        last_version = -1
        estimator = self.config.subspace_estimator()

        def compute(snap, final: bool) -> None:
            self._log("svd_start", f"count={snap.count}")
            warm = estimator is not None and hasattr(snap, "columns")
            span_name = "svd.warm_start" if warm else "svd.compute"
            with self.telemetry.span(span_name, count=snap.count) as sp:
                if warm:
                    subspace = estimator.update(
                        snap.columns, snap.count, snap.scale
                    )
                    sp.set(path=estimator.last_path)
                    if self.metrics is not None:
                        if estimator.last_path in ("update", "warm"):
                            self.metrics.counter("svd.warm_start").inc()
                        else:
                            self.metrics.counter("svd.exact_fallback").inc()
                else:
                    subspace = ErrorSubspace.from_anomalies(
                        snap.anomalies,
                        rank=self.config.max_subspace_rank,
                        energy=self.config.svd_energy,
                    )
                rho = criterion.update(subspace, count=snap.count)
                sp.set(rank=subspace.rank)
            if self.metrics is not None:
                self.metrics.counter("svd_computations").inc()
            out["subspace"] = subspace
            out["count"] = snap.count
            self._log(
                "svd_done",
                f"count={snap.count} rank={subspace.rank}"
                + (f" rho={rho:.4f}" if rho is not None else "")
                + (" final=1" if final else ""),
            )
            if criterion.converged:
                self._log("converged", f"count={snap.count}")
                converged.set()

        with self.telemetry.span("svd.loop", parent=self._root_span):
            while not stop.is_set() and not converged.is_set():
                snap = self._read_snapshot()
                if snap is None or snap.version == last_version:
                    time.sleep(self.poll_interval)
                    continue
                last_version = snap.version
                if next_cp >= len(checkpoints) or snap.count < checkpoints[next_cp]:
                    continue
                # One snapshot can satisfy several growth checkpoints at
                # once (fast differ / slow poll): advance past all of
                # them -- they are all answered by this one SVD.
                while next_cp < len(checkpoints) and checkpoints[next_cp] <= snap.count:
                    next_cp += 1
                compute(snap, final=False)
                if converged.is_set():
                    return
            if not converged.is_set():
                # Shutdown drain: the completed ensemble's last snapshot
                # must be factored even when it sits below the next
                # checkpoint, or the convergence test silently skips the
                # final members.
                snap = self._read_snapshot()
                if (
                    snap is not None
                    and snap.count >= 2
                    and snap.count > out.get("count", 0)
                ):
                    compute(snap, final=True)

    # -- main -------------------------------------------------------------------

    def _make_executor(self, mean_state):
        if self.use_processes:
            payload = pickle.dumps(
                {
                    "runner": self.runner,
                    "mean_state": mean_state,
                    "members_dir": str(self.members_dir),
                    "status_dir": str(self.workdir / "status"),
                    "faults": self.faults,
                }
            )
            return ProcessPoolExecutor(
                max_workers=self.n_workers,
                initializer=_process_worker_init,
                initargs=(payload,),
            )
        return ThreadPoolExecutor(max_workers=self.n_workers)

    def _submit(
        self,
        executor,
        mean_state,
        index: int,
        attempt: int = 1,
        cancel: threading.Event | None = None,
    ) -> Future:
        if self.use_processes:
            return executor.submit(_process_member_task, index, attempt)

        def task(idx=index, att=attempt, cancel_event=cancel):
            started = self._clock()
            with self._fault_lock:
                self._started_at[(idx, att)] = started
            try:
                with self.telemetry.span(
                    "pemodel", parent=self._root_span, index=idx, attempt=att
                ) as span:
                    result = _execute_member(
                        self.runner,
                        mean_state,
                        idx,
                        att,
                        self.members_dir,
                        self.status,
                        self.faults,
                        cancel_event,
                    )
                    span.set(ok=result[2])
                if self.metrics is not None:
                    self.metrics.histogram("task_seconds", kind="pemodel").observe(
                        self._clock() - started
                    )
                return result
            finally:
                with self._fault_lock:
                    self._started_at.pop((idx, att), None)

        return executor.submit(task)

    def run(self, mean_state) -> WorkflowResult:
        """Execute the many-task pipeline until convergence/Nmax/Tmax."""
        with self.telemetry.span("workflow.run") as root:
            self._root_span = root
            try:
                return self._run(mean_state)
            finally:
                self._root_span = None

    def _run(self, mean_state) -> WorkflowResult:
        """The pipeline body, running inside the ``workflow.run`` span."""
        cfg = self.config
        with self._events_lock:
            self._events = []
            self._t0 = self._clock()
        with self._fault_lock:
            self._corrupt_found = []
            self._started_at = {}
            self._missing_sweeps = {}
        started = self._t0

        with self.telemetry.span("central_forecast"):
            central = self.runner.central_forecast(mean_state)
        self._log("central_done")
        accumulator = AnomalyAccumulator(
            self.runner.model.layout, self.runner.model.to_vector(central)
        )
        criterion = ConvergenceCriterion(tolerance=cfg.convergence_tolerance)
        checkpoints = cfg.stage_sizes()

        stop = threading.Event()
        converged = threading.Event()
        acc_lock = new_lock("ParallelESSEWorkflow.acc_lock")
        svd_out: dict = {}

        thread_errors: list[BaseException] = []

        def guarded(target, *args):
            def body():
                try:
                    target(*args)
                except BaseException as exc:  # surface in the main thread
                    thread_errors.append(exc)
                    stop.set()
                    converged.set()  # unblock the main loop

            return body

        differ = threading.Thread(
            target=guarded(self._differ_loop, accumulator, stop, acc_lock),
            name="esse-differ",
        )
        svd_worker = threading.Thread(
            target=guarded(
                self._svd_loop, criterion, checkpoints, converged, stop, svd_out
            ),
            name="esse-svd",
        )
        differ.start()
        svd_worker.start()

        futures: dict[int, Future] = {}
        n_cancelled = 0
        n_retried = 0
        n_timed_out = 0
        retry = self.retry
        attempts: dict[int, int] = {}  # current (latest) attempt per index
        submit_tries: dict[int, int] = {}
        cancel_events: dict[int, threading.Event] = {}
        pending: list[tuple[float, int]] = []  # (ready_at, index) retry heap
        processed: set[tuple[int, int]] = set()  # (index, attempt) results seen
        abandoned: set[tuple[int, int]] = set()  # straggler-cancelled attempts
        corrupt_handled: set[tuple[int, int]] = set()
        terminal_failed: set[int] = set()
        seen_done: set[int] = set()
        try:
            with self._make_executor(mean_state) as executor:
                pool_target = min(
                    int(np.ceil(checkpoints[0] * self.pool_margin)),
                    cfg.max_ensemble_size,
                )
                next_index = 0

                def schedule_resubmit(idx: int, why: str) -> bool:
                    """Queue the next attempt; False when retries exhausted."""
                    nonlocal n_retried
                    att = attempts[idx]
                    if retry is None or not retry.retries_left(att):
                        return False
                    attempts[idx] = att + 1
                    delay = retry.backoff_seconds(idx, att)
                    heapq.heappush(pending, (self._clock() + delay, idx))
                    n_retried += 1
                    if self.metrics is not None:
                        self.metrics.counter("task_retries", kind="pemodel").inc()
                    self._log(
                        "retry",
                        f"member={idx} attempt={att + 1} delay={delay:.3f} why={why}",
                    )
                    return True

                def terminal_failure(idx: int, why: str) -> None:
                    terminal_failed.add(idx)
                    seen_done.add(idx)  # reported, like the seed semantics
                    self._log("member_terminal_failure", f"member={idx} why={why}")

                def try_submit(idx: int) -> None:
                    """Submit the current attempt (may transiently fail)."""
                    tries = submit_tries.get(idx, 0) + 1
                    submit_tries[idx] = tries
                    if self.faults is not None and self.faults.submit_fails(
                        idx, tries
                    ):
                        self.faults.fire(FaultKind.SUBMIT_FAILURE, idx, tries)
                        if tries >= self.MAX_SUBMIT_TRIES:
                            self.status.write(
                                "pemodel",
                                idx,
                                TaskStatus.IO_FAILURE,
                                attempt=attempts[idx],
                            )
                            terminal_failure(idx, "submit failures exhausted")
                            return
                        delay = (
                            retry.backoff_seconds(idx, min(tries, 8))
                            if retry is not None
                            else self.poll_interval
                        )
                        heapq.heappush(pending, (self._clock() + delay, idx))
                        self._log("submit_retry", f"member={idx} try={tries}")
                        return
                    cancel = threading.Event()
                    cancel_events[idx] = cancel
                    futures[idx] = self._submit(
                        executor, mean_state, idx, attempts[idx], cancel
                    )

                def extend_pool(target: int):
                    nonlocal next_index
                    while next_index < target:
                        attempts[next_index] = 1
                        try_submit(next_index)
                        next_index += 1

                def observe_done() -> int:
                    for idx, f in list(futures.items()):
                        if not f.done() or f.cancelled():
                            continue
                        try:
                            r_idx, r_att, ok, err = f.result()
                        except Exception as exc:  # worker infrastructure died
                            r_idx, r_att = idx, attempts[idx]
                            ok, err = False, f"worker error: {exc!r}"
                        key = (r_idx, r_att)
                        if key in processed:
                            continue
                        processed.add(key)
                        if key in abandoned:
                            continue  # straggler-cancelled; retry path owns it
                        if key in corrupt_handled:
                            # The differ beat us to this attempt's (torn)
                            # output: it is already failed and resubmitted.
                            # Re-adding it to seen_done here would make
                            # process_pending drop the queued retry.
                            continue
                        if ok:
                            seen_done.add(r_idx)
                            self._log("member_done", f"member={r_idx}")
                        elif not schedule_resubmit(r_idx, err or "failure"):
                            self._log("member_done", f"member={r_idx}")
                            terminal_failure(r_idx, err or "failure")
                    return len(seen_done)

                def check_stragglers(now: float) -> None:
                    """Cancel-and-replace attempts past the per-task deadline."""
                    nonlocal n_timed_out
                    if (
                        retry is None
                        or retry.timeout_seconds is None
                        or self.use_processes
                    ):
                        return
                    for idx, f in list(futures.items()):
                        if f.done() or f.cancelled():
                            continue
                        att = attempts[idx]
                        if (idx, att) in abandoned:
                            continue
                        with self._fault_lock:
                            t_start = self._started_at.get((idx, att))
                        if t_start is None or now - t_start <= retry.timeout_seconds:
                            continue
                        abandoned.add((idx, att))
                        event = cancel_events.get(idx)
                        if event is not None:
                            event.set()  # frees the pool slot mid-stall
                        self.status.write(
                            "pemodel", idx, TaskStatus.TIMED_OUT, attempt=att
                        )
                        n_timed_out += 1
                        if self.metrics is not None:
                            self.metrics.counter("task_timeouts", kind="pemodel").inc()
                        self._log(
                            "straggler_cancel",
                            f"member={idx} attempt={att} after={now - t_start:.3f}",
                        )
                        if not schedule_resubmit(idx, "straggler timeout"):
                            terminal_failure(idx, "straggler timeout")

                def process_corrupt() -> None:
                    """Fail/resubmit members whose output file is unreadable."""
                    for idx, att in self._drain_corrupt():
                        if (idx, att) in corrupt_handled:
                            continue  # stale re-flag of an already-failed file
                        if att != attempts.get(idx, 1):
                            # The flagged attempt is no longer current (a
                            # newer attempt is already in flight); its own
                            # result will be judged when it lands.
                            continue
                        corrupt_handled.add((idx, att))
                        seen_done.discard(idx)
                        self.status.write(
                            "pemodel", idx, TaskStatus.IO_FAILURE, attempt=att
                        )
                        self._log("member_corrupt", f"member={idx} attempt={att}")
                        if not schedule_resubmit(idx, "corrupt output"):
                            terminal_failure(idx, "corrupt output")

                def process_pending(now: float) -> None:
                    """Launch resubmissions whose backoff delay has elapsed."""
                    while pending and pending[0][0] <= now:
                        _, idx = heapq.heappop(pending)
                        if (
                            idx in seen_done
                            or idx in terminal_failed
                            or converged.is_set()
                        ):
                            continue
                        try_submit(idx)

                extend_pool(pool_target)
                self._log("pool", f"size={pool_target}")
                if self.metrics is not None:
                    self.metrics.gauge("pool_size").set(pool_target)

                while not converged.is_set():
                    now = self._clock()
                    process_corrupt()
                    check_stragglers(now)
                    process_pending(now)
                    reached = observe_done()
                    # keep the pool ahead of the next unreached checkpoint
                    pending_cp = [c for c in checkpoints if c > reached]
                    if pending_cp and next_index < cfg.max_ensemble_size:
                        want = min(
                            int(np.ceil(pending_cp[0] * self.pool_margin)),
                            cfg.max_ensemble_size,
                        )
                        if want > next_index:
                            extend_pool(want)
                            self._log("enlarge", f"size={next_index}")
                            if self.metrics is not None:
                                self.metrics.gauge("pool_size").set(next_index)
                    if (
                        all(f.done() for f in futures.values())
                        and next_index >= cfg.max_ensemble_size
                        and not pending
                    ):
                        break  # Nmax exhausted without convergence
                    if cfg.deadline_seconds is not None and (
                        self._clock() - started > cfg.deadline_seconds
                    ):
                        self._log("deadline")
                        break
                    time.sleep(self.poll_interval)

                # Cancellation of superfluous members (queued and/or running)
                pending.clear()  # superfluous resubmissions never launch
                for idx, f in futures.items():
                    if f.cancel():
                        n_cancelled += 1
                        self.status.write("pemodel", idx, TaskStatus.CANCELLED)
                        self._log("cancel", f"member={idx}")
                if self.faults is not None:
                    # Release in-flight *stalled* attempts: a straggler that
                    # outlived convergence is exactly the superfluous member
                    # the paper cancels; draws are pure so we can tell which
                    # running attempts are stalls without asking the worker.
                    for idx, f in futures.items():
                        if f.done() or f.cancelled():
                            continue
                        att = attempts[idx]
                        if self.faults.draw(idx, att) is FaultKind.STALL:
                            abandoned.add((idx, att))
                            event = cancel_events.get(idx)
                            if event is not None:
                                event.set()
                if self.cancellation is not CancellationPolicy.IMMEDIATE:
                    # drain: let running members finish and be diffed
                    for f in futures.values():
                        if not f.cancelled():
                            try:
                                f.result()
                            except Exception:
                                pass  # counted from the status directory
                    observe_done()
        finally:
            # let the differ fold in any drained results, then stop workers
            stop.set()
            differ.join()
            svd_worker.join()
        if thread_errors:
            raise RuntimeError(
                f"workflow component thread failed: {thread_errors[0]!r}"
            ) from thread_errors[0]

        # Final SVD over everything available ("another SVD calculation is
        # performed and all available results are used") unless IMMEDIATE.
        with acc_lock:
            final_count = accumulator.count
        if final_count >= 2 and (
            self.cancellation is not CancellationPolicy.IMMEDIATE
            and final_count > svd_out.get("count", 0)
        ):
            with acc_lock:
                matrix = accumulator.matrix()
            with self.telemetry.span("svd.final", count=final_count):
                subspace = ErrorSubspace.from_anomalies(
                    matrix, rank=cfg.max_subspace_rank, energy=cfg.svd_energy
                )
                criterion.update(subspace)
            svd_out["subspace"] = subspace
            svd_out["count"] = final_count
            self._log("final_svd", f"count={final_count}")

        # Corruption discovered during the final drain is terminal: record
        # it so restart/monitoring see an IO_FAILURE, not a phantom success.
        for idx, att in self._drain_corrupt():
            if (idx, att) in corrupt_handled:
                continue  # stale re-flag; the retry path already owns it
            self.status.write("pemodel", idx, TaskStatus.IO_FAILURE, attempt=att)
            terminal_failed.add(idx)
            self._log("member_corrupt", f"member={idx} attempt={att} terminal=1")

        if "subspace" not in svd_out:
            raise RuntimeError("parallel workflow finished without a subspace")

        degraded = bool(terminal_failed)
        if degraded:
            self._log("degraded", f"n_lost={len(terminal_failed)}")
            warnings.warn(
                f"ensemble degraded: {len(terminal_failed)} member(s) lost "
                "terminally (retries exhausted or disabled); the error "
                "subspace is estimated from the surviving members only "
                "(see docs/FAILURE_MODEL.md)",
                DegradedEnsembleWarning,
                stacklevel=2,
            )

        statuses = self.status.completed_indices("pemodel")
        n_completed = sum(1 for s in statuses.values() if s == TaskStatus.SUCCESS)
        n_failed = sum(
            1
            for s in statuses.values()
            if s
            in (TaskStatus.MODEL_FAILURE, TaskStatus.IO_FAILURE, TaskStatus.TIMED_OUT)
        )
        with acc_lock:
            member_ids = accumulator.member_ids
        with self._events_lock:
            events = tuple(self._events)
        if self.metrics is not None:
            self.metrics.gauge("members_completed", kind="pemodel").set(n_completed)
            self.metrics.gauge("members_failed", kind="pemodel").set(n_failed)
            self.metrics.gauge("members_cancelled", kind="pemodel").set(n_cancelled)
        return WorkflowResult(
            subspace=svd_out["subspace"],
            ensemble_size=svd_out["count"],
            converged=converged.is_set() or criterion.converged,
            convergence_history=tuple(criterion.history),
            events=events,
            n_completed=n_completed,
            n_failed=n_failed,
            n_cancelled=n_cancelled,
            wall_seconds=self._clock() - started,
            member_ids=member_ids,
            n_retried=n_retried,
            n_timed_out=n_timed_out,
            degraded=degraded,
        )
