"""Per-perturbation-index status files.

Paper Sec 4.2: "Dependencies are tracked using separate (per perturbation
index) files containing the error codes of the singleton scripts (which are
set on purpose to signify success or failure).  These files reside in
directories accessible directly or indirectly from all execution hosts so
that state information can be readily shared."

The same mechanism enables restart: a stopped ESSE run is resumed by
scanning which indices already completed and submitting only the rest.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import IntEnum
from pathlib import Path

from repro.util.fsio import durable_replace


class TaskStatus(IntEnum):
    """Singleton exit codes (0 success, >0 failure classes)."""

    SUCCESS = 0
    MODEL_FAILURE = 1  # blow-up / numerical failure (tolerated)
    CANCELLED = 2  # superfluous member cancelled on convergence
    IO_FAILURE = 3  # could not read inputs / write outputs
    TIMED_OUT = 4  # straggler cancelled past its per-attempt deadline

    @property
    def is_retryable(self) -> bool:
        """Whether a retry policy may resubmit after this outcome."""
        return self in (
            TaskStatus.MODEL_FAILURE,
            TaskStatus.IO_FAILURE,
            TaskStatus.TIMED_OUT,
        )


@dataclass(frozen=True)
class StatusRecord:
    """One task's recorded outcome."""

    kind: str
    index: int
    status: TaskStatus
    attempt: int = 1


class StatusDirectory:
    """A shared directory of ``<kind>.<index>.status`` files.

    Parameters
    ----------
    root:
        Directory path; created on first use.

    Notes
    -----
    Writes are atomic (tmp + rename) so concurrent readers on "all
    execution hosts" never observe a torn file.
    """

    def __init__(self, root: str | Path):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def _path(self, kind: str, index: int, attempt: int | None = None) -> Path:
        if not kind or "." in kind or "/" in kind:
            raise ValueError(f"invalid task kind {kind!r}")
        if index < 0:
            raise ValueError(f"invalid task index {index}")
        if attempt is None:
            return self.root / f"{kind}.{index}.status"
        if attempt < 1:
            raise ValueError(f"invalid attempt {attempt} (1-based)")
        return self.root / f"{kind}.{index}.a{attempt}.status"

    def write(
        self,
        kind: str,
        index: int,
        status: TaskStatus | int,
        attempt: int | None = None,
    ) -> None:
        """Record a singleton's exit code (atomic).

        The plain ``<kind>.<index>.status`` file always carries the task's
        *latest* outcome -- what restart and the differ consult.  When
        ``attempt`` is given, an additional attempt-numbered record
        ``<kind>.<index>.a<attempt>.status`` preserves the full retry
        history (consumed by :meth:`attempt_history` and the progress
        monitor's retry counters).
        """
        status = TaskStatus(status)
        path = self._path(kind, index)
        tmp = path.with_suffix(".status.tmp")
        tmp.write_text(f"{int(status)}\n")
        durable_replace(tmp, path)
        if attempt is not None:
            apath = self._path(kind, index, attempt)
            atmp = apath.with_suffix(".status.tmp")
            atmp.write_text(f"{int(status)}\n")
            durable_replace(atmp, apath)

    def read(self, kind: str, index: int) -> TaskStatus | None:
        """The recorded status, or None if the task has not reported."""
        path = self._path(kind, index)
        try:
            text = path.read_text()
        except FileNotFoundError:
            return None
        return TaskStatus(int(text.strip()))

    def is_done(self, kind: str, index: int) -> bool:
        """Whether the task reported (any exit code)."""
        return self.read(kind, index) is not None

    def succeeded(self, kind: str, index: int) -> bool:
        """Whether the task reported success."""
        return self.read(kind, index) == TaskStatus.SUCCESS

    def completed_indices(self, kind: str) -> dict[int, TaskStatus]:
        """All reported indices of a kind -> status (one directory scan)."""
        out: dict[int, TaskStatus] = {}
        prefix = f"{kind}."
        for path in self.root.glob(f"{kind}.*.status"):
            stem = path.name[len(prefix) : -len(".status")]
            try:
                index = int(stem)
            except ValueError:
                continue  # foreign file in a shared directory
            try:
                out[index] = TaskStatus(int(path.read_text().strip()))
            except (ValueError, OSError):
                continue  # torn/foreign content: treat as not reported
        return out

    def attempt_history(self, kind: str, index: int) -> dict[int, TaskStatus]:
        """Attempt number -> recorded status for one task (may be empty).

        Only populated by attempt-aware writers (the retrying workflow);
        plain single-attempt writes leave it empty.
        """
        out: dict[int, TaskStatus] = {}
        for path in self.root.glob(f"{kind}.{index}.a*.status"):
            stem = path.name[: -len(".status")].rsplit(".a", 1)[-1]
            try:
                attempt = int(stem)
                out[attempt] = TaskStatus(int(path.read_text().strip()))
            except (ValueError, OSError):
                continue  # torn/foreign content: treat as not reported
        return out

    def attempt_counts(self, kind: str) -> dict[int, dict[TaskStatus, int]]:
        """Index -> {status: attempt-record count} in one directory scan.

        The monitor derives its retry/straggler counters from this:
        resubmissions are attempt records beyond the first, and timed-out
        attempts carry :attr:`TaskStatus.TIMED_OUT`.
        """
        prefix = f"{kind}."
        out: dict[int, dict[TaskStatus, int]] = {}
        for path in self.root.glob(f"{kind}.*.a*.status"):
            stem = path.name[len(prefix) : -len(".status")]
            index_part, _, attempt_part = stem.rpartition(".a")
            try:
                index = int(index_part)
                int(attempt_part)
                status = TaskStatus(int(path.read_text().strip()))
            except (ValueError, OSError):
                continue  # foreign file in a shared directory
            per_index = out.setdefault(index, {})
            per_index[status] = per_index.get(status, 0) + 1
        return out

    def successful_indices(self, kind: str) -> list[int]:
        """Sorted indices that reported success (restart bookkeeping)."""
        return sorted(
            idx
            for idx, status in self.completed_indices(kind).items()
            if status == TaskStatus.SUCCESS
        )

    def pending_indices(self, kind: str, universe: range) -> list[int]:
        """Indices in ``universe`` that have not reported yet.

        This is the restart path of Sec 4.2: "if the ESSE execution gets
        stopped, it can only be restarted without rerunning all jobs" by
        consulting these files.
        """
        done = self.completed_indices(kind)
        return [i for i in universe if i not in done]

    def clear(self, kind: str | None = None) -> int:
        """Remove status files (all kinds by default); returns count."""
        pattern = f"{kind}.*.status" if kind else "*.status"
        removed = 0
        for path in self.root.glob(pattern):
            path.unlink(missing_ok=True)
            removed += 1
        return removed
