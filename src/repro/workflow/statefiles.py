"""Per-perturbation-index status files.

Paper Sec 4.2: "Dependencies are tracked using separate (per perturbation
index) files containing the error codes of the singleton scripts (which are
set on purpose to signify success or failure).  These files reside in
directories accessible directly or indirectly from all execution hosts so
that state information can be readily shared."

The same mechanism enables restart: a stopped ESSE run is resumed by
scanning which indices already completed and submitting only the rest.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from enum import IntEnum
from pathlib import Path


class TaskStatus(IntEnum):
    """Singleton exit codes (0 success, >0 failure classes)."""

    SUCCESS = 0
    MODEL_FAILURE = 1  # blow-up / numerical failure (tolerated)
    CANCELLED = 2  # superfluous member cancelled on convergence
    IO_FAILURE = 3  # could not read inputs / write outputs


@dataclass(frozen=True)
class StatusRecord:
    """One task's recorded outcome."""

    kind: str
    index: int
    status: TaskStatus


class StatusDirectory:
    """A shared directory of ``<kind>.<index>.status`` files.

    Parameters
    ----------
    root:
        Directory path; created on first use.

    Notes
    -----
    Writes are atomic (tmp + rename) so concurrent readers on "all
    execution hosts" never observe a torn file.
    """

    def __init__(self, root: str | Path):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def _path(self, kind: str, index: int) -> Path:
        if not kind or "." in kind or "/" in kind:
            raise ValueError(f"invalid task kind {kind!r}")
        if index < 0:
            raise ValueError(f"invalid task index {index}")
        return self.root / f"{kind}.{index}.status"

    def write(self, kind: str, index: int, status: TaskStatus | int) -> None:
        """Record a singleton's exit code (atomic)."""
        status = TaskStatus(status)
        path = self._path(kind, index)
        tmp = path.with_suffix(".status.tmp")
        tmp.write_text(f"{int(status)}\n")
        os.replace(tmp, path)

    def read(self, kind: str, index: int) -> TaskStatus | None:
        """The recorded status, or None if the task has not reported."""
        path = self._path(kind, index)
        try:
            text = path.read_text()
        except FileNotFoundError:
            return None
        return TaskStatus(int(text.strip()))

    def is_done(self, kind: str, index: int) -> bool:
        """Whether the task reported (any exit code)."""
        return self.read(kind, index) is not None

    def succeeded(self, kind: str, index: int) -> bool:
        """Whether the task reported success."""
        return self.read(kind, index) == TaskStatus.SUCCESS

    def completed_indices(self, kind: str) -> dict[int, TaskStatus]:
        """All reported indices of a kind -> status (one directory scan)."""
        out: dict[int, TaskStatus] = {}
        prefix = f"{kind}."
        for path in self.root.glob(f"{kind}.*.status"):
            stem = path.name[len(prefix) : -len(".status")]
            try:
                index = int(stem)
            except ValueError:
                continue  # foreign file in a shared directory
            try:
                out[index] = TaskStatus(int(path.read_text().strip()))
            except (ValueError, OSError):
                continue  # torn/foreign content: treat as not reported
        return out

    def successful_indices(self, kind: str) -> list[int]:
        """Sorted indices that reported success (restart bookkeeping)."""
        return sorted(
            idx
            for idx, status in self.completed_indices(kind).items()
            if status == TaskStatus.SUCCESS
        )

    def pending_indices(self, kind: str, universe: range) -> list[int]:
        """Indices in ``universe`` that have not reported yet.

        This is the restart path of Sec 4.2: "if the ESSE execution gets
        stopped, it can only be restarted without rerunning all jobs" by
        consulting these files.
        """
        done = self.completed_indices(kind)
        return [i for i in universe if i not in done]

    def clear(self, kind: str | None = None) -> int:
        """Remove status files (all kinds by default); returns count."""
        pattern = f"{kind}.*.status" if kind else "*.status"
        removed = 0
        for path in self.root.glob(pattern):
            path.unlink(missing_ok=True)
            removed += 1
        return removed
