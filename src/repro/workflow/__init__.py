"""The ESSE many-task workflow implementations.

This package reproduces the paper's Sec 4 -- the transformation of the
serial ESSE job shepherd (Fig 3) into a decoupled many-task pipeline
(Fig 4):

- :mod:`~repro.workflow.statefiles` -- per-perturbation-index status files
  carrying singleton exit codes (Sec 4.2 dependency tracking),
- :mod:`~repro.workflow.covfile` -- the three-file covariance protocol
  that decouples the differ from the SVD without a race, in two
  implementations: the paper-faithful npz safe/live pair and the
  append-only memmap column store (``docs/COVFILE_PROTOCOL.md``),
- :mod:`~repro.workflow.serial` -- the serial implementation with its four
  bottlenecks, instrumented so the benches can show them,
- :mod:`~repro.workflow.parallel` -- the MTC implementation: a task pool of
  size M >= N, a continuously running differ, a decoupled SVD/convergence
  worker, cancellation of superfluous members and staged pool enlargement,
- :mod:`~repro.workflow.policies` -- cancellation, deadline and retry
  policies,
- :mod:`~repro.workflow.faults` -- deterministic fault injection (crash /
  corrupt output / straggler stall / transient submit failure) for
  exercising the retry machinery; the failure model is documented in
  ``docs/FAILURE_MODEL.md``,
- :mod:`~repro.workflow.ensemble` -- the backend-selectable ensemble
  engine: serial / threads / vectorized-batched / shared-memory process
  propagation behind one interface (``docs/ENSEMBLE_ENGINE.md``),
- :mod:`~repro.workflow.tilepool` -- the same retry/straggler/fault
  semantics applied to the tiled analysis's tile tasks
  (``docs/ASSIMILATION.md``).
"""

from repro.workflow.statefiles import StatusDirectory, TaskStatus
from repro.workflow.covfile import (
    ColumnSnapshot,
    CovarianceFileSet,
    CovarianceReadError,
    CovarianceSnapshot,
    MemmapCovarianceStore,
)
from repro.workflow.policies import CancellationPolicy, DeadlinePolicy, RetryPolicy
from repro.workflow.faults import FaultEvent, FaultInjector, FaultKind
from repro.workflow.serial import SerialESSEWorkflow, SerialTimings
from repro.workflow.parallel import (
    DegradedEnsembleWarning,
    ParallelESSEWorkflow,
    WorkflowEvent,
    WorkflowResult,
)
from repro.workflow.monitor import ProgressMonitor, ProgressReport
from repro.workflow.parallel import SharedEnsembleBuffer
from repro.workflow.tilepool import TileTaskPool
from repro.workflow.ensemble import (
    BatchedBackend,
    EngineResult,
    EnsembleBackend,
    EnsembleEngine,
    ProcessesBackend,
    SerialBackend,
    ThreadsBackend,
    make_backend,
)

__all__ = [
    "StatusDirectory",
    "TaskStatus",
    "ColumnSnapshot",
    "CovarianceFileSet",
    "CovarianceReadError",
    "CovarianceSnapshot",
    "MemmapCovarianceStore",
    "CancellationPolicy",
    "DeadlinePolicy",
    "RetryPolicy",
    "FaultEvent",
    "FaultInjector",
    "FaultKind",
    "SerialESSEWorkflow",
    "SerialTimings",
    "DegradedEnsembleWarning",
    "ParallelESSEWorkflow",
    "WorkflowEvent",
    "WorkflowResult",
    "ProgressMonitor",
    "ProgressReport",
    "SharedEnsembleBuffer",
    "TileTaskPool",
    "BatchedBackend",
    "EngineResult",
    "EnsembleBackend",
    "EnsembleEngine",
    "ProcessesBackend",
    "SerialBackend",
    "ThreadsBackend",
    "make_backend",
]
