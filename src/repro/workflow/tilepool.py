"""Fault-tolerant execution of independent analysis-tile tasks.

:class:`~repro.core.assimilation.TiledESSEAnalysis` turns the ESSE
update into a bag of independent tile closures -- exactly the many-task
shape the member pool already handles.  :class:`TileTaskPool` gives the
tile tasks the same failure semantics member propagation has
(``docs/FAILURE_MODEL.md``):

- transient failures are retried with the
  :class:`~repro.workflow.policies.RetryPolicy` deterministic backoff,
- attempts running past the policy's straggler deadline are cancelled
  and replaced,
- a seedable :class:`~repro.workflow.faults.FaultInjector` (task kind
  ``"tile"``) injects crash/corrupt/stall/submit faults on demand,
- a task whose retries are exhausted resolves to None; the analysis
  keeps that tile's prior and raises
  :class:`~repro.core.taskmodel.DegradedEnsembleWarning`.

The pool reads time only through the telemetry clock and draws
randomness only through the seeded policy/injector streams, so a fixed
seed reproduces the exact retry schedule and fault sequence.
"""

from __future__ import annotations

import heapq
import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor
from typing import Callable, Sequence

from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.spans import NULL_RECORDER
from repro.util.sanitizer import new_lock, track
from repro.workflow.faults import FaultInjector, FaultKind
from repro.workflow.policies import RetryPolicy


class _CorruptResult:
    """Sentinel standing in for a torn tile output; fails validation."""


_CORRUPT = _CorruptResult()


class TileTaskPool:
    """Runs tile-analysis closures with the member-pool failure semantics.

    Parameters
    ----------
    n_workers:
        Thread-pool width.  Tile tasks are numpy-heavy and release the
        GIL inside BLAS, so modest widths already overlap usefully.
    retry:
        Resubmission policy (None disables retries *and* straggler
        handling: every failure is terminal).
    faults:
        Deterministic fault injector exercised with task kind ``"tile"``.
    telemetry:
        Span/event recorder; also supplies the pool's clock.
    metrics:
        Optional registry fed ``task_seconds`` / ``task_retries`` /
        ``task_timeouts`` with ``kind="tile"`` labels, mirroring the
        member pool's metrics.
    poll_interval:
        Main-loop polling period in seconds.
    validate:
        Result predicate; a falsy verdict counts as a failed attempt
        (default: the result is neither None nor the injected-corruption
        sentinel).

    Use :meth:`run` as the ``task_runner`` of a
    :class:`~repro.core.assimilation.TiledESSEAnalysis`.
    """

    #: Bound on transient submission retries per task (matches the member
    #: pool): beyond this the submission path itself is declared dead.
    MAX_SUBMIT_TRIES = 50

    def __init__(
        self,
        n_workers: int = 4,
        retry: RetryPolicy | None = None,
        faults: FaultInjector | None = None,
        telemetry=None,
        metrics: MetricsRegistry | None = None,
        poll_interval: float = 0.005,
        validate: Callable[[object], bool] | None = None,
    ):
        if n_workers < 1:
            raise ValueError(f"n_workers must be >= 1, got {n_workers}")
        if poll_interval <= 0:
            raise ValueError(f"poll_interval must be positive, got {poll_interval}")
        self.n_workers = int(n_workers)
        self.retry = retry
        self.faults = faults
        self.telemetry = telemetry if telemetry is not None else NULL_RECORDER
        self.metrics = metrics
        self.poll_interval = float(poll_interval)
        self.task_kind = "tile"
        self.validate = validate if validate is not None else self._default_validate
        self._clock = self.telemetry.clock
        self._lock = new_lock("TileTaskPool._lock")
        self._started_at: dict[tuple[int, int], float] = {}
        track(self, "_started_at")

    @staticmethod
    def _default_validate(result) -> bool:
        """A usable tile result: present and not a corrupted payload."""
        return result is not None and not isinstance(result, _CorruptResult)

    # -- one attempt --------------------------------------------------------

    def _attempt(
        self,
        tasks: Sequence[Callable[[], object]],
        idx: int,
        att: int,
        cancel: threading.Event,
        root_span,
    ) -> tuple[int, int, bool, object, str | None]:
        """Execute one attempt of one tile task (runs on a worker thread)."""
        started = self._clock()
        with self._lock:
            self._started_at[(idx, att)] = started
        try:
            with self.telemetry.span(
                self.task_kind, parent=root_span, index=idx, attempt=att
            ) as span:
                fault = (
                    self.faults.draw(idx, att, kind=self.task_kind)
                    if self.faults is not None
                    else None
                )
                if fault is FaultKind.STALL:
                    self.faults.fire(fault, idx, att, kind=self.task_kind)
                    if self.faults.stall(cancel):
                        span.set(ok=False)
                        return (idx, att, False, None, "stall cancelled")
                if fault is FaultKind.CRASH:
                    self.faults.fire(fault, idx, att, kind=self.task_kind)
                    span.set(ok=False)
                    return (idx, att, False, None, "injected crash")
                try:
                    value = tasks[idx]()
                except Exception as exc:
                    span.set(ok=False)
                    return (idx, att, False, None, f"task error: {exc!r}")
                if fault is FaultKind.CORRUPT:
                    self.faults.fire(fault, idx, att, kind=self.task_kind)
                    value = _CORRUPT
                ok = bool(self.validate(value))
                span.set(ok=ok)
                if self.metrics is not None:
                    self.metrics.histogram(
                        "task_seconds", kind=self.task_kind
                    ).observe(self._clock() - started)
                if ok:
                    return (idx, att, True, value, None)
                return (idx, att, False, None, "invalid result")
        finally:
            with self._lock:
                self._started_at.pop((idx, att), None)

    # -- the pool -----------------------------------------------------------

    def run(self, tasks: Sequence[Callable[[], object]]) -> list:
        """Execute every task; return results in task order, None = lost.

        A returned None means the task failed terminally (retries and
        submission attempts exhausted, or straggler-cancelled with no
        retry budget left); callers degrade gracefully per their own
        semantics.
        """
        tasks = list(tasks)
        results: list = [None] * len(tasks)
        if not tasks:
            return results
        retry = self.retry
        attempts: dict[int, int] = {i: 1 for i in range(len(tasks))}
        submit_tries: dict[int, int] = {}
        futures: dict[int, Future] = {}
        cancel_events: dict[int, threading.Event] = {}
        pending: list[tuple[float, int]] = []  # (ready_at, index) retry heap
        processed: set[tuple[int, int]] = set()
        abandoned: set[tuple[int, int]] = set()  # straggler-cancelled attempts
        resolved: set[int] = set()  # delivered a result or failed terminally
        terminal: set[int] = set()
        n_retried = 0
        n_timed_out = 0

        with self.telemetry.span("tilepool.run", tasks=len(tasks)) as root:
            with ThreadPoolExecutor(max_workers=self.n_workers) as executor:

                def schedule_resubmit(idx: int, why: str) -> bool:
                    """Queue the next attempt; False when retries exhausted."""
                    nonlocal n_retried
                    att = attempts[idx]
                    if retry is None or not retry.retries_left(att):
                        return False
                    attempts[idx] = att + 1
                    delay = retry.backoff_seconds(idx, att)
                    heapq.heappush(pending, (self._clock() + delay, idx))
                    n_retried += 1
                    if self.metrics is not None:
                        self.metrics.counter(
                            "task_retries", kind=self.task_kind
                        ).inc()
                    self.telemetry.event(
                        "tile_retry", index=idx, attempt=att + 1, why=why
                    )
                    return True

                def terminal_failure(idx: int, why: str) -> None:
                    terminal.add(idx)
                    resolved.add(idx)
                    self.telemetry.event(
                        "tile_terminal_failure", index=idx, why=why
                    )

                def try_submit(idx: int) -> None:
                    """Submit the current attempt (may transiently fail)."""
                    tries = submit_tries.get(idx, 0) + 1
                    submit_tries[idx] = tries
                    if self.faults is not None and self.faults.submit_fails(
                        idx, tries, kind=self.task_kind
                    ):
                        self.faults.fire(
                            FaultKind.SUBMIT_FAILURE, idx, tries,
                            kind=self.task_kind,
                        )
                        if tries >= self.MAX_SUBMIT_TRIES:
                            terminal_failure(idx, "submit failures exhausted")
                            return
                        delay = (
                            retry.backoff_seconds(idx, min(tries, 8))
                            if retry is not None
                            else self.poll_interval
                        )
                        heapq.heappush(pending, (self._clock() + delay, idx))
                        return
                    cancel = threading.Event()
                    cancel_events[idx] = cancel
                    futures[idx] = executor.submit(
                        self._attempt, tasks, idx, attempts[idx], cancel, root
                    )

                def observe_done() -> None:
                    for idx, fut in list(futures.items()):
                        if not fut.done() or fut.cancelled():
                            continue
                        try:
                            r_idx, r_att, ok, value, err = fut.result()
                        except Exception as exc:  # worker infrastructure died
                            r_idx, r_att = idx, attempts[idx]
                            ok, value, err = False, None, f"worker error: {exc!r}"
                        key = (r_idx, r_att)
                        if key in processed:
                            continue
                        processed.add(key)
                        if key in abandoned:
                            continue  # straggler-cancelled; retry path owns it
                        if ok:
                            results[r_idx] = value
                            resolved.add(r_idx)
                        elif not schedule_resubmit(r_idx, err or "failure"):
                            terminal_failure(r_idx, err or "failure")

                def check_stragglers(now: float) -> None:
                    """Cancel-and-replace attempts past the deadline."""
                    nonlocal n_timed_out
                    if retry is None or retry.timeout_seconds is None:
                        return
                    for idx, fut in list(futures.items()):
                        if fut.done() or fut.cancelled():
                            continue
                        att = attempts[idx]
                        if (idx, att) in abandoned:
                            continue
                        with self._lock:
                            t_start = self._started_at.get((idx, att))
                        if (
                            t_start is None
                            or now - t_start <= retry.timeout_seconds
                        ):
                            continue
                        abandoned.add((idx, att))
                        event = cancel_events.get(idx)
                        if event is not None:
                            event.set()  # frees the pool slot mid-stall
                        n_timed_out += 1
                        if self.metrics is not None:
                            self.metrics.counter(
                                "task_timeouts", kind=self.task_kind
                            ).inc()
                        self.telemetry.event(
                            "tile_straggler_cancel", index=idx, attempt=att
                        )
                        if not schedule_resubmit(idx, "straggler timeout"):
                            terminal_failure(idx, "straggler timeout")

                def process_pending(now: float) -> None:
                    """Launch resubmissions whose backoff delay elapsed."""
                    while pending and pending[0][0] <= now:
                        _, idx = heapq.heappop(pending)
                        if idx in resolved:
                            continue
                        try_submit(idx)

                for idx in range(len(tasks)):
                    try_submit(idx)
                while len(resolved) < len(tasks):
                    now = self._clock()
                    check_stragglers(now)
                    process_pending(now)
                    observe_done()
                    if len(resolved) >= len(tasks):
                        break
                    time.sleep(self.poll_interval)

            root.set(
                ok=len(tasks) - len(terminal),
                failed=len(terminal),
                retried=n_retried,
                timed_out=n_timed_out,
            )
        return results
