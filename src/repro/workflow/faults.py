"""Deterministic fault injection for the many-task ESSE workflow.

The paper's MTC pipeline exists because ensemble members die, stall and
straggle on real substrates: jobs lose the race for NFS bandwidth
(Sec 5.2.1), Grid sites give "no easy way ... to monitor the progress of
one's jobs" so stuck members look identical to slow ones (Sec 5.3.1), and
EC2 instances come and go under elastic provisioning (Sec 5.4).  ESSE
tolerates all of this by design -- "individual ensemble members are not
significant (and their results can be ignored if unavailable)" (Sec 4
point 3) -- but *tolerating* faults is only testable if faults happen on
demand.

:class:`FaultInjector` makes them happen deterministically.  Every fault
draw depends only on ``(seed, task kind, index, attempt)``, never on
thread timing or completion order, so a fixed seed reproduces the exact
fault sequence across runs, worker counts, and thread/process backends --
the same member-indexed stream discipline the ensemble itself uses
(:mod:`repro.util.rng`).

Fault classes (see ``docs/FAILURE_MODEL.md`` for the paper mapping):

- ``CRASH``: the member dies before writing output,
- ``CORRUPT``: the member writes a truncated output file but reports
  success (a torn NFS write observed by a remote reader),
- ``STALL``: the member straggles for an extra delay before finishing,
- ``SUBMIT_FAILURE``: the submission itself transiently fails and must be
  reattempted.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from enum import Enum

from repro.util.rng import SeedSequenceStream
from repro.util.sanitizer import new_lock


class FaultKind(Enum):
    """The injectable fault classes."""

    CRASH = "crash"  # dies before writing output (Sec 5.3/5.4 lost jobs)
    CORRUPT = "corrupt"  # truncated output, status says success (Sec 5.2.1)
    STALL = "stall"  # straggler delay (Sec 5.3.1 unmonitorable Grid jobs)
    SUBMIT_FAILURE = "submit"  # transient submission failure (Sec 5.3.1)


@dataclass(frozen=True)
class FaultEvent:
    """One injected fault, keyed so sequences can be compared across runs."""

    kind: FaultKind
    task_kind: str
    index: int
    attempt: int


class FaultInjector:
    """Seedable, deterministic fault source for task-pool executions.

    Parameters
    ----------
    crash_rate, corrupt_rate, stall_rate:
        Per-attempt probabilities of each execution fault.  At most one
        execution fault fires per attempt (a single uniform draw is cut
        into disjoint intervals), so rates must sum to <= 1.
    submit_failure_rate:
        Probability that a given submission attempt fails before the task
        ever runs.  Drawn independently of the execution fault.
    stall_seconds:
        Extra delay a stalled member sleeps before completing.  The sleep
        waits on a per-attempt cancel event, so straggler cancellation
        frees the pool slot immediately instead of blocking a worker.
    seed:
        Root seed of the fault stream.

    Notes
    -----
    Draws are pure functions of ``(seed, task kind, index, attempt)``:
    re-running a campaign with the same seed injects byte-identical
    faults, which is what makes fault-tolerance tests reproducible.  The
    injector also records every fault it actually fired (thread-safe);
    :meth:`fault_sequence` returns them in canonical order for
    comparisons.
    """

    def __init__(
        self,
        crash_rate: float = 0.0,
        corrupt_rate: float = 0.0,
        stall_rate: float = 0.0,
        submit_failure_rate: float = 0.0,
        stall_seconds: float = 0.5,
        seed: int = 0,
    ):
        for name, rate in (
            ("crash_rate", crash_rate),
            ("corrupt_rate", corrupt_rate),
            ("stall_rate", stall_rate),
            ("submit_failure_rate", submit_failure_rate),
        ):
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {rate}")
        if crash_rate + corrupt_rate + stall_rate > 1.0:
            raise ValueError("execution fault rates must sum to <= 1")
        if stall_seconds < 0:
            raise ValueError("stall_seconds must be >= 0")
        self.crash_rate = crash_rate
        self.corrupt_rate = corrupt_rate
        self.stall_rate = stall_rate
        self.submit_failure_rate = submit_failure_rate
        self.stall_seconds = stall_seconds
        self.seed = int(seed)
        self._stream = SeedSequenceStream(self.seed)
        self._history: list[FaultEvent] = []
        self._lock = new_lock("FaultInjector._lock")

    def __getstate__(self):
        """Pickle support for process-pool workers (locks don't travel)."""
        state = self.__dict__.copy()
        del state["_lock"]
        return state

    def __setstate__(self, state):
        """Rebuild the lock; worker-side history starts empty by design."""
        self.__dict__.update(state)
        self._history = []
        self._lock = new_lock("FaultInjector._lock")

    # -- deterministic draws ------------------------------------------------

    def draw(self, index: int, attempt: int, kind: str = "pemodel") -> FaultKind | None:
        """The execution fault for one attempt, or None.

        Pure: depends only on ``(seed, kind, index, attempt)``.  Does not
        record history -- recording happens when the fault actually fires
        (:meth:`fire`), so the history reflects executed attempts only.
        """
        u = self._stream.rng("fault", kind, index, attempt).random()
        if u < self.crash_rate:
            return FaultKind.CRASH
        if u < self.crash_rate + self.corrupt_rate:
            return FaultKind.CORRUPT
        if u < self.crash_rate + self.corrupt_rate + self.stall_rate:
            return FaultKind.STALL
        return None

    def submit_fails(self, index: int, attempt: int, kind: str = "pemodel") -> bool:
        """Whether this submission attempt transiently fails (pure draw)."""
        if self.submit_failure_rate == 0.0:
            return False
        u = self._stream.rng("submit", kind, index, attempt).random()
        return u < self.submit_failure_rate

    # -- firing (history + stall plumbing) ----------------------------------

    def fire(self, fault: FaultKind, index: int, attempt: int, kind: str = "pemodel") -> FaultEvent:
        """Record that a drawn fault was actually injected."""
        event = FaultEvent(kind=fault, task_kind=kind, index=index, attempt=attempt)
        with self._lock:
            self._history.append(event)
        return event

    def stall(self, cancel: threading.Event | None = None) -> bool:
        """Serve one stall delay; returns True if cancelled mid-stall.

        The sleep waits on ``cancel`` so a straggler-cancelled attempt
        releases its worker immediately rather than after the full delay.
        """
        if cancel is None:
            cancel = threading.Event()
        return cancel.wait(self.stall_seconds)

    @property
    def history(self) -> tuple[FaultEvent, ...]:
        """Every fault fired so far, in firing order (thread-dependent)."""
        with self._lock:
            return tuple(self._history)

    def fault_sequence(self) -> tuple[FaultEvent, ...]:
        """Fired faults in canonical ``(kind, index, attempt)`` order.

        Firing order varies with thread scheduling; this canonical order
        is what two same-seed runs must agree on.
        """
        with self._lock:
            return tuple(
                sorted(
                    self._history,
                    key=lambda e: (e.task_kind, e.index, e.attempt, e.kind.value),
                )
            )

    def corrupt_bytes(self, payload: bytes) -> bytes:
        """Truncate an output payload the way a torn shared-FS write does."""
        return payload[: max(len(payload) // 2, 1)]
