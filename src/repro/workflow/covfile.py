"""The three-file covariance protocol.

Paper Sec 4.1: "To fully decouple the loops without introducing a race
condition on the covariance matrix file between its reading for the SVD and
its writing by diff, we employ three files, a safe one for SVD to use and a
live alternating pair for diff to write to, with the safe one being updated
by the appropriate member of the pair."

The differ alternates between ``live_a`` and ``live_b`` so one complete
file always exists even while the other is mid-write; ``publish`` points
the safe file at the most recent complete live file (atomic rename of a
copy).  The SVD worker only ever reads the safe file, so it sees a
consistent snapshot regardless of differ activity.
"""

from __future__ import annotations

import os
import shutil
from dataclasses import dataclass
from pathlib import Path

import numpy as np


@dataclass(frozen=True)
class CovarianceSnapshot:
    """One consistent snapshot of the anomaly matrix.

    Attributes
    ----------
    anomalies:
        Scaled anomaly matrix ``(n, N)`` (already /sqrt(N-1)).
    member_ids:
        Perturbation index of each column (the paper's bookkeeping).
    version:
        Monotone snapshot counter.
    """

    anomalies: np.ndarray
    member_ids: np.ndarray
    version: int

    @property
    def count(self) -> int:
        """Number of member columns in the snapshot."""
        return int(self.member_ids.size)


class CovarianceFileSet:
    """Safe/live-pair covariance files in a working directory."""

    def __init__(self, workdir: str | Path):
        self.workdir = Path(workdir)
        self.workdir.mkdir(parents=True, exist_ok=True)
        self.live_paths = (
            self.workdir / "cov_live_a.npz",
            self.workdir / "cov_live_b.npz",
        )
        self.safe_path = self.workdir / "cov_safe.npz"
        self._next_live = 0
        self._version = 0
        self._last_complete: Path | None = None

    # -- differ side ---------------------------------------------------------

    def write_live(self, anomalies: np.ndarray, member_ids: list[int]) -> Path:
        """Write the current matrix to the next live file (alternating)."""
        anomalies = np.asarray(anomalies)
        ids = np.asarray(member_ids, dtype=np.int64)
        if anomalies.ndim != 2 or anomalies.shape[1] != ids.size:
            raise ValueError(
                f"anomalies {anomalies.shape} inconsistent with {ids.size} member ids"
            )
        target = self.live_paths[self._next_live]
        self._next_live = 1 - self._next_live
        self._version += 1
        tmp = target.with_suffix(".tmp.npz")
        np.savez(tmp, anomalies=anomalies, member_ids=ids, version=self._version)
        os.replace(tmp, target)
        self._last_complete = target
        return target

    def publish(self) -> bool:
        """Update the safe file from the latest complete live file.

        Returns False when there is nothing to publish yet.
        """
        if self._last_complete is None:
            return False
        tmp = self.safe_path.with_suffix(".tmp.npz")
        shutil.copyfile(self._last_complete, tmp)
        os.replace(tmp, self.safe_path)
        return True

    # -- SVD side ----------------------------------------------------------------

    def read_safe(self) -> CovarianceSnapshot | None:
        """Read the safe snapshot (None before the first publish)."""
        try:
            with np.load(self.safe_path) as data:
                return CovarianceSnapshot(
                    anomalies=data["anomalies"],
                    member_ids=data["member_ids"],
                    version=int(data["version"]),
                )
        except FileNotFoundError:
            return None

    def cleanup(self) -> None:
        """Remove all protocol files (end-of-run cleanup, Sec 4.2)."""
        for path in (*self.live_paths, self.safe_path):
            path.unlink(missing_ok=True)
