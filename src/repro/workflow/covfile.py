"""The three-file covariance protocol (npz legacy and memmap column store).

Paper Sec 4.1: "To fully decouple the loops without introducing a race
condition on the covariance matrix file between its reading for the SVD and
its writing by diff, we employ three files, a safe one for SVD to use and a
live alternating pair for diff to write to, with the safe one being updated
by the appropriate member of the pair."

Two implementations share the publish/read-safe semantics:

- :class:`CovarianceFileSet` is the paper-faithful npz protocol: the
  differ alternates between ``live_a`` and ``live_b`` so one complete
  file always exists even while the other is mid-write; ``publish``
  points the safe file at the most recent complete live file (atomic
  rename of a copy).  Every write materializes the full ``(n, N)``
  matrix -- ``O(n N)`` bytes per member arrival.
- :class:`MemmapCovarianceStore` is the scalable replacement: an
  append-only column store (raw normalized anomalies, column-major on
  disk) plus a tiny header file carrying ``(version, count)`` that is
  the *only* thing rewritten per publish.  Appending member ``N`` costs
  ``O(n)`` bytes; readers memmap the published prefix zero-copy.  The
  commit ordering (data flushed before the header is atomically
  replaced; in-memory state updated only after a successful replace)
  preserves the npz protocol's crash-consistency guarantees -- see
  ``docs/COVFILE_PROTOCOL.md``.

Both readers treat *any* unreadable safe file -- torn copy, truncated
zip, NFS-lagged header -- as "no snapshot yet", bounded by
``max_unreadable_reads`` consecutive failures before
:class:`CovarianceReadError` is raised (a permanently corrupt file must
not be an infinite silent spin; see ``docs/FAILURE_MODEL.md``).
"""

from __future__ import annotations

import json
import shutil
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.core.covariance import AnomalyView
from repro.util.fsio import durable_replace


class CovarianceReadError(RuntimeError):
    """The safe snapshot stayed unreadable past the retry bound."""


@dataclass(frozen=True)
class CovarianceSnapshot:
    """One consistent snapshot of the anomaly matrix.

    Attributes
    ----------
    anomalies:
        Scaled anomaly matrix ``(n, N)`` (already /sqrt(N-1)).
    member_ids:
        Perturbation index of each column (the paper's bookkeeping).
    version:
        Monotone snapshot counter.
    """

    anomalies: np.ndarray
    member_ids: np.ndarray
    version: int

    @property
    def count(self) -> int:
        """Number of member columns in the snapshot."""
        return int(self.member_ids.size)


@dataclass(frozen=True)
class ColumnSnapshot:
    """A zero-copy snapshot of the published prefix of the column store.

    Attributes
    ----------
    columns:
        Read-only memmap view ``(n, count)`` of *raw* (unscaled)
        normalized anomaly columns -- no bytes are copied until a
        consumer actually touches pages.
    member_ids:
        Perturbation index of each column.
    version:
        Monotone publish counter.
    """

    columns: np.ndarray
    member_ids: np.ndarray
    version: int

    @property
    def count(self) -> int:
        """Number of member columns in the snapshot."""
        return int(self.member_ids.size)

    @property
    def scale(self) -> float:
        """The ``1/sqrt(count - 1)`` covariance normalization factor."""
        if self.count < 2:
            raise RuntimeError(f"need >= 2 members for a scale, have {self.count}")
        return 1.0 / np.sqrt(self.count - 1)

    @property
    def anomalies(self) -> np.ndarray:
        """Scaled anomaly matrix (materializes a copy; prefer ``columns``)."""
        return self.columns * self.scale


class CovarianceFileSet:
    """Safe/live-pair covariance files in a working directory.

    Parameters
    ----------
    workdir:
        Directory receiving the protocol files.
    max_unreadable_reads:
        Consecutive unreadable (present but unparsable) safe-file reads
        tolerated before :meth:`read_safe` raises
        :class:`CovarianceReadError`.
    """

    def __init__(self, workdir: str | Path, max_unreadable_reads: int = 64):
        if max_unreadable_reads < 1:
            raise ValueError("max_unreadable_reads must be >= 1")
        self.workdir = Path(workdir)
        self.workdir.mkdir(parents=True, exist_ok=True)
        self.live_paths = (
            self.workdir / "cov_live_a.npz",
            self.workdir / "cov_live_b.npz",
        )
        self.safe_path = self.workdir / "cov_safe.npz"
        self.max_unreadable_reads = max_unreadable_reads
        self._next_live = 0
        self._version = 0
        self._last_complete: Path | None = None
        self.consecutive_unreadable = 0
        self.last_read_error: Exception | None = None

    # -- differ side ---------------------------------------------------------

    def write_live(self, anomalies: np.ndarray, member_ids: list[int]) -> Path:
        """Write the current matrix to the next live file (alternating).

        The in-memory protocol state (live alternation, version counter,
        last-complete pointer) commits only after the atomic replace
        succeeds: a failed write -- disk full, injected fault -- leaves
        the state pointing at the previous complete generation, so
        ``publish`` keeps serving a consistent snapshot and the next
        ``write_live`` retries the same slot with the same version.

        Returns the live path written (its ``stat().st_size`` is the
        differ-side byte cost of this arrival).
        """
        anomalies = np.asarray(anomalies)
        ids = np.asarray(member_ids, dtype=np.int64)
        if anomalies.ndim != 2 or anomalies.shape[1] != ids.size:
            raise ValueError(
                f"anomalies {anomalies.shape} inconsistent with {ids.size} member ids"
            )
        target = self.live_paths[self._next_live]
        tmp = target.with_suffix(".tmp.npz")
        np.savez(tmp, anomalies=anomalies, member_ids=ids, version=self._version + 1)
        durable_replace(tmp, target)
        # Commit point: the replace succeeded, the new generation is on disk.
        self._version += 1
        self._next_live = 1 - self._next_live
        self._last_complete = target
        return target

    def publish(self) -> bool:
        """Update the safe file from the latest complete live file.

        Returns False when there is nothing to publish yet.
        """
        if self._last_complete is None:
            return False
        tmp = self.safe_path.with_suffix(".tmp.npz")
        shutil.copyfile(self._last_complete, tmp)
        durable_replace(tmp, self.safe_path)
        return True

    # -- SVD side ----------------------------------------------------------------

    def read_safe(self) -> CovarianceSnapshot | None:
        """Read the safe snapshot (None before the first publish).

        Any unreadable-but-present safe file -- torn copy racing the
        differ's replace, truncated zip, missing keys -- is treated as
        "no snapshot yet" so a concurrent reader survives it and retries
        on its next poll.  The retry is bounded: after
        ``max_unreadable_reads`` *consecutive* unreadable reads a
        :class:`CovarianceReadError` is raised (the file is corrupt for
        good, not mid-replace).
        """
        try:
            with np.load(self.safe_path) as data:
                snap = CovarianceSnapshot(
                    anomalies=data["anomalies"],
                    member_ids=data["member_ids"],
                    version=int(data["version"]),
                )
        except FileNotFoundError:
            return None
        except Exception as exc:
            self._note_unreadable(exc)
            return None
        self.consecutive_unreadable = 0
        self.last_read_error = None
        return snap

    def _note_unreadable(self, exc: Exception) -> None:
        self.consecutive_unreadable += 1
        self.last_read_error = exc
        if self.consecutive_unreadable >= self.max_unreadable_reads:
            raise CovarianceReadError(
                f"safe covariance file unreadable {self.consecutive_unreadable} "
                f"consecutive times (last error: {exc!r})"
            ) from exc

    def cleanup(self) -> None:
        """Remove all protocol files (end-of-run cleanup, Sec 4.2)."""
        for path in (*self.live_paths, self.safe_path):
            path.unlink(missing_ok=True)


class MemmapCovarianceStore:
    """Append-only memmap-backed covariance column store.

    On-disk layout (``docs/COVFILE_PROTOCOL.md``):

    - ``cov_columns.bin`` -- raw float64 anomaly columns, column-major
      (column ``j`` occupies bytes ``[j n 8, (j+1) n 8)``), append-only;
    - ``cov_members.bin`` -- int64 member ids, append-only, same order;
    - ``cov_header.json`` -- ``{"version", "count", "state_dim"}``,
      rewritten atomically (tmp + ``os.replace``) by :meth:`publish`.

    Write protocol: :meth:`append` seeks to the committed end of the data
    files and writes the new columns (a crashed or failed append leaves
    garbage *beyond* the published count, which no reader ever maps);
    :meth:`publish` flushes the data files and then atomically replaces
    the header.  In-memory counters commit only after each step's
    replace/flush succeeds, mirroring the npz protocol's
    commit-after-success fix.

    Read protocol: parse the header (atomic, hence never torn on a
    POSIX-local filesystem -- but an NFS-lagged or hand-corrupted header
    is still tolerated as "no snapshot yet" with the same bounded retry
    as :meth:`CovarianceFileSet.read_safe`), then memmap exactly
    ``count`` columns.  Data for those columns was flushed before the
    header landed, so the mapped prefix is immutable and consistent.
    """

    def __init__(self, workdir: str | Path, max_unreadable_reads: int = 64):
        if max_unreadable_reads < 1:
            raise ValueError("max_unreadable_reads must be >= 1")
        self.workdir = Path(workdir)
        self.workdir.mkdir(parents=True, exist_ok=True)
        self.columns_path = self.workdir / "cov_columns.bin"
        self.members_path = self.workdir / "cov_members.bin"
        self.header_path = self.workdir / "cov_header.json"
        self.max_unreadable_reads = max_unreadable_reads
        self._state_dim: int | None = None
        self._appended = 0  # columns durably appended (>= published count)
        self._published = 0  # columns visible through the current header
        self._version = 0
        self._columns_file = None
        self._members_file = None
        self.consecutive_unreadable = 0
        self.last_read_error: Exception | None = None

    # -- differ side ---------------------------------------------------------

    @property
    def count(self) -> int:
        """Columns appended so far (not necessarily published)."""
        return self._appended

    @property
    def version(self) -> int:
        """Publish counter of the current header."""
        return self._version

    def _open_files(self) -> None:
        if self._columns_file is None:
            self._columns_file = open(self.columns_path, "a+b")
            self._members_file = open(self.members_path, "a+b")

    def append(self, columns: np.ndarray, member_ids) -> int:
        """Append new raw anomaly columns; returns bytes written.

        The write lands at the committed end of the files regardless of
        any earlier partial failure (explicit seek, not append mode
        semantics), so a failed append is retried in place and garbage
        from the failure is overwritten.  Nothing becomes visible to
        readers until :meth:`publish`.
        """
        columns = np.asarray(columns, dtype=np.float64)  # shape: (state_dim, count) # dtype: float64
        if columns.ndim == 1:
            columns = columns[:, None]
        ids = np.asarray(member_ids, dtype=np.int64).ravel()  # shape: (count) # dtype: int64
        if columns.ndim != 2 or columns.shape[1] != ids.size:
            raise ValueError(
                f"columns {columns.shape} inconsistent with {ids.size} member ids"
            )
        if self._state_dim is None:
            self._state_dim = int(columns.shape[0])
        elif columns.shape[0] != self._state_dim:
            raise ValueError(
                f"state dim changed: {columns.shape[0]} != {self._state_dim}"
            )
        if ids.size == 0:
            return 0
        self._open_files()
        col_bytes = columns.tobytes(order="F")
        self._columns_file.seek(self._appended * self._state_dim * 8)
        self._columns_file.write(col_bytes)
        self._members_file.seek(self._appended * 8)
        self._members_file.write(ids.tobytes())
        # Commit point: both writes succeeded end to end.
        self._appended += ids.size
        return len(col_bytes) + ids.size * 8

    def sync_from(self, view: AnomalyView) -> int:
        """Append whatever the accumulator view holds beyond our tail.

        The accumulator is append-only, so the store's columns are
        always a prefix of any newer view; this ships exactly the new
        columns (zero-copy slice of the view) and returns bytes written.
        """
        if view.count < self._appended:
            raise ValueError(
                f"view has {view.count} columns but {self._appended} already stored"
            )
        new = view.columns[:, self._appended : view.count]  # shape: (state_dim, ?)
        ids = view.member_ids[self._appended : view.count]  # shape: (?) # dtype: int64
        return self.append(new, ids)

    def publish(self) -> bool:
        """Flush appended data, then atomically expose it via the header.

        Returns False when nothing has been appended yet.  The version
        counter and published count commit only after the header replace
        succeeds.
        """
        if self._appended == 0:
            return False
        self._open_files()
        self._columns_file.flush()
        self._members_file.flush()
        header = {
            "version": self._version + 1,
            "count": self._appended,
            "state_dim": self._state_dim,
        }
        tmp = self.header_path.with_suffix(".json.tmp")
        tmp.write_text(json.dumps(header))
        durable_replace(tmp, self.header_path)
        # Commit point: readers can now see the new generation.
        self._version += 1
        self._published = self._appended
        return True

    # -- SVD side ----------------------------------------------------------------

    def read_safe(self) -> ColumnSnapshot | None:
        """Zero-copy snapshot of the published prefix (None before first publish).

        The same resilience contract as :meth:`CovarianceFileSet.read_safe`:
        a torn/lagged/corrupt header or a data file shorter than the
        header claims (an NFS reader seeing the header before the data)
        reads as "no snapshot yet", bounded by ``max_unreadable_reads``
        consecutive failures.
        """
        try:
            raw = self.header_path.read_text()
        except FileNotFoundError:
            return None
        try:
            header = json.loads(raw)
            version = int(header["version"])
            count = int(header["count"])
            n = int(header["state_dim"])
            if count < 1 or n < 1:
                raise ValueError(f"implausible header {header!r}")
            if self.columns_path.stat().st_size < count * n * 8:
                raise ValueError("columns file shorter than header claims")
            if self.members_path.stat().st_size < count * 8:
                raise ValueError("members file shorter than header claims")
            member_ids = np.fromfile(
                self.members_path, dtype=np.int64, count=count
            )
            # Map the columns last: nothing after this can raise, so the
            # mapping cannot leak on the unreadable-generation path -- the
            # snapshot returned below owns it (REP009).
            columns = np.memmap(
                self.columns_path,
                dtype=np.float64,
                mode="r",
                shape=(n, count),
                order="F",
            )
        except Exception as exc:
            self._note_unreadable(exc)
            return None
        self.consecutive_unreadable = 0
        self.last_read_error = None
        return ColumnSnapshot(columns=columns, member_ids=member_ids, version=version)

    def _note_unreadable(self, exc: Exception) -> None:
        self.consecutive_unreadable += 1
        self.last_read_error = exc
        if self.consecutive_unreadable >= self.max_unreadable_reads:
            raise CovarianceReadError(
                f"covariance column store unreadable {self.consecutive_unreadable} "
                f"consecutive times (last error: {exc!r})"
            ) from exc

    def close(self) -> None:
        """Close the writer's file handles (reader needs none)."""
        for handle in (self._columns_file, self._members_file):
            if handle is not None:
                handle.close()
        self._columns_file = None
        self._members_file = None

    def cleanup(self) -> None:
        """Remove all protocol files (end-of-run cleanup, Sec 4.2)."""
        self.close()
        for path in (self.columns_path, self.members_path, self.header_path):
            path.unlink(missing_ok=True)
