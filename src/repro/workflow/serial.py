"""The serial ESSE shepherd (paper Fig 3), instrumented.

A loop of N ensemble members is calculated (perturb + forecast), then the
diff loop appends each member's difference from the central forecast to a
single covariance file, then the SVD runs, then the convergence test; on
failure the ensemble grows to N2 and the process repeats for members
N+1..N2.  The implementation deliberately preserves the four bottlenecks
the paper lists:

1. the diff loop cannot start before the perturb/forecast loop finishes;
2. the diff loop writes one shared file, in perturbation order;
3. the SVD waits for the diff loop;
4. the SVD/convergence is a large serial computation.

Phase timings are telemetry spans (``serial.pert_forecast`` /
``serial.diff`` / ``serial.svd_conv``, one per round): the
:class:`SerialTimings` table the Fig 3 bench displays is *derived* from
the recorded spans rather than kept in hand-rolled lists, so the same
run exports the same Chrome-trace timeline as the parallel workflow.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.core.convergence import ConvergenceCriterion
from repro.core.covariance import AnomalyAccumulator
from repro.core.driver import ESSEConfig
from repro.core.ensemble import EnsembleRunner
from repro.core.subspace import ErrorSubspace
from repro.telemetry.spans import TraceRecorder
from repro.util.fsio import durable_replace
from repro.workflow.statefiles import StatusDirectory, TaskStatus

#: Span-name prefix shared by the serial shepherd's phase spans.
PHASE_PREFIX = "serial."


@dataclass
class SerialTimings:
    """Per-round phase durations (seconds)."""

    round_sizes: list[int] = field(default_factory=list)
    pert_forecast: list[float] = field(default_factory=list)
    diff: list[float] = field(default_factory=list)
    svd_conv: list[float] = field(default_factory=list)

    @classmethod
    def from_spans(cls, spans) -> SerialTimings:
        """Rebuild the per-round phase table from recorded telemetry spans.

        Accepts any span iterable (a recorder's or a parsed run log's);
        spans not named ``serial.<phase>`` are ignored, so a recorder
        shared with other subsystems still yields the right table.
        """
        timings = cls()
        ordered = sorted(
            (s for s in spans if s.name.startswith(PHASE_PREFIX)),
            key=lambda s: (s.start, s.span_id),
        )
        for span in ordered:
            phase = span.name[len(PHASE_PREFIX):]
            if phase == "pert_forecast":
                timings.pert_forecast.append(span.duration)
            elif phase == "diff":
                timings.diff.append(span.duration)
            elif phase == "svd_conv":
                timings.svd_conv.append(span.duration)
                timings.round_sizes.append(int(span.attr("count", 0)))
        return timings

    @property
    def total(self) -> float:
        """Total shepherd wall time across rounds."""
        return sum(self.pert_forecast) + sum(self.diff) + sum(self.svd_conv)

    def phase_fractions(self) -> dict[str, float]:
        """Fraction of total time per phase."""
        total = self.total or 1.0
        return {
            "pert_forecast": sum(self.pert_forecast) / total,
            "diff": sum(self.diff) / total,
            "svd_conv": sum(self.svd_conv) / total,
        }


@dataclass
class SerialResult:
    """Outcome of the serial workflow."""

    subspace: ErrorSubspace
    ensemble_size: int
    converged: bool
    convergence_history: tuple[tuple[int, float], ...]
    timings: SerialTimings
    failed_members: tuple[int, ...]


class SerialESSEWorkflow:
    """Fig 3: the serial job shepherd.

    Parameters
    ----------
    runner:
        Ensemble runner (perturb + forecast of one member).
    config:
        ESSE sizing/convergence configuration.
    workdir:
        Working directory for member files, the covariance file and the
        status directory.
    telemetry:
        Optional :class:`~repro.telemetry.spans.TraceRecorder` that
        receives the phase spans (and supplies the clock).  When None a
        private recorder is used, so :class:`SerialTimings` -- which is
        derived from the spans -- is always available.
    """

    def __init__(
        self,
        runner: EnsembleRunner,
        config: ESSEConfig,
        workdir: str | Path,
        telemetry: TraceRecorder | None = None,
    ):
        self.runner = runner
        self.config = config
        self.workdir = Path(workdir)
        (self.workdir / "members").mkdir(parents=True, exist_ok=True)
        self.status = StatusDirectory(self.workdir / "status")
        self.cov_path = self.workdir / "covariance.npz"
        self.telemetry = telemetry if telemetry is not None else TraceRecorder()

    def _member_path(self, index: int) -> Path:
        return self.workdir / "members" / f"forecast_{index:05d}.npz"

    def run(self, mean_state) -> SerialResult:
        """Execute the serial shepherd until convergence, Nmax or Tmax."""
        cfg = self.config
        recorder = self.telemetry
        clock = recorder.clock
        central = self.runner.central_forecast(mean_state)
        central_vec = self.runner.model.to_vector(central)
        accumulator = AnomalyAccumulator(self.runner.model.layout, central_vec)
        criterion = ConvergenceCriterion(tolerance=cfg.convergence_tolerance)
        failed: list[int] = []
        next_index = 0
        subspace: ErrorSubspace | None = None
        started = clock()

        with recorder.span("workflow.serial"):
            for round_no, stage_target in enumerate(cfg.stage_sizes()):
                # --- perturb/forecast loop (bottleneck 1: fully serial) ---
                batch = range(next_index, stage_target)
                next_index = stage_target
                with recorder.span(
                    "serial.pert_forecast", round=round_no, size=len(batch)
                ):
                    for j in batch:
                        # Restart path (Sec 4.2): a member that already
                        # reported success on a previous run is reused from
                        # its file instead of being recomputed.
                        if self.status.succeeded(
                            "pemodel", j
                        ) and self._member_path(j).exists():
                            continue
                        result = self.runner.run_member(mean_state, j)
                        if result.ok:
                            np.savez(self._member_path(j), forecast=result.forecast)
                            self.status.write("pemodel", j, TaskStatus.SUCCESS)
                        else:
                            failed.append(j)
                            self.status.write(
                                "pemodel", j, TaskStatus.MODEL_FAILURE
                            )

                # --- diff loop (bottleneck 2: one shared file, in order) --
                with recorder.span("serial.diff", round=round_no):
                    for j in sorted(self.status.successful_indices("pemodel")):
                        if accumulator.has_member(j):
                            continue
                        with np.load(self._member_path(j)) as data:
                            accumulator.add_member(j, data["forecast"])
                        # rewrite the single covariance file after every
                        # member -- the serial implementation's "large
                        # file" write bottleneck
                        if accumulator.count >= 2:
                            m = accumulator.matrix()
                            tmp = self.cov_path.with_suffix(".tmp.npz")
                            np.savez(
                                tmp, anomalies=m, member_ids=accumulator.member_ids
                            )
                            durable_replace(tmp, self.cov_path)

                # --- SVD + convergence (bottlenecks 3 and 4) ---------------
                with recorder.span(
                    "serial.svd_conv", round=round_no, count=accumulator.count
                ):
                    if accumulator.count >= 2:
                        with np.load(self.cov_path) as data:
                            anomalies = data["anomalies"]
                        subspace = ErrorSubspace.from_anomalies(
                            anomalies,
                            rank=cfg.max_subspace_rank,
                            energy=cfg.svd_energy,
                        )
                        criterion.update(subspace)

                if criterion.converged:
                    break
                if cfg.deadline_seconds is not None and (
                    clock() - started > cfg.deadline_seconds
                ):
                    break

        if subspace is None:
            raise RuntimeError("no ensemble members survived the serial workflow")
        timings = SerialTimings.from_spans(
            s for s in recorder.spans() if s.start >= started
        )
        return SerialResult(
            subspace=subspace,
            ensemble_size=accumulator.count,
            converged=criterion.converged,
            convergence_history=tuple(criterion.history),
            timings=timings,
            failed_members=tuple(failed),
        )
