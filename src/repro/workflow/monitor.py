"""Progress monitoring from the shared status directory.

Paper Sec 5.3.1: remote submission "gives no easy way for the user to
monitor the progress of one's jobs (other than to try to monitor the
contents of the submission/completion directories)".  Since those
per-index status files are exactly what :class:`StatusDirectory` manages,
this module makes that monitoring first-class: progress counts, throughput
and an ETA computed from the directory alone -- no scheduler access needed,
which is the point for jobs scattered across Grid sites.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.telemetry.clock import MONOTONIC
from repro.telemetry.metrics import MetricsRegistry
from repro.workflow.statefiles import StatusDirectory, TaskStatus


@dataclass(frozen=True)
class ProgressReport:
    """Snapshot of one task kind's progress."""

    kind: str
    expected: int
    succeeded: int
    failed: int
    cancelled: int
    throughput_per_minute: float  # completions/minute since monitoring began
    eta_seconds: float | None  # None until throughput is measurable
    n_retried: int = 0  # resubmitted executions (attempt records beyond the 1st)
    n_timed_out: int = 0  # straggler attempts cancelled past their deadline

    @property
    def reported(self) -> int:
        """Tasks that wrote any status."""
        return self.succeeded + self.failed + self.cancelled

    @property
    def pending(self) -> int:
        """Tasks still unreported."""
        return max(self.expected - self.reported, 0)

    @property
    def complete(self) -> bool:
        """Whether every expected task has reported."""
        return self.reported >= self.expected

    def render(self) -> str:
        """One human-readable progress line."""
        pct = 100.0 * self.reported / self.expected if self.expected else 100.0
        eta = (
            f", ETA {self.eta_seconds / 60.0:.1f} min"
            if self.eta_seconds is not None
            else ""
        )
        faults = (
            f", retried {self.n_retried}, timed out {self.n_timed_out}"
            if self.n_retried or self.n_timed_out
            else ""
        )
        return (
            f"{self.kind}: {self.reported}/{self.expected} ({pct:.0f}%) "
            f"[ok {self.succeeded}, failed {self.failed}, "
            f"cancelled {self.cancelled}{faults}]{eta}"
        )


class ProgressMonitor:
    """Tracks completion of an expected task set via status files.

    Parameters
    ----------
    status:
        The shared status directory.
    expected:
        Mapping of task kind -> expected count (e.g. ``{"pemodel": 600}``).
    clock:
        Time source (injectable for tests); defaults to
        :data:`repro.telemetry.clock.MONOTONIC`.
    metrics:
        Optional :class:`~repro.telemetry.metrics.MetricsRegistry`; every
        :meth:`report` refreshes per-kind progress gauges
        (``progress_succeeded`` / ``progress_failed`` /
        ``progress_cancelled`` / ``progress_pending`` /
        ``progress_throughput_per_minute``) so dashboards read the
        registry instead of re-parsing status directories.
    """

    def __init__(
        self,
        status: StatusDirectory,
        expected: dict[str, int],
        clock=MONOTONIC,
        metrics: MetricsRegistry | None = None,
    ):
        if not expected:
            raise ValueError("expected task counts must be non-empty")
        for kind, count in expected.items():
            if count < 1:
                raise ValueError(f"expected count for {kind!r} must be >= 1")
        self.status = status
        self.expected = dict(expected)
        self._clock = clock
        self._t0 = clock()
        self.metrics = metrics
        # Completions already on disk when monitoring began: a restarted
        # monitor must not count them as *its* throughput, for any kind.
        self._baseline = {
            kind: len(status.completed_indices(kind)) for kind in expected
        }

    def report(self, kind: str) -> ProgressReport:
        """Progress snapshot for one task kind."""
        if kind not in self.expected:
            raise KeyError(f"unknown kind {kind!r}; expected {sorted(self.expected)}")
        statuses = self.status.completed_indices(kind)
        succeeded = sum(1 for s in statuses.values() if s == TaskStatus.SUCCESS)
        failed = sum(
            1
            for s in statuses.values()
            if s
            in (TaskStatus.MODEL_FAILURE, TaskStatus.IO_FAILURE, TaskStatus.TIMED_OUT)
        )
        cancelled = sum(1 for s in statuses.values() if s == TaskStatus.CANCELLED)
        attempts = self.status.attempt_counts(kind)
        n_retried = sum(sum(per.values()) - 1 for per in attempts.values())
        n_timed_out = sum(
            per.get(TaskStatus.TIMED_OUT, 0) for per in attempts.values()
        )

        elapsed = max(self._clock() - self._t0, 1e-9)
        # Exclude pre-existing completions from the measured rate; clamp
        # at zero so a cleaned-up status directory (fewer records than the
        # baseline) cannot produce a negative throughput.
        new_since_start = max(len(statuses) - self._baseline[kind], 0)
        rate = 60.0 * new_since_start / elapsed
        expected = self.expected[kind]
        remaining = expected - len(statuses)
        if len(statuses) > expected:
            # More reports than expected tasks: the expectation is stale,
            # so any ETA would be fiction (previously this claimed 0.0).
            eta = None
        elif remaining == 0:
            eta = 0.0
        elif rate > 0:
            eta = 60.0 * remaining / rate
        else:
            eta = None  # no measurable progress yet: no ETA, never inf
        if self.metrics is not None:
            self.metrics.gauge("progress_succeeded", kind=kind).set(succeeded)
            self.metrics.gauge("progress_failed", kind=kind).set(failed)
            self.metrics.gauge("progress_cancelled", kind=kind).set(cancelled)
            self.metrics.gauge("progress_pending", kind=kind).set(
                max(remaining, 0)
            )
            self.metrics.gauge("progress_throughput_per_minute", kind=kind).set(
                rate
            )
        return ProgressReport(
            kind=kind,
            expected=self.expected[kind],
            succeeded=succeeded,
            failed=failed,
            cancelled=cancelled,
            throughput_per_minute=rate,
            eta_seconds=eta,
            n_retried=n_retried,
            n_timed_out=n_timed_out,
        )

    def reports(self) -> list[ProgressReport]:
        """Snapshots for every expected kind."""
        return [self.report(kind) for kind in self.expected]

    def all_complete(self) -> bool:
        """Whether every expected task of every kind has reported."""
        return all(r.complete for r in self.reports())
