"""Progress monitoring from the shared status directory.

Paper Sec 5.3.1: remote submission "gives no easy way for the user to
monitor the progress of one's jobs (other than to try to monitor the
contents of the submission/completion directories)".  Since those
per-index status files are exactly what :class:`StatusDirectory` manages,
this module makes that monitoring first-class: progress counts, throughput
and an ETA computed from the directory alone -- no scheduler access needed,
which is the point for jobs scattered across Grid sites.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.telemetry.clock import MONOTONIC
from repro.telemetry.metrics import MetricsRegistry
from repro.workflow.statefiles import StatusDirectory, TaskStatus


@dataclass(frozen=True)
class ProgressReport:
    """Snapshot of one task kind's progress."""

    kind: str
    expected: int
    succeeded: int
    failed: int
    cancelled: int
    throughput_per_minute: float  # completions/minute since monitoring began
    eta_seconds: float | None  # None until throughput is measurable
    n_retried: int = 0  # resubmitted executions (attempt records beyond the 1st)
    n_timed_out: int = 0  # straggler attempts cancelled past their deadline

    @property
    def reported(self) -> int:
        """Tasks that wrote any status."""
        return self.succeeded + self.failed + self.cancelled

    @property
    def pending(self) -> int:
        """Tasks still unreported."""
        return max(self.expected - self.reported, 0)

    @property
    def complete(self) -> bool:
        """Whether every expected task has reported."""
        return self.reported >= self.expected

    def render(self) -> str:
        """One human-readable progress line."""
        pct = 100.0 * self.reported / self.expected if self.expected else 100.0
        eta = (
            f", ETA {self.eta_seconds / 60.0:.1f} min"
            if self.eta_seconds is not None
            else ""
        )
        faults = (
            f", retried {self.n_retried}, timed out {self.n_timed_out}"
            if self.n_retried or self.n_timed_out
            else ""
        )
        return (
            f"{self.kind}: {self.reported}/{self.expected} ({pct:.0f}%) "
            f"[ok {self.succeeded}, failed {self.failed}, "
            f"cancelled {self.cancelled}{faults}]{eta}"
        )


class ProgressMonitor:
    """Tracks completion of an expected task set via status files.

    Parameters
    ----------
    status:
        The shared status directory.
    expected:
        Mapping of task kind -> expected count (e.g. ``{"pemodel": 600}``).
    clock:
        Time source (injectable for tests); defaults to
        :data:`repro.telemetry.clock.MONOTONIC`.
    metrics:
        Optional :class:`~repro.telemetry.metrics.MetricsRegistry`; every
        :meth:`report` refreshes per-kind progress gauges
        (``progress_succeeded`` / ``progress_failed`` /
        ``progress_cancelled`` / ``progress_pending`` /
        ``progress_throughput_per_minute``) so dashboards read the
        registry instead of re-parsing status directories.
    members_per_task:
        Mapping of task kind -> members covered by one status record.
        The batched ensemble backend writes one ``pemodel_batch`` record
        per *batch* of members; without this weight a 24-member run with
        batch size 8 would report 3/24 when fully done.  ``expected``
        stays in member units.  Each value is either an ``int`` -- a
        uniform weight applied to every record, with the final partial
        batch clamped so reports never overshoot ``expected`` -- or a
        mapping of record index -> exact member count, which staged
        growth needs: stages of 4 members batched in threes produce
        *two* partial batches (3+1, 3+1), and a uniform weight cannot
        represent that.  :meth:`EnsembleEngine.progress_monitor` passes
        the exact sizes it recorded.  Attempt-level counters
        (``n_retried`` / ``n_timed_out``) remain task-level: a batch
        retry is one resubmission however many members ride in it.
    """

    def __init__(
        self,
        status: StatusDirectory,
        expected: dict[str, int],
        clock=MONOTONIC,
        metrics: MetricsRegistry | None = None,
        members_per_task: dict[str, int | dict[int, int]] | None = None,
    ):
        if not expected:
            raise ValueError("expected task counts must be non-empty")
        for kind, count in expected.items():
            if count < 1:
                raise ValueError(f"expected count for {kind!r} must be >= 1")
        self._members_per_task = dict(members_per_task or {})
        for kind, spec in self._members_per_task.items():
            sizes = spec.values() if isinstance(spec, dict) else (spec,)
            if any(size < 1 for size in sizes):
                raise ValueError(f"members_per_task for {kind!r} must be >= 1")
        self.status = status
        self.expected = dict(expected)
        self._clock = clock
        self._t0 = clock()
        self.metrics = metrics
        # Completions already on disk when monitoring began: a restarted
        # monitor must not count them as *its* throughput, for any kind.
        # Kept in member units so weighted kinds measure member throughput.
        self._baseline = {
            kind: sum(
                self._weight(kind, index)
                for index in status.completed_indices(kind)
            )
            for kind in expected
        }

    def _weight(self, kind: str, index: int) -> int:
        """Members covered by one status record of ``kind`` at ``index``."""
        spec = self._members_per_task.get(kind, 1)
        if isinstance(spec, dict):
            return spec.get(index, 1)
        return spec

    def report(self, kind: str) -> ProgressReport:
        """Progress snapshot for one task kind (counts in *member* units)."""
        if kind not in self.expected:
            raise KeyError(f"unknown kind {kind!r}; expected {sorted(self.expected)}")
        spec = self._members_per_task.get(kind, 1)
        exact = isinstance(spec, dict)
        weight = max(spec.values(), default=1) if exact else spec
        statuses = self.status.completed_indices(kind)
        succeeded = sum(
            self._weight(kind, i)
            for i, s in statuses.items()
            if s == TaskStatus.SUCCESS
        )
        failed = sum(
            self._weight(kind, i)
            for i, s in statuses.items()
            if s
            in (TaskStatus.MODEL_FAILURE, TaskStatus.IO_FAILURE, TaskStatus.TIMED_OUT)
        )
        cancelled = sum(
            self._weight(kind, i)
            for i, s in statuses.items()
            if s == TaskStatus.CANCELLED
        )
        attempts = self.status.attempt_counts(kind)
        n_retried = sum(sum(per.values()) - 1 for per in attempts.values())
        n_timed_out = sum(
            per.get(TaskStatus.TIMED_OUT, 0) for per in attempts.values()
        )

        elapsed = max(self._clock() - self._t0, 1e-9)
        # Exclude pre-existing completions from the measured rate; clamp
        # at zero so a cleaned-up status directory (fewer records than the
        # baseline) cannot produce a negative throughput.
        reported_members = sum(self._weight(kind, i) for i in statuses)
        new_since_start = max(reported_members - self._baseline[kind], 0)
        rate = 60.0 * new_since_start / elapsed
        expected = self.expected[kind]
        reported = succeeded + failed + cancelled
        # Exact per-record sizes cannot overshoot legitimately; a uniform
        # weight overshoots by less than one task on the partial final
        # batch, and only by a whole task when the expectation is stale.
        stale = (
            reported > expected if exact else reported - expected >= weight
        )
        if not exact and weight > 1 and reported > expected and not stale:
            # Final partial batch: the last task carried fewer members
            # than its weight, so the record counts overshoot by less
            # than one task.  Clamp -- trimming successes first, then
            # failures, then cancellations -- so the member totals sum
            # to the expectation instead of reporting 27/24.
            overshoot = reported - expected
            take = min(succeeded, overshoot)
            succeeded -= take
            overshoot -= take
            take = min(failed, overshoot)
            failed -= take
            overshoot -= take
            cancelled -= overshoot
            reported = expected
        remaining = expected - reported
        if stale:
            # More whole tasks reported than the expectation can hold: the
            # expectation is stale, so any ETA would be fiction (previously
            # this claimed 0.0).
            eta = None
        elif remaining == 0:
            eta = 0.0
        elif rate > 0:
            eta = 60.0 * remaining / rate
        else:
            eta = None  # no measurable progress yet: no ETA, never inf
        if self.metrics is not None:
            self.metrics.gauge("progress_succeeded", kind=kind).set(succeeded)
            self.metrics.gauge("progress_failed", kind=kind).set(failed)
            self.metrics.gauge("progress_cancelled", kind=kind).set(cancelled)
            self.metrics.gauge("progress_pending", kind=kind).set(
                max(remaining, 0)
            )
            self.metrics.gauge("progress_throughput_per_minute", kind=kind).set(
                rate
            )
        return ProgressReport(
            kind=kind,
            expected=self.expected[kind],
            succeeded=succeeded,
            failed=failed,
            cancelled=cancelled,
            throughput_per_minute=rate,
            eta_seconds=eta,
            n_retried=n_retried,
            n_timed_out=n_timed_out,
        )

    def reports(self) -> list[ProgressReport]:
        """Snapshots for every expected kind."""
        return [self.report(kind) for kind in self.expected]

    def all_complete(self) -> bool:
        """Whether every expected task of every kind has reported."""
        return all(r.complete for r in self.reports())
