"""The ESSE task graph and its critical-path analysis.

Figs 3 and 4 of the paper are dataflow graphs; this module builds them
explicitly (as networkx DAGs) and computes the quantities the paper argues
about qualitatively:

- the *critical path* (the minimum possible makespan given unlimited
  workers),
- the *total work* (the serial makespan),
- the *average parallelism* (work / span) -- how many workers the workflow
  can actually use,

for both the serial shepherd's structure (barriers between the
perturb/forecast loop, the diff loop and the SVD) and the decoupled MTC
pipeline (per-member chains meeting only at the final SVD).
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx

from repro.core.taskmodel import reference_task_times


@dataclass(frozen=True)
class DagAnalysis:
    """Work/span analysis of one workflow graph."""

    total_work: float  # sum of all task durations (1-worker makespan)
    critical_path: float  # span: unlimited-worker makespan
    node_count: int

    @property
    def average_parallelism(self) -> float:
        """Work / span: the useful worker count."""
        return self.total_work / self.critical_path if self.critical_path else 0.0

    def makespan_lower_bound(self, workers: int) -> float:
        """Brent's bound: max(span, work / workers)."""
        if workers < 1:
            raise ValueError("workers must be >= 1")
        return max(self.critical_path, self.total_work / workers)


def _weighted(graph: nx.DiGraph, durations: dict[str, float]) -> nx.DiGraph:
    for node, data in graph.nodes(data=True):
        kind = data["kind"]
        if kind not in durations:
            raise KeyError(f"no duration for task kind {kind!r}")
        data["duration"] = durations[kind]
    return graph


def build_serial_esse_dag(n_members: int) -> nx.DiGraph:
    """Fig 3: barriers serialize the three loops.

    pert_i -> pemodel_i for each member; every pemodel feeds a *serial
    chain* of diff tasks (same-file bottleneck), which feeds the SVD, then
    the convergence test.
    """
    if n_members < 1:
        raise ValueError("n_members must be >= 1")
    g = nx.DiGraph()
    previous_diff = None
    for i in range(n_members):
        g.add_node(f"pert/{i}", kind="pert")
        g.add_node(f"pemodel/{i}", kind="pemodel")
        g.add_edge(f"pert/{i}", f"pemodel/{i}")
        g.add_node(f"diff/{i}", kind="diff")
        # bottleneck 2: diffs write one shared file, in order
        if previous_diff is not None:
            g.add_edge(previous_diff, f"diff/{i}")
        previous_diff = f"diff/{i}"
    # bottleneck 1: every pemodel precedes the first diff (loop barrier)
    for j in range(n_members):
        g.add_edge(f"pemodel/{j}", "diff/0")
    g.add_node("svd", kind="svd")
    g.add_edge(previous_diff, "svd")
    g.add_node("conv", kind="conv")
    g.add_edge("svd", "conv")
    return g


def build_parallel_esse_dag(n_members: int) -> nx.DiGraph:
    """Fig 4: per-member chains pert_i -> pemodel_i -> diff_i, meeting only
    at the (final) SVD; the differ runs continuously so diffs are
    independent of each other."""
    if n_members < 1:
        raise ValueError("n_members must be >= 1")
    g = nx.DiGraph()
    g.add_node("svd", kind="svd")
    g.add_node("conv", kind="conv")
    g.add_edge("svd", "conv")
    for i in range(n_members):
        g.add_node(f"pert/{i}", kind="pert")
        g.add_node(f"pemodel/{i}", kind="pemodel")
        g.add_node(f"diff/{i}", kind="diff")
        g.add_edge(f"pert/{i}", f"pemodel/{i}")
        g.add_edge(f"pemodel/{i}", f"diff/{i}")
        g.add_edge(f"diff/{i}", "svd")
    return g


def analyse(graph: nx.DiGraph, durations: dict[str, float] | None = None) -> DagAnalysis:
    """Work/span analysis with per-kind task durations.

    Default durations: the paper's measured pert/pemodel times plus
    nominal diff (2 s), svd (120 s) and conv (1 s) costs.
    """
    if durations is None:
        durations = dict(reference_task_times())
        durations.setdefault("diff", 2.0)
        durations.setdefault("svd", 120.0)
        durations.setdefault("conv", 1.0)
    if not nx.is_directed_acyclic_graph(graph):
        raise ValueError("workflow graph must be acyclic")
    weighted = _weighted(graph, durations)
    total = sum(data["duration"] for _, data in weighted.nodes(data=True))
    # longest path by node duration: accumulate via topological order
    longest: dict[str, float] = {}
    for node in nx.topological_sort(weighted):
        duration = weighted.nodes[node]["duration"]
        incoming = [
            longest[pred] for pred in weighted.predecessors(node)
        ]
        longest[node] = duration + (max(incoming) if incoming else 0.0)
    span = max(longest.values())
    return DagAnalysis(
        total_work=total, critical_path=span, node_count=weighted.number_of_nodes()
    )


def esse_speedup_bound(n_members: int, workers: int) -> float:
    """Theoretical Fig4/Fig3 speedup at a given worker count."""
    serial = analyse(build_serial_esse_dag(n_members))
    parallel = analyse(build_parallel_esse_dag(n_members))
    return serial.total_work / parallel.makespan_lower_bound(workers)
