"""Forecast-product service layer: store, tiles, cache, service, server.

The paper's forecaster timeline ends with "the study, selection and
web-distribution of the best forecasts" (Fig 1, Figs 5-6).
:mod:`repro.realtime.products` computes those products; this package
takes them the rest of the way to many concurrent readers:

- :mod:`~repro.products.tiles` -- tiled 2-D fields with per-tile
  min/max/mean/std summaries and factor-of-two LOD levels, so overview
  reads are ``O(tiles)``, not ``O(cells)``;
- :mod:`~repro.products.store` -- immutable versioned snapshots on disk
  behind the covfile commit-after-replace publish protocol: one writer,
  unlimited non-blocking readers, checksum-verified manifests;
- :mod:`~repro.products.cache` -- the instrumented LRU for rendered
  responses and decoded snapshots;
- :mod:`~repro.products.service` -- the transport-agnostic read path
  (routes, ETag validation, 503-while-publishing degradation, request
  telemetry);
- :mod:`~repro.products.server` -- the stdlib-asyncio HTTP front end.

Layering: products may depend on realtime/telemetry/util only; nothing
below imports products back (see ``tools/lint/rules/layering.py``).
Usage and the on-disk layout are documented in
``docs/PRODUCT_SERVICE.md``; the load benchmark is
``benchmarks/bench_product_service.py``.
"""

from repro.products.cache import LRUCache
from repro.products.server import ProductHTTPServer, fetch
from repro.products.service import ProductService, ServiceResponse
from repro.products.store import (
    CycleProductPublisher,
    ProductNotFound,
    ProductPending,
    ProductReadError,
    ProductReader,
    ProductSnapshot,
    ProductStore,
    ProductStoreError,
)
from repro.products.tiles import TiledField, TileSummary, downsample, tile_summaries

__all__ = [
    "LRUCache",
    "ProductHTTPServer",
    "fetch",
    "ProductService",
    "ServiceResponse",
    "CycleProductPublisher",
    "ProductNotFound",
    "ProductPending",
    "ProductReadError",
    "ProductReader",
    "ProductSnapshot",
    "ProductStore",
    "ProductStoreError",
    "TiledField",
    "TileSummary",
    "downsample",
    "tile_summaries",
]
