"""Tiled / level-of-detail layout for 2-D forecast-product fields.

The paper's web-distribution step (Fig 1 middle row, Figs 5-6) serves
uncertainty maps and nowcast fields to many readers; a naive server
would re-scan every grid cell per request.  This module precomputes the
two structures that make the read path cheap:

- **Tiles**: the field is cut into fixed-size square tiles, each
  carrying a :class:`TileSummary` (min/max/mean/std over wet cells).  A
  whole-domain overview statistic is then an ``O(tiles)`` fold over the
  summaries -- never an ``O(cells)`` scan (:meth:`TiledField.domain_summary`).
- **Levels of detail**: 2-3 factor-of-two mean-pooled downsamples, so a
  "whole-domain overview" image read returns ``cells / 4^L`` values.

Land/masked cells are stored as NaN and excluded from every summary --
the per-tile ``count`` says how many wet cells contributed, and all-land
tiles summarise as NaN with ``count == 0``.

The layout mirrors what downstream *localized* assimilation wants: the
LETKF line of work (Ott et al., PAPERS.md) performs per-tile local
analyses, and per-tile product summaries are exactly the read unit a
tiled analysis will publish.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class TileSummary:
    """Precomputed statistics of one tile (wet cells only).

    ``tj``/``ti`` index the tile grid (row-major); ``count`` is the
    number of unmasked cells that contributed -- 0 for all-land tiles,
    whose statistics are NaN.
    """

    tj: int
    ti: int
    count: int
    min: float
    max: float
    mean: float
    std: float

    def to_dict(self) -> dict:
        """JSON-ready form (NaN encoded as None)."""

        def enc(x: float):
            return None if np.isnan(x) else float(x)

        return {
            "tj": self.tj,
            "ti": self.ti,
            "count": self.count,
            "min": enc(self.min),
            "max": enc(self.max),
            "mean": enc(self.mean),
            "std": enc(self.std),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "TileSummary":
        """Inverse of :meth:`to_dict`."""

        def dec(x):
            return float("nan") if x is None else float(x)

        return cls(
            tj=int(data["tj"]),
            ti=int(data["ti"]),
            count=int(data["count"]),
            min=dec(data["min"]),
            max=dec(data["max"]),
            mean=dec(data["mean"]),
            std=dec(data["std"]),
        )


def _pad_to_multiple(array: np.ndarray, block: int) -> np.ndarray:
    """Pad a 2-D array with NaN so both dims are multiples of ``block``."""
    ny, nx = array.shape
    py = (-ny) % block
    px = (-nx) % block
    if py == 0 and px == 0:
        return array
    return np.pad(array, ((0, py), (0, px)), constant_values=np.nan)


def _blocked(array: np.ndarray, block: int) -> np.ndarray:
    """Reshape a padded 2-D array into ``(tj, ti, block*block)`` blocks."""
    padded = _pad_to_multiple(np.asarray(array, dtype=np.float64), block)
    ny, nx = padded.shape
    return (
        padded.reshape(ny // block, block, nx // block, block)
        .transpose(0, 2, 1, 3)
        .reshape(ny // block, nx // block, block * block)
    )


def downsample(array: np.ndarray, factor: int = 2) -> np.ndarray:
    """NaN-aware mean pooling by ``factor`` in both dimensions.

    Cells with no wet contributors pool to NaN (preserving the land
    mask's shape at every level instead of bleeding zeros into it).
    """
    if factor < 2:
        raise ValueError(f"downsample factor must be >= 2, got {factor}")
    blocks = _blocked(array, factor)  # shape: (tj, ti, ?) # dtype: float64
    counts = np.sum(~np.isnan(blocks), axis=2)  # shape: (tj, ti)
    sums = np.nansum(blocks, axis=2)  # shape: (tj, ti) # dtype: float64
    out = np.full(counts.shape, np.nan)  # shape: (tj, ti)
    wet = counts > 0
    out[wet] = sums[wet] / counts[wet]
    return out


def tile_summaries(array: np.ndarray, tile_size: int) -> list[TileSummary]:
    """Per-tile wet-cell statistics of a 2-D field (vectorized, one pass)."""
    if tile_size < 1:
        raise ValueError(f"tile_size must be >= 1, got {tile_size}")
    blocks = _blocked(array, tile_size)  # shape: (tj, ti, ?) # dtype: float64
    counts = np.sum(~np.isnan(blocks), axis=2)  # shape: (tj, ti)
    wet = counts > 0
    with np.errstate(invalid="ignore"):
        mins = np.where(wet, np.nanmin(np.where(np.isnan(blocks), np.inf, blocks), axis=2), np.nan)
        maxs = np.where(wet, np.nanmax(np.where(np.isnan(blocks), -np.inf, blocks), axis=2), np.nan)
        sums = np.nansum(blocks, axis=2)  # shape: (tj, ti) # dtype: float64
        means = np.where(wet, sums / np.maximum(counts, 1), np.nan)
        sq = np.nansum(blocks**2, axis=2)  # shape: (tj, ti) # dtype: float64
        variances = np.where(
            wet, np.maximum(sq / np.maximum(counts, 1) - means**2, 0.0), np.nan
        )
    stds = np.sqrt(variances)
    summaries = []
    n_tj, n_ti = counts.shape
    for tj in range(n_tj):
        for ti in range(n_ti):
            summaries.append(
                TileSummary(
                    tj=tj,
                    ti=ti,
                    count=int(counts[tj, ti]),
                    min=float(mins[tj, ti]),
                    max=float(maxs[tj, ti]),
                    mean=float(means[tj, ti]),
                    std=float(stds[tj, ti]),
                )
            )
    return summaries


class TiledField:
    """One named 2-D product field with tiles, summaries and LOD levels.

    Parameters
    ----------
    name:
        Field identifier used in manifests and URLs (``sst_sigma``...).
    data:
        Full-resolution 2-D array; masked cells are NaN.
    tile_size:
        Side of the square tiles the full-resolution field is cut into.
    levels:
        Number of factor-of-two downsampled overview levels (>= 1).

    ``levels[0]`` is the full-resolution array itself; ``level L`` has
    been mean-pooled ``L`` times.
    """

    def __init__(
        self,
        name: str,
        data: np.ndarray,
        tile_size: int = 8,
        levels: int = 2,
    ):
        data = np.asarray(data, dtype=np.float64)
        if data.ndim != 2:
            raise ValueError(f"field {name!r} must be 2-D, got shape {data.shape}")
        if tile_size < 1:
            raise ValueError(f"tile_size must be >= 1, got {tile_size}")
        if levels < 1:
            raise ValueError(f"levels must be >= 1, got {levels}")
        self.name = name
        self.tile_size = int(tile_size)
        self._levels: list[np.ndarray] = [data]
        for _ in range(levels):
            self._levels.append(downsample(self._levels[-1], 2))
        self.summaries = tuple(tile_summaries(data, tile_size))

    @property
    def shape(self) -> tuple[int, int]:
        """Full-resolution ``(ny, nx)`` shape."""
        return tuple(self._levels[0].shape)

    @property
    def n_levels(self) -> int:
        """Number of stored arrays (full resolution + downsamples)."""
        return len(self._levels)

    @property
    def tile_grid(self) -> tuple[int, int]:
        """Number of tiles ``(n_tj, n_ti)`` covering the full resolution."""
        ny, nx = self.shape
        return (-(-ny // self.tile_size), -(-nx // self.tile_size))

    def level(self, lod: int) -> np.ndarray:
        """The array at LOD ``lod`` (0 = full resolution)."""
        if not 0 <= lod < len(self._levels):
            raise KeyError(
                f"field {self.name!r} has levels 0..{len(self._levels) - 1}, "
                f"got {lod}"
            )
        return self._levels[lod]

    def tile(self, tj: int, ti: int) -> np.ndarray:
        """One full-resolution tile (edge tiles may be smaller)."""
        n_tj, n_ti = self.tile_grid
        if not (0 <= tj < n_tj and 0 <= ti < n_ti):
            raise KeyError(
                f"tile ({tj}, {ti}) outside tile grid {self.tile_grid} "
                f"of field {self.name!r}"
            )
        ts = self.tile_size
        return self._levels[0][tj * ts : (tj + 1) * ts, ti * ts : (ti + 1) * ts]

    def summary(self, tj: int, ti: int) -> TileSummary:
        """The precomputed summary of one tile."""
        n_tj, n_ti = self.tile_grid
        if not (0 <= tj < n_tj and 0 <= ti < n_ti):
            raise KeyError(
                f"tile ({tj}, {ti}) outside tile grid {self.tile_grid} "
                f"of field {self.name!r}"
            )
        return self.summaries[tj * n_ti + ti]

    def domain_summary(self) -> dict:
        """Whole-domain min/max/mean/std folded from the tile summaries.

        ``O(tiles)`` instead of ``O(cells)``: means combine count-weighted,
        variances via the pooled second moment.  This is the overview
        statistic the service serves without touching the field arrays.
        """
        wet = [s for s in self.summaries if s.count > 0]
        if not wet:
            return {"count": 0, "min": None, "max": None, "mean": None, "std": None}
        total = sum(s.count for s in wet)
        mean = sum(s.count * s.mean for s in wet) / total
        second = sum(s.count * (s.std**2 + s.mean**2) for s in wet) / total
        var = max(second - mean**2, 0.0)
        return {
            "count": total,
            "min": float(min(s.min for s in wet)),
            "max": float(max(s.max for s in wet)),
            "mean": float(mean),
            "std": float(np.sqrt(var)),
        }

    # -- serialization ------------------------------------------------------

    def meta(self) -> dict:
        """JSON-ready metadata (everything except the arrays)."""
        return {
            "name": self.name,
            "shape": list(self.shape),
            "tile_size": self.tile_size,
            "tile_grid": list(self.tile_grid),
            "n_levels": self.n_levels,
            "summaries": [s.to_dict() for s in self.summaries],
            "domain": self.domain_summary(),
        }

    def arrays(self) -> dict[str, np.ndarray]:
        """The payload arrays, keyed the way the store files them."""
        return {
            f"{self.name}__L{lod}": self._levels[lod]
            for lod in range(len(self._levels))
        }

    @classmethod
    def from_payload(cls, meta: dict, arrays: dict[str, np.ndarray]) -> "TiledField":
        """Rebuild a field from a manifest entry plus its stored arrays.

        The full-resolution array is re-tiled (cheap at read time only
        once per version -- the service caches the result); downsampled
        levels are taken from the payload rather than recomputed so the
        bytes served match the bytes published exactly.
        """
        name = meta["name"]
        n_levels = int(meta["n_levels"])
        keys = [f"{name}__L{lod}" for lod in range(n_levels)]
        missing = [k for k in keys if k not in arrays]
        if missing:
            raise KeyError(f"payload missing arrays {missing} for field {name!r}")
        field = cls.__new__(cls)
        field.name = name
        field.tile_size = int(meta["tile_size"])
        field._levels = [np.asarray(arrays[k], dtype=np.float64) for k in keys]
        field.summaries = tuple(
            TileSummary.from_dict(s) for s in meta["summaries"]
        )
        return field
