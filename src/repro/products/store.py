"""Immutable, versioned forecast-product snapshots on disk.

The web-distribution tail of the forecaster's timeline (paper Fig 1)
must serve many concurrent readers while a single writer publishes the
next cycle's products.  This store transplants the covfile
commit-after-replace publish protocol (``docs/COVFILE_PROTOCOL.md``) to
whole product snapshots:

- Each published version lives in its own **immutable directory**
  ``v<k>`` (payload arrays, product bulletin, manifest with checksums).
  The directory is staged under a dot-prefixed temp name and atomically
  renamed into place, so a version directory either exists completely
  or not at all.
- Visibility changes flow through a single ``os.replace`` of
  ``HEAD.json``, which names the current version, its directory and its
  manifest checksum.  A reader sees either version ``k`` or ``k+1``,
  never a mixture, and never blocks on the writer.
- **Commit-after-replace**: the writer's in-memory version counter
  advances only after the HEAD replace succeeds, so a failed publish
  (disk full, crash) leaves the store serving the previous complete
  version and the retry reuses the same slot.
- Readers treat an unreadable HEAD or manifest -- torn copy, NFS lag,
  checksum mismatch -- as "still publishing", bounded by
  ``max_unreadable_reads`` consecutive failures before
  :class:`ProductReadError` (same contract as the covariance stores).

Single-writer, many-reader: like the covfile protocol, nothing
serializes concurrent writers -- the realtime cycle is the one
publisher.  See ``docs/PRODUCT_SERVICE.md`` for the full layout.
"""

from __future__ import annotations

import hashlib
import io
import json
import os
import shutil
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.products.tiles import TiledField
from repro.realtime.products import ForecastProduct
from repro.util.fsio import durable_replace

#: Payload files every version directory carries next to its manifest.
PAYLOAD_FILES = ("fields.npz", "product.json")


class ProductStoreError(RuntimeError):
    """The writer side failed in a way the caller must see."""


class ProductReadError(RuntimeError):
    """The store stayed unreadable past the reader's retry bound."""


class ProductPending(LookupError):
    """The requested version is newer than anything published yet."""


class ProductNotFound(LookupError):
    """The requested version was never published or has been retired."""


def _dirname(version: int) -> str:
    """Canonical directory name of one published version."""
    return f"v{version:08d}"


def _file_sha256(path: Path) -> str:
    """Hex SHA-256 of one file's bytes."""
    digest = hashlib.sha256()
    with path.open("rb") as fh:
        for chunk in iter(lambda: fh.read(1 << 20), b""):
            digest.update(chunk)
    return digest.hexdigest()


@dataclass(frozen=True)
class ProductSnapshot:
    """One fully-verified published version, loaded into memory.

    Attributes
    ----------
    version:
        The monotone publish counter.
    product:
        The cycle's :class:`~repro.realtime.products.ForecastProduct`.
    fields:
        Tiled/LOD field payloads keyed by field name.
    manifest:
        The raw manifest dict (checksums, field inventory, tile meta).
    """

    version: int
    product: ForecastProduct
    fields: dict[str, TiledField]
    manifest: dict

    @property
    def checksum(self) -> str:
        """The manifest-level checksum binding the whole payload."""
        return self.manifest["checksum"]

    @property
    def cycle_index(self) -> int:
        """The forecast cycle this snapshot was produced by."""
        return int(self.manifest["cycle_index"])


class ProductStore:
    """Writer side: publish immutable versioned product snapshots.

    Parameters
    ----------
    workdir:
        Store root (created on use).
    tile_size / levels:
        Tiling and LOD defaults applied to every published field.
    retain:
        Keep only the newest ``retain`` version directories (None keeps
        everything).  Retired directories disappear *after* HEAD moved
        on, so only readers pinned to an old explicit version can miss --
        and they see :class:`ProductNotFound`, never torn data.
    """

    def __init__(
        self,
        workdir: str | Path,
        tile_size: int = 8,
        levels: int = 2,
        retain: int | None = None,
    ):
        if retain is not None and retain < 1:
            raise ValueError(f"retain must be >= 1, got {retain}")
        self.workdir = Path(workdir)
        self.workdir.mkdir(parents=True, exist_ok=True)
        self.head_path = self.workdir / "HEAD.json"
        self.tile_size = int(tile_size)
        self.levels = int(levels)
        self.retain = retain
        self._version = self._recover_version()

    def _recover_version(self) -> int:
        """Resume the version counter from an existing HEAD (restart)."""
        try:
            head = json.loads(self.head_path.read_text())
            return int(head["version"])
        except (FileNotFoundError, ValueError, KeyError, json.JSONDecodeError):
            return 0

    @property
    def version(self) -> int:
        """Version of the last successful publish (0 before the first)."""
        return self._version

    def publish(
        self,
        product: ForecastProduct,
        fields: dict[str, np.ndarray],
    ) -> int:
        """Publish one product snapshot; returns the new version number.

        ``fields`` maps field names to full-resolution 2-D arrays with
        NaN over masked cells; each is tiled and downsampled here, once,
        at publish time.  The staged directory is fully written, fsynced
        and renamed into place before HEAD is replaced; the in-memory
        counter commits only after the HEAD replace succeeds.
        """
        if not fields:
            raise ProductStoreError("a product snapshot needs at least one field")
        version = self._version + 1
        final_dir = self.workdir / _dirname(version)
        stage_dir = self.workdir / f".stage-{_dirname(version)}"
        if stage_dir.exists():
            shutil.rmtree(stage_dir)
        if final_dir.exists():
            # A previous attempt renamed the directory but died before
            # HEAD committed; the directory was never visible, rebuild it.
            shutil.rmtree(final_dir)
        stage_dir.mkdir()

        tiled = {
            name: TiledField(
                name, array, tile_size=self.tile_size, levels=self.levels
            )
            for name, array in sorted(fields.items())
        }
        arrays: dict[str, np.ndarray] = {}
        for field in tiled.values():
            arrays.update(field.arrays())
        buffer = io.BytesIO()
        np.savez(buffer, **arrays)
        (stage_dir / "fields.npz").write_bytes(buffer.getvalue())
        (stage_dir / "product.json").write_text(
            json.dumps(product.to_dict(), sort_keys=True)
        )

        payload_sums = {
            name: _file_sha256(stage_dir / name) for name in PAYLOAD_FILES
        }
        checksum = hashlib.sha256(
            "".join(f"{k}:{payload_sums[k]};" for k in sorted(payload_sums)).encode()
        ).hexdigest()
        manifest = {
            "version": version,
            "cycle_index": product.cycle_index,
            "checksum": checksum,
            "payload": payload_sums,
            "fields": {name: field.meta() for name, field in tiled.items()},
        }
        (stage_dir / "manifest.json").write_text(
            json.dumps(manifest, sort_keys=True)
        )
        self._fsync_dir_tree(stage_dir)
        os.replace(stage_dir, final_dir)

        head = {"version": version, "dir": _dirname(version), "checksum": checksum}
        tmp = self.head_path.with_suffix(".json.tmp")
        tmp.write_text(json.dumps(head))
        durable_replace(tmp, self.head_path)
        # Commit point: readers can now see the new version.
        self._version = version
        self._retire_old_versions()
        return version

    def _fsync_dir_tree(self, directory: Path) -> None:
        """Flush a staged version directory's files to stable storage."""
        for path in directory.iterdir():
            with path.open("rb") as fh:
                os.fsync(fh.fileno())

    def _retire_old_versions(self) -> None:
        """Drop version directories older than the retain window."""
        if self.retain is None:
            return
        floor = self._version - self.retain
        for path in self.workdir.glob("v*"):
            try:
                old = int(path.name[1:])
            except ValueError:
                continue
            if old <= floor:
                shutil.rmtree(path, ignore_errors=True)

    def cleanup(self) -> None:
        """Remove the whole store (end-of-run cleanup)."""
        shutil.rmtree(self.workdir, ignore_errors=True)


class ProductReader:
    """Reader side: fetch published snapshots without ever blocking.

    Each concurrent reader owns its own instance (the unreadable-read
    counter is per-reader state, exactly like the covfile readers).

    Parameters
    ----------
    workdir:
        The store root a :class:`ProductStore` publishes into.
    max_unreadable_reads:
        Consecutive unreadable (present but unparsable / checksum-
        mismatched) reads tolerated before :class:`ProductReadError`.
    """

    def __init__(self, workdir: str | Path, max_unreadable_reads: int = 64):
        if max_unreadable_reads < 1:
            raise ValueError("max_unreadable_reads must be >= 1")
        self.workdir = Path(workdir)
        self.head_path = self.workdir / "HEAD.json"
        self.max_unreadable_reads = max_unreadable_reads
        self.consecutive_unreadable = 0
        self.last_read_error: Exception | None = None

    def read_head(self) -> dict | None:
        """The current HEAD record (None before the first publish).

        An unreadable-but-present HEAD -- torn NFS copy, hand-corrupted
        file -- reads as "no snapshot yet" with the bounded retry
        contract shared with the covariance stores.
        """
        try:
            raw = self.head_path.read_text()
        except FileNotFoundError:
            return None
        try:
            head = json.loads(raw)
            version = int(head["version"])
            if version < 1 or "dir" not in head or "checksum" not in head:
                raise ValueError(f"implausible HEAD {head!r}")
        except Exception as exc:
            self._note_unreadable(exc)
            return None
        self._note_readable()
        return head

    def latest_version(self) -> int | None:
        """Version number of the current HEAD (None before first publish)."""
        head = self.read_head()
        return None if head is None else int(head["version"])

    def fetch(self, version: int | None = None) -> ProductSnapshot | None:
        """Load one published snapshot, verifying its checksums.

        ``None`` requests the latest version.  Returns None before the
        first publish.  Raises :class:`ProductPending` for a version
        newer than HEAD (the cycle is still publishing it) and
        :class:`ProductNotFound` for one older than the retain window.
        Every payload file is verified against the manifest's SHA-256
        entries and the manifest against HEAD's checksum, so a torn or
        partially-published snapshot can never be returned -- it reads
        as unreadable and the caller retries against the old HEAD.
        """
        head = self.read_head()
        if head is None:
            if version is not None:
                raise ProductPending(f"version {version} not published yet")
            return None
        head_version = int(head["version"])
        if version is None or version == head_version:
            version = head_version
            expected_checksum = head["checksum"]
        elif version > head_version:
            raise ProductPending(
                f"version {version} still publishing (latest is {head_version})"
            )
        else:
            expected_checksum = None  # pinned to the immutable manifest
        vdir = self.workdir / _dirname(version)
        try:
            manifest = json.loads((vdir / "manifest.json").read_text())
        except FileNotFoundError:
            if version < head_version:
                raise ProductNotFound(
                    f"version {version} retired (oldest retained is newer)"
                ) from None
            # HEAD says this version exists but the rename has not become
            # visible to us yet (lagged filesystem): retry as unreadable.
            self._note_unreadable(
                FileNotFoundError(f"{vdir} missing while HEAD points at it")
            )
            return None
        try:
            snapshot = self._load_verified(version, vdir, manifest, expected_checksum)
        except Exception as exc:
            self._note_unreadable(exc)
            return None
        self._note_readable()
        return snapshot

    def _load_verified(
        self,
        version: int,
        vdir: Path,
        manifest: dict,
        expected_checksum: str | None,
    ) -> ProductSnapshot:
        """Load and checksum-verify one version directory."""
        if int(manifest["version"]) != version:
            raise ValueError(
                f"manifest version {manifest['version']} != directory {version}"
            )
        if expected_checksum is not None and manifest["checksum"] != expected_checksum:
            raise ValueError(
                f"manifest checksum {manifest['checksum'][:12]}... does not "
                f"match HEAD {expected_checksum[:12]}..."
            )
        for name, expected in manifest["payload"].items():
            actual = _file_sha256(vdir / name)
            if actual != expected:
                raise ValueError(
                    f"payload {name} checksum mismatch "
                    f"({actual[:12]}... != {expected[:12]}...)"
                )
        product = ForecastProduct.from_dict(
            json.loads((vdir / "product.json").read_text())
        )
        with np.load(vdir / "fields.npz") as data:
            arrays = {key: np.asarray(data[key]) for key in data.files}
        fields = {
            name: TiledField.from_payload(meta, arrays)
            for name, meta in manifest["fields"].items()
        }
        return ProductSnapshot(
            version=version, product=product, fields=fields, manifest=manifest
        )

    def _note_readable(self) -> None:
        self.consecutive_unreadable = 0
        self.last_read_error = None

    def _note_unreadable(self, exc: Exception) -> None:
        self.consecutive_unreadable += 1
        self.last_read_error = exc
        if self.consecutive_unreadable >= self.max_unreadable_reads:
            raise ProductReadError(
                f"product store unreadable {self.consecutive_unreadable} "
                f"consecutive times (last error: {exc!r})"
            ) from exc


class CycleProductPublisher:
    """Adapter feeding a :class:`ProductStore` from the realtime cycle.

    Pass an instance as ``RealTimeForecastCycle(product_hook=...)``: each
    completed cycle's :class:`~repro.realtime.products.ForecastProduct`
    arrives here together with the forecast, the standard map products
    are derived (selected-nowcast SST, SST uncertainty, surface
    elevation when the layout carries one) and the snapshot is
    published.  Extra per-cycle fields (e.g. a TL section rendered by
    the acoustics chain) can be injected via ``extra_fields``.

    Parameters
    ----------
    store:
        The destination product store.
    model:
        The forecast model (its layout/grid define field views and the
        wet mask).
    extra_fields:
        Optional callable ``(product, forecast) -> dict[str, ndarray]``
        contributing additional named 2-D fields to each snapshot.
    """

    def __init__(self, store: ProductStore, model, extra_fields=None):
        self.store = store
        self.model = model
        self.extra_fields = extra_fields
        self.published_versions: list[int] = []

    def _masked(self, field2d: np.ndarray) -> np.ndarray:
        """Copy of a 2-D field with land cells set to NaN."""
        wet = self.model.grid.mask
        return np.where(wet, np.asarray(field2d, dtype=np.float64), np.nan)

    def __call__(self, product: ForecastProduct, forecast) -> int:
        """Publish one cycle's products; returns the new store version."""
        model = self.model
        layout = model.layout
        central = model.to_vector(forecast.central)
        if (
            product.selected == "ensemble-mean"
            and forecast.member_forecasts.shape[0] >= 2
        ):
            best = forecast.member_forecasts.mean(axis=0)
        else:
            best = central
        fields: dict[str, np.ndarray] = {}
        fields["sst_nowcast"] = self._masked(layout.view(best, "temp")[0])
        var_phys = (
            forecast.subspace.variance_field() * np.asarray(layout.scales) ** 2
        )
        fields["sst_sigma"] = self._masked(np.sqrt(layout.view(var_phys, "temp")[0]))
        if "eta" in layout.names:
            fields["ssh_nowcast"] = self._masked(layout.view(best, "eta"))
        if self.extra_fields is not None:
            for name, array in self.extra_fields(product, forecast).items():
                if name in fields:
                    raise ProductStoreError(f"extra field {name!r} collides")
                fields[name] = np.asarray(array, dtype=np.float64)
        version = self.store.publish(product, fields)
        self.published_versions.append(version)
        return version
