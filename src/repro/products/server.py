"""Asyncio HTTP front end for the forecast-product service.

Stdlib-only (``asyncio`` + a minimal HTTP/1.1 implementation): one
:class:`ProductHTTPServer` wraps a
:class:`~repro.products.service.ProductService` and speaks just enough
HTTP for load generators, curl and browsers -- GET requests,
persistent connections (keep-alive by default, honoured until the
client sends ``Connection: close``), ``Content-Length`` framing and the
service's ETag/503 semantics passed straight through.

The request handler never runs the service on the event loop: a
cache-missing request costs a small-file read plus an npz decode, which
would stall every other connection for its duration (REP010).  Requests
are offloaded to a single-worker thread pool instead -- one worker
because the service serializes on its cache lock anyway, so extra
threads would only add contention.  Heavy deployments shard by running
several server processes against the same immutable store -- readers
never lock, so processes scale horizontally.

Malformed requests are answered with ``400`` and the connection is
closed; oversized request lines or header blocks (> 16 KiB) are
rejected the same way rather than buffered without bound.
"""

from __future__ import annotations

import asyncio
from concurrent.futures import ThreadPoolExecutor
from contextlib import asynccontextmanager

from repro.products.service import ProductService, ServiceResponse

#: Upper bound on one request line or header line (DoS hygiene).
MAX_LINE_BYTES = 16 * 1024
#: Upper bound on the number of request headers read per request.
MAX_HEADERS = 100


class ProductHTTPServer:
    """Serve one :class:`ProductService` over asyncio TCP.

    Parameters
    ----------
    service:
        The configured read path (store directory, caches, telemetry).
    host / port:
        Bind address; port 0 picks a free port (read :attr:`port` after
        :meth:`start`).
    """

    def __init__(self, service: ProductService, host: str = "127.0.0.1", port: int = 0):
        self.service = service
        self.host = host
        self.port = port
        self._server: asyncio.AbstractServer | None = None
        self._executor: ThreadPoolExecutor | None = None

    async def start(self) -> None:
        """Bind and start accepting connections."""
        if self._server is not None:
            raise RuntimeError("server already started")
        self._executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="product-service"
        )
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        """Stop accepting and close the listening sockets."""
        if self._server is None:
            return
        self._server.close()
        await self._server.wait_closed()
        self._server = None
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    @asynccontextmanager
    async def serving(self):
        """``async with server.serving():`` start/stop bracketing."""
        await self.start()
        try:
            yield self
        finally:
            await self.stop()

    @property
    def url(self) -> str:
        """Base URL of the bound listener."""
        return f"http://{self.host}:{self.port}"

    # -- connection handling -------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """Serve requests on one connection until close or error."""
        try:
            while True:
                request = await self._read_request(reader)
                if request is None:
                    break  # clean EOF between requests
                if request == "malformed":
                    await self._write_response(
                        writer,
                        ServiceResponse(status=400, body=b'{"error": "malformed request"}'),
                        keep_alive=False,
                        http11=True,
                    )
                    break
                method, target, http11, headers = request
                response = await asyncio.get_running_loop().run_in_executor(
                    self._executor, self.service.handle, method, target, headers
                )
                keep_alive = (
                    http11
                    and headers.get("connection", "keep-alive").lower() != "close"
                )
                await self._write_response(
                    writer, response, keep_alive=keep_alive, http11=http11
                )
                if not keep_alive:
                    break
        except (ConnectionResetError, BrokenPipeError, asyncio.IncompleteReadError):
            pass  # client went away; nothing to answer
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _read_request(self, reader: asyncio.StreamReader):
        """Parse one request head; None on EOF, ``"malformed"`` on junk."""
        line = await reader.readline()
        if not line:
            return None
        if len(line) > MAX_LINE_BYTES:
            return "malformed"
        parts = line.decode("latin-1").strip().split()
        if len(parts) != 3 or not parts[2].startswith("HTTP/"):
            return "malformed"
        method, target, version = parts
        http11 = version == "HTTP/1.1"
        headers: dict[str, str] = {}
        for _ in range(MAX_HEADERS + 1):
            raw = await reader.readline()
            if not raw or len(raw) > MAX_LINE_BYTES:
                return "malformed"
            text = raw.decode("latin-1").rstrip("\r\n")
            if not text:
                break
            name, sep, value = text.partition(":")
            if not sep:
                return "malformed"
            headers[name.strip().lower()] = value.strip()
        else:
            return "malformed"
        length = headers.get("content-length", "0")
        if length.isdigit() and int(length) > 0:
            # GETs should not carry bodies, but drain one to keep the
            # connection framing intact for the next request.
            await reader.readexactly(int(length))
        return method, target, http11, headers

    async def _write_response(
        self,
        writer: asyncio.StreamWriter,
        response: ServiceResponse,
        keep_alive: bool,
        http11: bool,
    ) -> None:
        """Serialize one response with explicit length framing."""
        version = "HTTP/1.1" if http11 else "HTTP/1.0"
        lines = [f"{version} {response.status} {response.reason}"]
        for name, value in response.headers:
            lines.append(f"{name}: {value}")
        lines.append(f"Content-Length: {len(response.body)}")
        lines.append(f"Connection: {'keep-alive' if keep_alive else 'close'}")
        head = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
        writer.write(head + response.body)
        await writer.drain()


async def fetch(
    host: str,
    port: int,
    target: str,
    headers: dict[str, str] | None = None,
    reader: asyncio.StreamReader | None = None,
    writer: asyncio.StreamWriter | None = None,
) -> tuple[int, dict[str, str], bytes]:
    """Minimal asyncio HTTP GET (the test/bench client half).

    Pass ``reader``/``writer`` from a previous call's connection to
    reuse it (keep-alive); otherwise a fresh connection is opened and
    closed.  Returns ``(status, headers, body)``.
    """
    own_connection = reader is None
    if own_connection:
        reader, writer = await asyncio.open_connection(host, port)
    try:
        request = [f"GET {target} HTTP/1.1", f"Host: {host}:{port}"]
        for name, value in (headers or {}).items():
            request.append(f"{name}: {value}")
        if own_connection:
            request.append("Connection: close")
        writer.write(("\r\n".join(request) + "\r\n\r\n").encode("latin-1"))
        await writer.drain()
        status_line = await reader.readline()
        parts = status_line.decode("latin-1").split(maxsplit=2)
        status = int(parts[1])
        response_headers: dict[str, str] = {}
        while True:
            raw = await reader.readline()
            text = raw.decode("latin-1").rstrip("\r\n")
            if not text:
                break
            name, _, value = text.partition(":")
            response_headers[name.strip().lower()] = value.strip()
        length = int(response_headers.get("content-length", "0"))
        body = await reader.readexactly(length) if length else b""
        return status, response_headers, body
    finally:
        if own_connection:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass
