"""A small thread-safe LRU cache for rendered product responses.

The service's read path is dominated by two costs: loading + verifying a
published snapshot (npz decode, SHA-256) and rendering a response body
(JSON encode of tiles/overviews).  Both are pure functions of
``(version, resource)``, and versions are immutable once published -- so
an LRU keyed by that pair never needs invalidation: entries for retired
versions simply age out.

Instrumented: hit/miss/eviction counters land in an optional
:class:`~repro.telemetry.metrics.MetricsRegistry` so the load benchmark
and the Prometheus exporter can report cache effectiveness.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.util.sanitizer import new_lock


class LRUCache:
    """Bounded mapping with least-recently-used eviction.

    Parameters
    ----------
    capacity:
        Maximum number of entries; 0 disables caching entirely (every
        ``get`` misses, ``put`` is a no-op) -- the bench's cache-off mode.
    registry:
        Optional metrics registry receiving ``product_cache_hits`` /
        ``product_cache_misses`` / ``product_cache_evictions`` counters
        and a ``product_cache_entries`` gauge, labelled ``cache=<name>``.
    name:
        Label distinguishing multiple caches in one registry.
    """

    def __init__(self, capacity: int, registry=None, name: str = "default"):
        if capacity < 0:
            raise ValueError(f"capacity must be >= 0, got {capacity}")
        self.capacity = int(capacity)
        self._entries: OrderedDict = OrderedDict()
        self._lock = new_lock(f"LRUCache({name})._lock")
        if registry is not None:
            self._hits = registry.counter("product_cache_hits", cache=name)
            self._misses = registry.counter("product_cache_misses", cache=name)
            self._evictions = registry.counter("product_cache_evictions", cache=name)
            self._size = registry.gauge("product_cache_entries", cache=name)
        else:
            self._hits = self._misses = self._evictions = self._size = None

    def get(self, key):
        """The cached value for ``key`` (None on miss; counts either way)."""
        with self._lock:
            try:
                value = self._entries[key]
                self._entries.move_to_end(key)
            except KeyError:
                value = None
        if value is None:
            if self._misses is not None:
                self._misses.inc()
            return None
        if self._hits is not None:
            self._hits.inc()
        return value

    def put(self, key, value) -> None:
        """Insert/refresh an entry, evicting the oldest beyond capacity.

        ``None`` values are rejected -- ``get`` uses None as its miss
        sentinel, so caching one would alias a permanent miss.
        """
        if value is None:
            raise ValueError("cannot cache None (reserved as the miss sentinel)")
        if self.capacity == 0:
            return
        evicted = 0
        with self._lock:
            self._entries[key] = value
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                evicted += 1
            size = len(self._entries)
        if self._evictions is not None and evicted:
            self._evictions.inc(evicted)
        if self._size is not None:
            self._size.set(size)

    def __len__(self) -> int:
        """Current number of cached entries."""
        with self._lock:
            return len(self._entries)

    def clear(self) -> None:
        """Drop every entry (capacity unchanged)."""
        with self._lock:
            self._entries.clear()
        if self._size is not None:
            self._size.set(0)
