"""The forecast-product read path: routes, caching, ETags, degradation.

This is the transport-agnostic core the asyncio front end
(:mod:`repro.products.server`) wraps: a :class:`ProductService` turns
``GET`` requests for product resources into :class:`ServiceResponse`
records, with

- a per-version **snapshot cache** (verified snapshots are immutable, so
  one npz decode + checksum pass serves every later request of that
  version) and a **response cache** of rendered JSON bodies keyed by
  ``(version, resource)``;
- **ETag / version validation**: every resource response carries
  ``ETag: "v<version>-<checksum16>"``; a request presenting it back via
  ``If-None-Match`` gets ``304 Not Modified`` with an empty body;
- **graceful 503 degradation**: a cycle still publishing (requested
  version newer than HEAD, or HEAD/manifest momentarily unreadable
  mid-replace) answers ``503`` with ``Retry-After`` instead of an error
  page or a blocked reader;
- **telemetry**: one ``product_request`` span per request plus
  ``product_requests`` counters (by route and status) and a
  ``product_request_seconds`` histogram (by route) in the injected
  metrics registry -- the serving half of ``docs/OBSERVABILITY.md``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from urllib.parse import parse_qs, urlsplit

import numpy as np

from repro.products.cache import LRUCache
from repro.products.store import (
    ProductNotFound,
    ProductPending,
    ProductReadError,
    ProductReader,
    ProductSnapshot,
)
from repro.telemetry.spans import NULL_RECORDER

#: Seconds readers are asked to back off when a cycle is still publishing.
RETRY_AFTER_SECONDS = 1


@dataclass(frozen=True)
class ServiceResponse:
    """One finished response: status code, headers, body bytes."""

    status: int
    body: bytes = b""
    headers: tuple[tuple[str, str], ...] = ()
    route: str = "unknown"

    @property
    def reason(self) -> str:
        """The HTTP reason phrase for :attr:`status`."""
        return {
            200: "OK",
            304: "Not Modified",
            404: "Not Found",
            405: "Method Not Allowed",
            500: "Internal Server Error",
            503: "Service Unavailable",
        }.get(self.status, "Unknown")

    def header(self, name: str, default: str | None = None) -> str | None:
        """Case-insensitive header lookup."""
        lowered = name.lower()
        for key, value in self.headers:
            if key.lower() == lowered:
                return value
        return default


def _json_body(payload: dict) -> bytes:
    """Strict-JSON encode (NaN already converted to None upstream)."""
    return json.dumps(payload, sort_keys=True).encode()


def _array_json(array: np.ndarray) -> list:
    """A 2-D array as nested lists with NaN encoded as None."""
    out = []
    for row in np.asarray(array, dtype=np.float64):
        out.append([None if np.isnan(v) else float(v) for v in row])
    return out


@dataclass
class _Route:
    """A parsed request target."""

    name: str
    version: int | None = None  # None = latest
    params: dict = field(default_factory=dict)


class ProductService:
    """Serve published product snapshots to many concurrent readers.

    Parameters
    ----------
    workdir:
        The :class:`~repro.products.store.ProductStore` root to read.
    cache_size:
        Response-cache capacity (rendered bodies); 0 disables response
        and snapshot caching (the benchmark's cache-off mode).
    snapshot_cache_size:
        How many verified snapshots stay decoded in memory.
    registry:
        Optional metrics registry for request/cache instruments.
    telemetry:
        Span recorder; its clock also times request latency, so a
        simulated or fake clock drives exact latency tests.
    """

    #: Routes answered by this service (see docs/PRODUCT_SERVICE.md).
    ROUTES = ("healthz", "product", "field", "tile")

    def __init__(
        self,
        workdir,
        cache_size: int = 256,
        snapshot_cache_size: int = 4,
        registry=None,
        telemetry=None,
        max_unreadable_reads: int = 64,
    ):
        self.reader = ProductReader(
            workdir, max_unreadable_reads=max_unreadable_reads
        )
        self.telemetry = telemetry if telemetry is not None else NULL_RECORDER
        self.registry = registry
        self._responses = LRUCache(cache_size, registry=registry, name="responses")
        self._snapshots = LRUCache(
            snapshot_cache_size if cache_size else 0,
            registry=registry,
            name="snapshots",
        )

    # -- request entry point -------------------------------------------------

    def handle(
        self, method: str, target: str, headers: dict[str, str] | None = None
    ) -> ServiceResponse:
        """Answer one request; never raises for client-visible conditions.

        ``headers`` keys are treated case-insensitively; only
        ``If-None-Match`` is consulted.
        """
        headers = {k.lower(): v for k, v in (headers or {}).items()}
        clock = self.telemetry.clock
        started = clock()
        route_name = "unknown"
        try:
            if method.upper() != "GET":
                response = self._plain(405, {"error": "only GET is supported"})
            else:
                route = self._parse_target(target)
                if route is None:
                    response = self._plain(404, {"error": f"no such resource {target}"})
                else:
                    route_name = route.name
                    with self.telemetry.span("product_request", route=route.name):
                        response = self._dispatch(route, headers)
        except ProductReadError as exc:
            # The bounded-retry contract tripped: the store is corrupt for
            # good, not mid-publish.  Surface it, do not crash the server.
            response = self._plain(
                500, {"error": f"product store unreadable past retry bound: {exc}"}
            )
        finally:
            elapsed = clock() - started
            if self.registry is not None:
                self.registry.histogram(
                    "product_request_seconds", route=route_name
                ).observe(elapsed)
        if self.registry is not None:
            self.registry.counter(
                "product_requests", route=route_name, status=str(response.status)
            ).inc()
        return ServiceResponse(
            status=response.status,
            body=response.body,
            headers=response.headers,
            route=route_name,
        )

    # -- routing -------------------------------------------------------------

    def _parse_target(self, target: str) -> _Route | None:
        """Parse a request target into a route (None = unknown path)."""
        split = urlsplit(target)
        parts = [p for p in split.path.split("/") if p]
        query = {k: v[-1] for k, v in parse_qs(split.query).items()}
        if parts == ["healthz"]:
            return _Route("healthz")
        if len(parts) < 3 or parts[0] != "v1" or parts[1] != "products":
            return None
        if parts[2] == "latest":
            version = None
        elif parts[2].isdigit():
            version = int(parts[2])
        else:
            return None
        rest = parts[3:]
        if not rest:
            return _Route("product", version)
        if rest[0] == "fields" and len(rest) == 2:
            level = query.get("level", "0")
            if not level.lstrip("-").isdigit():
                return None
            return _Route(
                "field", version, {"field": rest[1], "level": int(level)}
            )
        if rest[0] == "tiles" and len(rest) == 4:
            if not (rest[2].isdigit() and rest[3].isdigit()):
                return None
            return _Route(
                "tile",
                version,
                {"field": rest[1], "tj": int(rest[2]), "ti": int(rest[3])},
            )
        return None

    def _dispatch(self, route: _Route, headers: dict[str, str]) -> ServiceResponse:
        """Resolve the snapshot and render (or revalidate) the resource."""
        if route.name == "healthz":
            return self._healthz()
        try:
            snapshot = self._snapshot(route.version)
        except ProductPending as exc:
            return self._unavailable(str(exc))
        except ProductNotFound as exc:
            return self._plain(404, {"error": str(exc)})
        if snapshot is None:
            return self._unavailable("no product published yet (store warming up)")
        etag = f'"v{snapshot.version}-{snapshot.checksum[:16]}"'
        if headers.get("if-none-match") == etag:
            return ServiceResponse(
                status=304, headers=(("ETag", etag),), route=route.name
            )
        cache_key = (snapshot.version, route.name, tuple(sorted(route.params.items())))
        body = self._responses.get(cache_key)
        if body is None:
            body = self._render(route, snapshot)
            if isinstance(body, ServiceResponse):
                return body  # a 404 for a bad field/tile is not cached
            self._responses.put(cache_key, body)
        return ServiceResponse(
            status=200,
            body=body,
            headers=(
                ("Content-Type", "application/json"),
                ("ETag", etag),
                ("X-Product-Version", str(snapshot.version)),
            ),
            route=route.name,
        )

    def _snapshot(self, version: int | None) -> ProductSnapshot | None:
        """Fetch a verified snapshot through the per-version cache."""
        if version is None:
            version = self.reader.latest_version()
            if version is None:
                return None
        cached = self._snapshots.get(version)
        if cached is not None:
            return cached
        snapshot = self.reader.fetch(version)
        if snapshot is not None:
            self._snapshots.put(snapshot.version, snapshot)
        return snapshot

    # -- renderers -----------------------------------------------------------

    def _healthz(self) -> ServiceResponse:
        """Liveness plus the currently-served version (null before one)."""
        try:
            version = self.reader.latest_version()
        except Exception:
            version = None
        return self._plain(200, {"status": "ok", "version": version})

    def _render(self, route: _Route, snapshot: ProductSnapshot):
        """Render one resource body (or a ServiceResponse for client errors)."""
        if route.name == "product":
            manifest = snapshot.manifest
            return _json_body(
                {
                    "version": snapshot.version,
                    "cycle_index": snapshot.cycle_index,
                    "checksum": snapshot.checksum,
                    "fields": {
                        name: {
                            "shape": meta["shape"],
                            "tile_size": meta["tile_size"],
                            "tile_grid": meta["tile_grid"],
                            "n_levels": meta["n_levels"],
                            "domain": meta["domain"],
                        }
                        for name, meta in manifest["fields"].items()
                    },
                    "product": snapshot.product.to_dict(),
                    "bulletin": snapshot.product.render(),
                }
            )
        tiled = snapshot.fields.get(route.params["field"])
        if tiled is None:
            return self._plain(
                404,
                {
                    "error": f"no field {route.params['field']!r} in version "
                    f"{snapshot.version}",
                    "fields": sorted(snapshot.fields),
                },
            )
        if route.name == "field":
            level = route.params["level"]
            try:
                array = tiled.level(level)
            except KeyError as exc:
                return self._plain(404, {"error": str(exc)})
            return _json_body(
                {
                    "version": snapshot.version,
                    "field": tiled.name,
                    "level": level,
                    "shape": list(array.shape),
                    "domain": tiled.domain_summary(),
                    "values": _array_json(array),
                }
            )
        # tile
        try:
            tile = tiled.tile(route.params["tj"], route.params["ti"])
            summary = tiled.summary(route.params["tj"], route.params["ti"])
        except KeyError as exc:
            return self._plain(404, {"error": str(exc)})
        return _json_body(
            {
                "version": snapshot.version,
                "field": tiled.name,
                "tj": route.params["tj"],
                "ti": route.params["ti"],
                "summary": summary.to_dict(),
                "values": _array_json(tile),
            }
        )

    # -- response helpers ----------------------------------------------------

    def _plain(self, status: int, payload: dict) -> ServiceResponse:
        """A small uncached JSON response."""
        return ServiceResponse(
            status=status,
            body=_json_body(payload),
            headers=(("Content-Type", "application/json"),),
        )

    def _unavailable(self, why: str) -> ServiceResponse:
        """The graceful-degradation answer while a publish is in flight."""
        return ServiceResponse(
            status=503,
            body=_json_body({"error": why, "retry_after": RETRY_AFTER_SECONDS}),
            headers=(
                ("Content-Type", "application/json"),
                ("Retry-After", str(RETRY_AFTER_SECONDS)),
            ),
        )
