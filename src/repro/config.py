"""Declarative, validated experiment configuration.

Paper Sec 7: "We plan to simplify the use of such setups via the use of an
XML driven validating graphical user interface" (their reference [1] is a
web-enabled configuration front-end for legacy ocean codes).  This module
is that idea in library form: one plain dict/JSON document describes the
whole experiment -- domain, ESSE tuning, observation network, timeline --
is validated on load, and builds every runtime object.

Example
-------
>>> cfg = ExperimentConfig.from_dict({
...     "domain": {"nx": 20, "ny": 16, "nz": 3},
...     "esse": {"initial_ensemble_size": 8, "max_ensemble_size": 32},
... })
>>> model = cfg.build_model()
>>> driver = cfg.build_driver(model)
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from pathlib import Path

from repro.core.driver import ESSEConfig, ESSEDriver
from repro.obs.network import ObservationNetwork, aosn2_network
from repro.ocean.bathymetry import monterey_grid
from repro.ocean.model import ModelConfig, PEModel
from repro.realtime.times import ExperimentTimeline
from repro.util.rng import SeedSequenceStream


class ConfigError(ValueError):
    """A configuration document failed validation."""


@dataclass(frozen=True)
class DomainSection:
    """Grid and domain parameters."""

    nx: int = 42
    ny: int = 36
    nz: int = 10
    dx: float = 3000.0
    dy: float = 3000.0
    max_level_depth: float = 400.0

    def __post_init__(self):
        if min(self.nx, self.ny) < 4 or self.nz < 1:
            raise ConfigError("domain: nx/ny must be >= 4 and nz >= 1")
        if self.dx <= 0 or self.dy <= 0 or self.max_level_depth <= 0:
            raise ConfigError("domain: spacings and depth must be positive")


@dataclass(frozen=True)
class ModelSection:
    """Numerical model parameters (subset of :class:`ModelConfig`)."""

    dt: float = 400.0
    viscosity: float = 120.0
    diffusivity: float = 60.0

    def __post_init__(self):
        if self.dt <= 0:
            raise ConfigError("model: dt must be positive")
        if self.viscosity < 0 or self.diffusivity < 0:
            raise ConfigError("model: mixing coefficients must be >= 0")


@dataclass(frozen=True)
class ESSESection:
    """ESSE tuning (subset of :class:`ESSEConfig`)."""

    initial_ensemble_size: int = 16
    max_ensemble_size: int = 128
    growth_factor: float = 2.0
    convergence_tolerance: float = 0.97
    max_subspace_rank: int = 60
    root_seed: int = 0

    def __post_init__(self):
        try:
            ESSEConfig(
                initial_ensemble_size=self.initial_ensemble_size,
                max_ensemble_size=self.max_ensemble_size,
                growth_factor=self.growth_factor,
                convergence_tolerance=self.convergence_tolerance,
                max_subspace_rank=self.max_subspace_rank,
            )
        except ValueError as exc:
            raise ConfigError(f"esse: {exc}") from exc


@dataclass(frozen=True)
class EngineSection:
    """Ensemble-engine backend selection (``docs/ENSEMBLE_ENGINE.md``).

    Parameters
    ----------
    backend:
        One of ``serial`` / ``threads`` / ``batched`` / ``processes``.
    n_workers:
        Pool width for the ``threads`` and ``processes`` backends.
    batch_size:
        Members per vectorized batch for the ``batched`` backend.
    """

    backend: str = "batched"
    n_workers: int = 4
    batch_size: int = 8

    def __post_init__(self):
        if self.backend not in ("serial", "threads", "batched", "processes"):
            raise ConfigError(
                f"engine: unknown backend {self.backend!r} "
                "(have: serial, threads, batched, processes)"
            )
        if self.n_workers < 1:
            raise ConfigError("engine: n_workers must be >= 1")
        if self.batch_size < 1:
            raise ConfigError("engine: batch_size must be >= 1")


@dataclass(frozen=True)
class AssimilationSection:
    """Analysis-backend selection (``docs/ASSIMILATION.md``).

    Parameters
    ----------
    backend:
        ``global`` (the paper's full-domain update) or ``tiled``
        (localized analysis over independent grid tiles).
    tile_ny, tile_nx:
        Nominal tile shape for the ``tiled`` backend, in grid cells.
    taper:
        Localization taper: ``gaspari_cohn``, ``cutoff`` or ``none``.
    radius:
        Taper support radius in grid cells.
    halo:
        Hard observation-selection radius on top of the taper; 0 means
        no hard cap (taper support alone decides).
    inflation:
        ``multiplicative`` (constant ``inflation_factor``) or
        ``adaptive`` (innovation-consistency estimate clipped to
        ``[inflation_factor, adaptive_inflation_max]``).
    inflation_factor:
        Constant sigma inflation factor (>= 1).
    adaptive_inflation_max:
        Upper clip for the adaptive estimate.
    local_energy_floor:
        Per-tile relative mode-energy truncation floor in [0, 1).
    n_workers:
        Tile-pool width for the ``tiled`` backend.
    max_attempts:
        Retry budget per tile task (1 disables retries).
    """

    backend: str = "global"
    tile_ny: int = 16
    tile_nx: int = 16
    taper: str = "gaspari_cohn"
    radius: float = 8.0
    halo: float = 0.0
    inflation: str = "multiplicative"
    inflation_factor: float = 1.0
    adaptive_inflation_max: float = 2.0
    local_energy_floor: float = 0.0
    n_workers: int = 4
    max_attempts: int = 3

    def __post_init__(self):
        if self.backend not in ("global", "tiled"):
            raise ConfigError(
                f"assimilation: unknown backend {self.backend!r} "
                "(have: global, tiled)"
            )
        if self.tile_ny < 1 or self.tile_nx < 1:
            raise ConfigError("assimilation: tile shape must be >= 1")
        if self.taper not in ("gaspari_cohn", "cutoff", "none"):
            raise ConfigError(
                f"assimilation: unknown taper {self.taper!r} "
                "(have: gaspari_cohn, cutoff, none)"
            )
        if self.radius <= 0:
            raise ConfigError("assimilation: radius must be positive")
        if self.halo < 0:
            raise ConfigError("assimilation: halo must be >= 0")
        if self.inflation not in ("multiplicative", "adaptive"):
            raise ConfigError(
                f"assimilation: unknown inflation {self.inflation!r} "
                "(have: multiplicative, adaptive)"
            )
        if self.inflation_factor < 1.0:
            raise ConfigError("assimilation: inflation_factor must be >= 1")
        if self.adaptive_inflation_max < self.inflation_factor:
            raise ConfigError(
                "assimilation: adaptive_inflation_max must be >= inflation_factor"
            )
        if not 0.0 <= self.local_energy_floor < 1.0:
            raise ConfigError(
                "assimilation: local_energy_floor must be in [0, 1)"
            )
        if self.n_workers < 1:
            raise ConfigError("assimilation: n_workers must be >= 1")
        if self.max_attempts < 1:
            raise ConfigError("assimilation: max_attempts must be >= 1")


@dataclass(frozen=True)
class ObservationsSection:
    """Observation-network parameters."""

    network: str = "aosn2"
    seed: int = 0

    def __post_init__(self):
        if self.network not in ("aosn2",):
            raise ConfigError(
                f"observations: unknown network {self.network!r} (have: aosn2)"
            )


@dataclass(frozen=True)
class TimelineSection:
    """Real-time timeline parameters."""

    period_hours: float = 48.0
    n_periods: int = 5
    forecast_horizon_periods: int = 1

    def __post_init__(self):
        if self.period_hours <= 0 or self.n_periods < 1:
            raise ConfigError("timeline: positive period and >= 1 periods required")
        if self.forecast_horizon_periods < 1:
            raise ConfigError("timeline: forecast horizon must be >= 1 period")


_SECTIONS = {
    "domain": DomainSection,
    "model": ModelSection,
    "esse": ESSESection,
    "engine": EngineSection,
    "assimilation": AssimilationSection,
    "observations": ObservationsSection,
    "timeline": TimelineSection,
}


@dataclass(frozen=True)
class ExperimentConfig:
    """One validated experiment document."""

    domain: DomainSection = field(default_factory=DomainSection)
    model: ModelSection = field(default_factory=ModelSection)
    esse: ESSESection = field(default_factory=ESSESection)
    engine: EngineSection = field(default_factory=EngineSection)
    assimilation: AssimilationSection = field(default_factory=AssimilationSection)
    observations: ObservationsSection = field(default_factory=ObservationsSection)
    timeline: TimelineSection = field(default_factory=TimelineSection)

    # -- document I/O ------------------------------------------------------

    @classmethod
    def from_dict(cls, document: dict) -> "ExperimentConfig":
        """Build and validate from a plain dict.

        Unknown sections or keys raise :class:`ConfigError` -- a silently
        ignored typo in an at-sea configuration costs a forecast cycle.
        """
        if not isinstance(document, dict):
            raise ConfigError(f"document must be a dict, got {type(document)}")
        unknown = set(document) - set(_SECTIONS)
        if unknown:
            raise ConfigError(
                f"unknown sections {sorted(unknown)}; valid: {sorted(_SECTIONS)}"
            )
        kwargs = {}
        for name, section_cls in _SECTIONS.items():
            raw = document.get(name, {})
            if not isinstance(raw, dict):
                raise ConfigError(f"section {name!r} must be a mapping")
            valid_keys = set(section_cls.__dataclass_fields__)
            bad = set(raw) - valid_keys
            if bad:
                raise ConfigError(
                    f"section {name!r}: unknown keys {sorted(bad)}; "
                    f"valid: {sorted(valid_keys)}"
                )
            kwargs[name] = section_cls(**raw)
        return cls(**kwargs)

    def to_dict(self) -> dict:
        """The full document (all defaults made explicit)."""
        return asdict(self)

    @classmethod
    def load(cls, path: str | Path) -> "ExperimentConfig":
        """Load and validate a JSON document."""
        with open(path) as handle:
            return cls.from_dict(json.load(handle))

    def save(self, path: str | Path) -> None:
        """Write the validated document as JSON."""
        Path(path).write_text(json.dumps(self.to_dict(), indent=2) + "\n")

    # -- builders --------------------------------------------------------------

    def build_model(self) -> PEModel:
        """The configured :class:`PEModel`."""
        grid = monterey_grid(
            nx=self.domain.nx,
            ny=self.domain.ny,
            nz=self.domain.nz,
            dx=self.domain.dx,
            dy=self.domain.dy,
            max_level_depth=self.domain.max_level_depth,
        )
        return PEModel(
            grid=grid,
            config=ModelConfig(
                dt=self.model.dt,
                viscosity=self.model.viscosity,
                diffusivity=self.model.diffusivity,
            ),
        )

    def build_analysis(self, model: PEModel, telemetry=None, metrics=None):
        """The configured analysis backend, or None for the driver default.

        With ``assimilation.backend == "tiled"`` this builds a
        :class:`~repro.core.assimilation.TiledESSEAnalysis` whose tile
        tasks run through a fault-tolerant
        :class:`~repro.workflow.tilepool.TileTaskPool` (retry seed =
        ``esse.root_seed``); with ``"global"`` it returns None so
        :class:`ESSEDriver` keeps its default global analysis.
        """
        asm = self.assimilation
        if asm.backend == "global":
            return None
        from repro.core.assimilation import TiledESSEAnalysis
        from repro.core.localization import make_inflation, make_taper
        from repro.workflow.policies import RetryPolicy
        from repro.workflow.tilepool import TileTaskPool

        pool = TileTaskPool(
            n_workers=asm.n_workers,
            retry=RetryPolicy(
                max_attempts=asm.max_attempts, seed=self.esse.root_seed
            ),
            telemetry=telemetry,
            metrics=metrics,
        )
        return TiledESSEAnalysis(
            model.layout,
            model.grid.shape2d,
            (asm.tile_ny, asm.tile_nx),
            taper=make_taper(asm.taper, asm.radius),
            halo=asm.halo if asm.halo > 0 else None,
            inflation=make_inflation(
                asm.inflation,
                factor=asm.inflation_factor,
                max_factor=asm.adaptive_inflation_max,
            ),
            local_energy_floor=asm.local_energy_floor,
            task_runner=pool.run,
            telemetry=telemetry,
            metrics=metrics,
        )

    def build_driver(self, model: PEModel, telemetry=None) -> ESSEDriver:
        """The configured :class:`ESSEDriver` (analysis backend included)."""
        return ESSEDriver(
            model,
            ESSEConfig(
                initial_ensemble_size=self.esse.initial_ensemble_size,
                max_ensemble_size=self.esse.max_ensemble_size,
                growth_factor=self.esse.growth_factor,
                convergence_tolerance=self.esse.convergence_tolerance,
                max_subspace_rank=self.esse.max_subspace_rank,
            ),
            root_seed=self.esse.root_seed,
            telemetry=telemetry,
            analysis=self.build_analysis(model, telemetry=telemetry),
        )

    def build_network(self, model: PEModel) -> ObservationNetwork:
        """The configured observation network.

        The noise generator is a keyed
        :class:`~repro.util.rng.SeedSequenceStream` stream rather than
        ``default_rng(seed)`` directly, so config-driven runs and
        driver-driven runs (which key member streams off the same root
        seed) draw from non-overlapping streams.
        """
        return aosn2_network(
            model.grid,
            model.layout,
            rng=SeedSequenceStream(self.observations.seed).rng("obs", "network"),
        )

    def build_engine(self, runner, workdir, **kwargs):
        """The configured :class:`~repro.workflow.ensemble.EnsembleEngine`.

        ``runner`` is an :class:`~repro.core.ensemble.EnsembleRunner` and
        ``workdir`` the engine's working directory; extra keyword
        arguments (telemetry, metrics, retry, faults) pass through.
        """
        from repro.workflow.ensemble import EnsembleEngine, make_backend

        backend = make_backend(
            self.engine.backend,
            n_workers=self.engine.n_workers,
            batch_size=self.engine.batch_size,
        )
        return EnsembleEngine(
            runner,
            ESSEConfig(
                initial_ensemble_size=self.esse.initial_ensemble_size,
                max_ensemble_size=self.esse.max_ensemble_size,
                growth_factor=self.esse.growth_factor,
                convergence_tolerance=self.esse.convergence_tolerance,
                max_subspace_rank=self.esse.max_subspace_rank,
            ),
            workdir,
            backend=backend,
            **kwargs,
        )

    def build_timeline(self, t0: float = 0.0) -> ExperimentTimeline:
        """The configured real-time timeline."""
        return ExperimentTimeline(
            t0=t0,
            period_length=self.timeline.period_hours * 3600.0,
            n_periods=self.timeline.n_periods,
            forecast_horizon_periods=self.timeline.forecast_horizon_periods,
        )
